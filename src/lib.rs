//! # rfh — Resilient, Fault-tolerant, High-efficient replication
//!
//! A full reproduction of **"RFH: A Resilient, Fault-Tolerant and
//! High-efficient Replication Algorithm for Distributed Cloud Storage"**
//! (Qu & Xiong, ICPP 2012) as a Rust library: the RFH decision agent,
//! the three baseline algorithms it is evaluated against, the
//! geo-distributed cloud-storage simulator the paper evaluates in, and
//! an experiment harness that regenerates every table and figure.
//!
//! This crate is an umbrella re-exporting the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `rfh-types` | ids, geography, labels, Table I config |
//! | [`topology`] | `rfh-topology` | datacenters, WAN routing, the Fig. 1 preset |
//! | [`ring`] | `rfh-ring` | consistent hashing, prefix-overlay routing |
//! | [`stats`] | `rfh-stats` | EWMA, Erlang-B, availability bound, metrics math |
//! | [`obs`] | `rfh-obs` | decision tracing (JSONL), metrics registry, per-phase epoch profiler |
//! | [`workload`] | `rfh-workload` | Poisson/Zipf query generation, scenarios, traces |
//! | [`traffic`] | `rfh-traffic` | the traffic-determination pass (eqs. 2–11) and the reusable, route-cached [`TrafficEngine`](rfh_traffic::TrafficEngine) |
//! | [`core`] | `rfh-core` | the RFH decision tree + the three baselines |
//! | [`net`] | `rfh-net` | the §II-B control plane: traffic reports over the WAN |
//! | [`faults`] | `rfh-faults` | deterministic fault plans, chaos injection, invariant auditing |
//! | [`consistency`] | `rfh-consistency` | version vectors, staleness under replica churn |
//! | [`sim`] | `rfh-sim` | the epoch simulator and the four-way comparison runner |
//! | [`experiments`] | `rfh-experiments` | per-figure regeneration harnesses |
//!
//! ## Quickstart
//!
//! Run the four algorithms of the paper over an identical workload on
//! the paper's 10-datacenter deployment and compare their steady-state
//! replica utilization:
//!
//! ```
//! use rfh::prelude::*;
//!
//! let params = SimParams {
//!     config: SimConfig { partitions: 16, ..SimConfig::default() },
//!     scenario: Scenario::RandomEven,
//!     policy: PolicyKind::Rfh, // replaced per-policy by the runner
//!     epochs: 50,
//!     seed: 7,
//!     events: EventSchedule::new(),
//!     faults: FaultPlan::default(),
//!     threads: 1,
//! };
//! let cmp = run_comparison(&params).unwrap();
//! let util = |k| {
//!     let s = cmp.of(k).expect("policy ran").metrics.series("utilization").unwrap();
//!     s.mean_over(40, 50)
//! };
//! assert!(util(PolicyKind::Rfh) > util(PolicyKind::Random));
//! ```
//!
//! See `examples/` for larger scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment inventory.

#![warn(missing_docs)]

pub use rfh_consistency as consistency;
pub use rfh_core as core;
pub use rfh_experiments as experiments;
pub use rfh_faults as faults;
pub use rfh_net as net;
pub use rfh_obs as obs;
pub use rfh_ring as ring;
pub use rfh_sim as sim;
pub use rfh_stats as stats;
pub use rfh_topology as topology;
pub use rfh_traffic as traffic;
pub use rfh_types as types;
pub use rfh_workload as workload;

/// The names most programs need, in one import.
pub mod prelude {
    pub use rfh_consistency::{ConsistencyReport, ConsistencyTracker};
    pub use rfh_core::{
        Action, EpochContext, OwnerOrientedPolicy, PolicyKind, RandomPolicy, ReplicaManager,
        ReplicationPolicy, RequestOrientedPolicy, RfhPolicy,
    };
    pub use rfh_faults::{
        FaultAction, FaultInjector, FaultPlan, InvariantAuditor, Violation, ViolationKind,
    };
    pub use rfh_net::{DistributedRfhPolicy, Network, NetworkFaults};
    pub use rfh_obs::{
        DecisionEvent, MetricsRegistry, NullRecorder, ProfileReport, Profiler, Recorder,
        TraceRecorder,
    };
    pub use rfh_ring::ConsistentHashRing;
    pub use rfh_sim::{
        run_comparison, run_comparison_observed, ComparisonResult, ObsOptions, SimParams,
        SimResult, Simulation,
    };
    pub use rfh_topology::{paper_topology, paper_topology_spec, Topology, TopologyBuilder};
    pub use rfh_types::{
        Bandwidth, Bytes, Continent, DatacenterId, Epoch, FlashCrowdConfig, GeoPoint, PartitionId,
        Result, RfhError, ServerId, SimConfig, Thresholds,
    };
    pub use rfh_workload::{
        ClusterEvent, EventSchedule, QueryLoad, Scenario, Trace, WorkloadGenerator,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let cfg = SimConfig::default();
        assert_eq!(cfg.partitions, 64);
        let topo = paper_topology(0.0, 0).unwrap();
        assert_eq!(topo.server_count(), 100);
        assert_eq!(PolicyKind::ALL.len(), 4);
    }
}
