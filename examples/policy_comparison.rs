//! Head-to-head: run all four replication algorithms of the paper over
//! a byte-identical workload and print a steady-state scoreboard.
//!
//! ```text
//! cargo run --release --example policy_comparison [seed]
//! ```

use rfh::prelude::*;

const EPOCHS: u64 = 250;

fn main() -> Result<()> {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let params = SimParams {
        config: SimConfig::default(),
        scenario: Scenario::RandomEven,
        policy: PolicyKind::Rfh, // replaced per policy by the runner
        epochs: EPOCHS,
        seed,
        events: EventSchedule::new(),
        faults: FaultPlan::default(),
        threads: 1,
    };
    let cmp = run_comparison(&params)?;

    let tail = |kind: PolicyKind, metric: &str| {
        let s = cmp
            .of(kind)
            .expect("comparison carries every policy")
            .metrics
            .series(metric)
            .expect("metric exists");
        s.mean_over((EPOCHS as usize) * 3 / 4, EPOCHS as usize)
    };

    println!("steady state over the last quarter of {EPOCHS} epochs (seed {seed}):\n");
    println!("{:22} {:>9} {:>9} {:>9} {:>9}", "metric", "Request", "Owner", "Random", "RFH");
    for (label, metric) in [
        ("replica utilization", "utilization"),
        ("total replicas", "replicas_total"),
        ("replicas / partition", "replicas_avg"),
        ("replication cost (cum)", "replication_cost"),
        ("migrations (cum)", "migrations_total"),
        ("migration cost (cum)", "migration_cost"),
        ("load imbalance", "load_imbalance"),
        ("lookup path length", "path_length"),
        ("unserved queries/epoch", "unserved"),
    ] {
        print!("{label:22}");
        for kind in PolicyKind::ALL {
            print!(" {:>9.2}", tail(kind, metric));
        }
        println!();
    }

    println!(
        "\nRFH serves the same workload with the fewest replicas at the highest \
         utilization and the lowest total replication cost — the paper's headline \
         (Figs. 3–5). Request-oriented pays for its short lookup paths with the \
         most migrations (Figs. 6–7)."
    );
    Ok(())
}
