//! Fault tolerance in action (the Fig. 10 experiment, extended): a mass
//! failure kills 30 of the 100 servers mid-run, a while later they all
//! recover. RFH re-replicates around the hole and then re-balances.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use rfh::prelude::*;

fn main() -> Result<()> {
    let mut events = EventSchedule::new();
    events.add(290, ClusterEvent::FailRandomServers { count: 30 });
    events.add(450, ClusterEvent::RecoverAll);

    let params = SimParams {
        config: SimConfig::default(),
        scenario: Scenario::RandomEven,
        policy: PolicyKind::Rfh,
        epochs: 600,
        seed: 42,
        events,
        faults: FaultPlan::default(),
        threads: 1,
    };
    let result = Simulation::new(params)?.run()?;

    let replicas = result.metrics.series("replicas_total").expect("series exists");
    let alive = result.metrics.series("alive_servers").expect("series exists");
    let unserved = result.metrics.series("unserved").expect("series exists");

    println!("epoch  alive  replicas  unserved");
    for epoch in [0, 100, 280, 289, 290, 295, 300, 320, 360, 440, 449, 450, 460, 599] {
        println!(
            "{epoch:>5}  {:>5.0}  {:>8.0}  {:>8.1}",
            alive.get(epoch).unwrap_or(0.0),
            replicas.get(epoch).unwrap_or(0.0),
            unserved.get(epoch).unwrap_or(0.0),
        );
    }

    let before = replicas.mean_over(280, 290);
    let trough = (290..340).filter_map(|e| replicas.get(e)).fold(f64::INFINITY, f64::min);
    let recovered = replicas.mean_over(420, 450);
    println!(
        "\nThe failure wiped out {:.0} replicas ({:.0} → {:.0}); the availability floor \
         (eq. 14, r_min = 2) plus the traffic-hub relief rebuilt the fleet to {:.0} on the \
         70 surviving servers — the paper's Fig. 10 robustness claim.",
        before - trough,
        before,
        trough,
        recovered,
    );
    assert!(alive.get(290) == Some(70.0));
    assert!(alive.get(450) == Some(100.0), "RecoverAll brings everyone back");
    Ok(())
}
