//! The consistency bill of adaptive replication (the paper's stated
//! future work, §V): run RFH under a flash crowd while writes flow to
//! every partition, and measure how stale the reads can get as replicas
//! are created, migrated and reaped.
//!
//! ```text
//! cargo run --release --example consistency
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfh::prelude::*;

const EPOCHS: u64 = 400;
/// Baseline writes per partition per epoch.
const WRITE_RATE: u64 = 1;
/// Every `BURST_PERIOD` epochs one partition takes a write burst.
const BURST_PERIOD: u64 = 50;
/// Burst size in writes.
const BURST_SIZE: u64 = 120;
/// Events each replica may apply per epoch.
const SYNC_BUDGET: u64 = 5;

fn main() -> Result<()> {
    let params = SimParams {
        config: SimConfig::default(),
        scenario: Scenario::FlashCrowd(FlashCrowdConfig::default()),
        policy: PolicyKind::Rfh,
        epochs: EPOCHS,
        seed: 42,
        events: EventSchedule::new(),
        faults: FaultPlan::default(),
        threads: 1,
    };
    let mut sim = Simulation::new(params)?;
    let mut tracker = ConsistencyTracker::new(64, SYNC_BUDGET);
    let mut write_rng = StdRng::seed_from_u64(7);

    println!("epoch  replicas  mean_lag  fresh%  stale-read%  events/epoch");
    let mut worst_stale = 0.0f64;
    for epoch in 0..EPOCHS {
        sim.step()?;
        // A steady trickle of writes everywhere, plus a periodic burst
        // on a rotating partition — the write-side analogue of the
        // flash crowd.
        let burst_target = ((epoch / BURST_PERIOD) % 64) as u32;
        let bursting = epoch % BURST_PERIOD == 0;
        let report = tracker.step(sim.manager(), |p| {
            let jitter = u64::from(write_rng.gen_bool(0.5));
            if bursting && p.0 == burst_target {
                BURST_SIZE
            } else {
                WRITE_RATE + jitter
            }
        });
        worst_stale = worst_stale.max(report.stale_read_probability);
        if epoch % 40 == 0 || epoch % BURST_PERIOD == 3 || epoch == EPOCHS - 1 {
            println!(
                "{epoch:>5}  {:>8}  {:>8.2}  {:>5.1}%  {:>10.1}%  {:>12}",
                sim.manager().total_replicas(),
                report.mean_lag,
                report.fresh_fraction * 100.0,
                report.stale_read_probability * 100.0,
                report.events_propagated,
            );
        }
    }

    println!(
        "\nEvery {BURST_PERIOD} epochs one partition takes a {BURST_SIZE}-write burst \
         against a sync budget of {SYNC_BUDGET} events/replica/epoch, so its replicas \
         go stale and then drain back to freshness over the following epochs \
         (worst-case stale-read probability seen: {:.1}%). Replicas RFH creates ship \
         the current snapshot — born fresh — so the staleness here is purely the \
         write stream outpacing propagation: the consistency-maintenance trade the \
         paper defers to future work, made measurable.",
        worst_stale * 100.0
    );
    Ok(())
}
