//! Extending the world: add an eleventh datacenter (Sydney) to the
//! paper's deployment, drive all queries from it, and watch RFH place
//! replicas along the new trans-Pacific route.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use rfh::prelude::*;
use rfh::topology::PAPER_DC_COUNT;

fn main() -> Result<()> {
    // Start from the paper preset and bolt on Sydney, linked to Tokyo
    // (I, index 8) and San Jose (C, index 2).
    let mut spec = paper_topology_spec();
    let sydney = spec.datacenter(
        "K",
        Continent::Oceania,
        "AUS",
        "SY1",
        GeoPoint::new(-33.87, 151.21),
        1,
        2,
        5,
    )?;
    spec.link(sydney, DatacenterId::new(8), 95.0)?; // Sydney–Tokyo
    spec.link(sydney, DatacenterId::new(2), 140.0)?; // Sydney–San Jose
    let topo = spec.build(0.25, 7)?;
    assert_eq!(topo.datacenters().len(), PAPER_DC_COUNT + 1);

    // All interest comes from Sydney: a permanent antipodean hot spot.
    let params = SimParams {
        config: SimConfig::default(),
        scenario: Scenario::LocationShift { from: sydney.0, to: sydney.0, hot_fraction: 0.8 },
        policy: PolicyKind::Rfh,
        epochs: 150,
        seed: 7,
        events: EventSchedule::new(),
        faults: FaultPlan::default(),
        threads: 1,
    };
    let mut sim = Simulation::with_topology(params, topo)?;
    for _ in 0..150 {
        sim.step()?;
    }

    // Count replicas per site: the Sydney–Tokyo corridor should carry
    // plenty, since 80% of every partition's traffic flows through it.
    let topo = sim.topology();
    let manager = sim.manager();
    let mut per_site: Vec<(String, usize)> =
        topo.datacenters().iter().map(|d| (format!("{} ({})", d.site, d.code), 0)).collect();
    for p in 0..64 {
        for &s in manager.replicas(PartitionId::new(p)) {
            per_site[topo.server(s)?.datacenter.index()].1 += 1;
        }
    }
    println!("replicas per site after 150 epochs of Sydney-origin load:");
    for (site, count) in &per_site {
        println!("  {site:10} {count:>4}  {}", "#".repeat(*count / 4));
    }

    let k = per_site.last().expect("Sydney exists").1;
    let mean = per_site.iter().map(|&(_, c)| c).sum::<usize>() as f64 / per_site.len() as f64;
    println!(
        "\nSydney itself holds {k} replicas ({}× the per-site mean of {mean:.0}) — \
         traffic-oriented placement followed the demand to the new continent.",
        (k as f64 / mean).round()
    );
    Ok(())
}
