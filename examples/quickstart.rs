//! Quickstart: simulate the RFH algorithm on the paper's 10-datacenter
//! deployment for 100 epochs of random-even queries and print what it
//! did.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rfh::prelude::*;

fn main() -> Result<()> {
    // Table I parameters, the paper's topology (Fig. 1), uniform query
    // origins.
    let params = SimParams {
        config: SimConfig::default(),
        scenario: Scenario::RandomEven,
        policy: PolicyKind::Rfh,
        epochs: 100,
        seed: 42,
        events: EventSchedule::new(),
        faults: FaultPlan::default(),
        threads: 1,
    };
    let mut sim = Simulation::new(params)?;

    println!("epoch  replicas  served  unserved  utilization");
    for epoch in 0..100u64 {
        let snap = sim.step()?;
        if epoch % 10 == 0 {
            println!(
                "{epoch:>5}  {:>8}  {:>6.0}  {:>8.1}  {:>10.2}",
                snap.replicas_total, snap.served, snap.unserved, snap.utilization
            );
        }
    }

    // Where did RFH put the replicas of the hottest partition?
    let manager = sim.manager();
    let topo = sim.topology();
    let hot = PartitionId::new(0); // Zipf rank 0 = hottest
    println!("\nhottest partition ({hot}) replicas:");
    for &server in manager.replicas(hot) {
        let s = topo.server(server)?;
        let dc = topo.datacenter(s.datacenter)?;
        let role = if server == manager.holder(hot) { "primary" } else { "replica" };
        println!("  {role} on {} (site {}, {})", s.label, dc.site, dc.country);
    }
    Ok(())
}
