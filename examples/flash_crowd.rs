//! The paper's flash-crowd showdown (§II-F, §III): 80% of queries jump
//! between continents every 100 epochs. Compares how all four
//! algorithms hold up, stage by stage.
//!
//! ```text
//! cargo run --release --example flash_crowd
//! ```

use rfh::prelude::*;

const EPOCHS: u64 = 400;

fn main() -> Result<()> {
    let params = SimParams {
        config: SimConfig::default(),
        scenario: Scenario::FlashCrowd(FlashCrowdConfig::default()),
        policy: PolicyKind::Rfh, // replaced per policy by the runner
        epochs: EPOCHS,
        seed: 42,
        events: EventSchedule::new(),
        faults: FaultPlan::default(),
        threads: 1,
    };
    let cmp = run_comparison(&params)?;

    println!("Four-stage flash crowd: hot requesters move (H,I,J) → (A,B,C) → (E,F,G) → uniform\n");
    println!("mean replica utilization per stage:");
    println!("{:8} {:>8} {:>8} {:>8} {:>8}", "policy", "stage1", "stage2", "stage3", "stage4");
    for kind in PolicyKind::ALL {
        let r = cmp.of(kind).expect("comparison carries every policy");
        let s = r.metrics.series("utilization").expect("metric exists");
        let q = (EPOCHS / 4) as usize;
        print!("{:8}", kind.name());
        for stage in 0..4 {
            // Skip the first 20 epochs of each stage (adaptation).
            print!(" {:>8.2}", s.mean_over(stage * q + 20, (stage + 1) * q));
        }
        println!();
    }

    println!("\nmigrations accumulated by the end:");
    for kind in PolicyKind::ALL {
        let r = cmp.of(kind).expect("comparison carries every policy");
        let m = r.metrics.series("migrations_total").expect("metric exists");
        println!("  {:8} {:>8.0}", kind.name(), m.last().unwrap_or(0.0));
    }

    println!("\ntotal replicas at the end (adaptation overhead):");
    for kind in PolicyKind::ALL {
        let res = cmp.of(kind).expect("comparison carries every policy");
        let r = res.metrics.series("replicas_total").expect("metric exists");
        println!("  {:8} {:>8.0}", kind.name(), r.last().unwrap_or(0.0));
    }

    let rfh = cmp
        .of(PolicyKind::Rfh)
        .expect("comparison carries every policy")
        .metrics
        .series("utilization")
        .expect("metric exists");
    let req = cmp
        .of(PolicyKind::RequestOriented)
        .expect("comparison carries every policy")
        .metrics
        .series("utilization")
        .expect("metric exists");
    println!(
        "\nAfter the crowd moves (epoch 100+): RFH keeps {:.0}% utilization while \
         request-oriented drops to {:.0}% — the replicas it parked next to the old \
         requesters are stranded (the paper's Fig. 3(b) story).",
        rfh.mean_over(120, 400) * 100.0,
        req.mean_over(120, 400) * 100.0
    );
    Ok(())
}
