//! The control plane made visible: run RFH as the *message-passing*
//! agent of §II-B (traffic reports piggybacked hop-by-hop toward the
//! partition holders) and compare it against the centralized agent —
//! first with a control plane that keeps up with the epochs, then with
//! one an order of magnitude slower.
//!
//! ```text
//! cargo run --release --example distributed
//! ```

use rfh::prelude::*;

const EPOCHS: u64 = 200;

fn run_with(agent: Option<DistributedRfhPolicy>) -> Result<SimResult> {
    let params = SimParams {
        config: SimConfig::default(),
        scenario: Scenario::FlashCrowd(FlashCrowdConfig::default()),
        policy: PolicyKind::Rfh,
        epochs: EPOCHS,
        seed: 42,
        events: EventSchedule::new(),
        faults: FaultPlan::default(),
        threads: 1,
    };
    let sim = Simulation::new(params)?;
    match agent {
        Some(a) => sim.with_custom_policy(Box::new(a)).run(),
        None => sim.run(),
    }
}

fn main() -> Result<()> {
    let centralized = run_with(None)?;
    let fast = run_with(Some(DistributedRfhPolicy::new(8)))?; // ≥ WAN diameter
    let slow = run_with(Some(DistributedRfhPolicy::new(1)))?; // 1 hop/epoch

    let tail = |r: &SimResult, m: &str| {
        let s = r.metrics.series(m).expect("metric exists");
        s.mean_over((EPOCHS as usize) * 3 / 4, EPOCHS as usize)
    };

    println!("{:34} {:>12} {:>12} {:>12}", "", "centralized", "dist (fast)", "dist (slow)");
    for (label, metric) in [
        ("replica utilization", "utilization"),
        ("total replicas", "replicas_total"),
        ("replication cost (cum)", "replication_cost"),
        ("unserved queries/epoch", "unserved"),
    ] {
        println!(
            "{label:34} {:>12.2} {:>12.2} {:>12.2}",
            tail(&centralized, metric),
            tail(&fast, metric),
            tail(&slow, metric),
        );
    }

    assert_eq!(
        centralized.metrics, fast.metrics,
        "same-epoch delivery must reproduce the centralized agent exactly"
    );
    println!(
        "\nWith a tick budget covering the WAN diameter, the distributed agent's \
         decisions are IDENTICAL to the centralized one — every column matches to \
         the last bit (asserted above). At one hop per epoch the traffic reports \
         arrive up to four epochs stale: the agent still tracks the flash crowd, \
         just later and a little worse.\n"
    );

    // Control-plane cost: take a stats handle before boxing the agent.
    let probe = DistributedRfhPolicy::new(8);
    let stats = probe.stats();
    let params = SimParams {
        config: SimConfig::default(),
        scenario: Scenario::FlashCrowd(FlashCrowdConfig::default()),
        policy: PolicyKind::Rfh,
        epochs: 50,
        seed: 42,
        events: EventSchedule::new(),
        faults: FaultPlan::default(),
        threads: 1,
    };
    Simulation::new(params)?.with_custom_policy(Box::new(probe)).run()?;
    println!(
        "Control-plane bill over 50 flash-crowd epochs: {} traffic reports, \
         {} WAN hops travelled ({:.1} hops/report), {} still in flight.",
        stats.reports_sent(),
        stats.control_hops(),
        stats.control_hops() as f64 / stats.reports_sent().max(1) as f64,
        stats.reports_in_flight(),
    );
    Ok(())
}
