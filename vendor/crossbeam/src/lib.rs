//! Offline stand-in for the `crossbeam` crate.
//!
//! Two APIs are provided — the ones this workspace uses:
//!
//! * `crossbeam::thread::scope` / `Scope::spawn`, implemented directly
//!   on top of `std::thread::scope` (stable since Rust 1.63, which
//!   postdates the original choice of crossbeam for scoped threads);
//! * `crossbeam::channel` with `unbounded` / `bounded`, implemented on
//!   `std::sync::mpsc`. Crossbeam's senders are MPMC and clonable for
//!   both flavors; mpsc gives us that for senders (which is all the
//!   serve runtime needs — each receiver has exactly one owner thread).

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// The error half of [`scope`]'s and [`ScopedJoinHandle::join`]'s
    /// result: the payload of a panicked thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope in which child threads may borrow from the caller's stack.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may outlive the closure creating it but
        /// not the enclosing [`scope`] call. The closure receives the
        /// scope back, crossbeam-style, so nested spawns work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Run `f` with a scope handle; all threads spawned in the scope are
    /// joined before this returns. Unlike crossbeam, an unjoined
    /// panicked child propagates its panic here instead of surfacing as
    /// `Err` — every caller in this workspace joins all of its handles,
    /// so the distinction never materializes.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Multi-producer channels with the crossbeam surface, backed by
    //! `std::sync::mpsc`.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of a channel. Clonable; `send` blocks only for
    /// bounded channels at capacity.
    pub enum Sender<T> {
        /// Sender for an [`unbounded`] channel.
        Unbounded(mpsc::Sender<T>),
        /// Sender for a [`bounded`] channel.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        /// Fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(value),
                Sender::Bounded(tx) => tx.send(value),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Block for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Blocking iterator over messages; ends when all senders drop.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn join_surfaces_panics() {
        let res = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(res.is_err());
    }

    #[test]
    fn unbounded_channel_delivers_from_cloned_senders() {
        let (tx, rx) = crate::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn bounded_channel_blocks_at_capacity_and_times_out_when_empty() {
        let (tx, rx) = crate::channel::bounded::<u32>(1);
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(crate::channel::RecvTimeoutError::Timeout)
        ));
        crate::thread::scope(|scope| {
            let h = scope.spawn(|_| {
                tx.send(1).unwrap();
                tx.send(2).unwrap(); // blocks until the first is drained
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap();
        })
        .unwrap();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
