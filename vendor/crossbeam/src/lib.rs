//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are provided — the
//! one API this workspace uses — implemented directly on top of
//! `std::thread::scope` (stable since Rust 1.63, which postdates the
//! original choice of crossbeam for scoped threads).

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// The error half of [`scope`]'s and [`ScopedJoinHandle::join`]'s
    /// result: the payload of a panicked thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope in which child threads may borrow from the caller's stack.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may outlive the closure creating it but
        /// not the enclosing [`scope`] call. The closure receives the
        /// scope back, crossbeam-style, so nested spawns work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Run `f` with a scope handle; all threads spawned in the scope are
    /// joined before this returns. Unlike crossbeam, an unjoined
    /// panicked child propagates its panic here instead of surfacing as
    /// `Err` — every caller in this workspace joins all of its handles,
    /// so the distinction never materializes.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn join_surfaces_panics() {
        let res = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(res.is_err());
    }
}
