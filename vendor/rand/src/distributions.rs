//! The [`Standard`] distribution and its trait.

use crate::{Rng, RngCore};

/// A way of producing values of `T` from uniform bits.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform over the "natural" domain of the type: `[0, 1)` for floats,
/// the full value range for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (RngCore::next_u64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (RngCore::next_u64(rng) >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        RngCore::next_u64(rng) & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
