//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand`'s API it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. Streams are deterministic per seed (xoshiro256++
//! seeded through SplitMix64) but are *not* bit-compatible with upstream
//! `rand`'s ChaCha-based `StdRng`; everything in this workspace treats the
//! RNG as an opaque deterministic source, so only per-seed stability
//! matters.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution (uniform unit
    /// interval for floats, full range for integers).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire-style unbiased-enough bounded sample in `[0, span)`.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let z = r.gen_range(5u32..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..10_000).map(|_| r.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.1)));
    }
}
