//! String strategies from `&'static str` regex-like patterns.
//!
//! Supports the subset used in this workspace: a concatenation of
//! character classes, each optionally repeated — `"[A-Z]{3}"`,
//! `"[A-Z][A-Z0-9]{0,3}"`, `"[ -~]{0,40}"`. Classes may contain single
//! characters and `a-b` ranges.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

struct Atom {
    /// Inclusive character ranges (a single char is `(c, c)`).
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        assert_eq!(c, '[', "unsupported pattern {pattern:?}: expected '['");
        let mut class: Vec<char> = Vec::new();
        for d in chars.by_ref() {
            if d == ']' {
                break;
            }
            class.push(d);
        }
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                ranges.push((class[i], class[i + 2]));
                i += 3;
            } else if i + 2 == class.len() && class[i + 1] == '-' {
                // Trailing literal '-': e.g. "[a-z-]".
                ranges.push((class[i], class[i]));
                ranges.push(('-', '-'));
                i += 2;
            } else {
                ranges.push((class[i], class[i]));
                i += 1;
            }
        }
        assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => {
                    (lo.parse().expect("bad repeat count"), hi.parse().expect("bad repeat count"))
                }
                None => {
                    let n = spec.parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repeat range in {pattern:?}");
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

fn sample_char(ranges: &[(char, char)], rng: &mut StdRng) -> char {
    let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
    let mut pick = rng.gen_range(0..total as usize) as u32;
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick).expect("range stays in scalar values");
        }
        pick -= span;
    }
    unreachable!()
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(sample_char(&atom.ranges, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn patterns_generate_within_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = "[A-Z]{3}".generate(&mut rng);
            assert_eq!(s.len(), 3);
            assert!(s.chars().all(|c| c.is_ascii_uppercase()));

            let s = "[A-Z][A-Z0-9]{0,3}".generate(&mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            assert!(s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()));

            let s = "[ -~]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
