//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors
//! the slice of proptest's API the workspace uses: the [`Strategy`]
//! trait (`prop_map`, `prop_flat_map`, `boxed`), range / tuple / string
//! / collection strategies, `any`, `Just`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   panic message) but is not minimized.
//! * **Deterministic seeding.** Cases derive from an FNV-1a hash of the
//!   test's module path and name, so a failure always reproduces; the
//!   `.proptest-regressions` persistence files are ignored.
//! * Strategies are *generators*: `Strategy::generate` draws one value
//!   from an RNG. This matches how every test in the workspace treats
//!   them.

use rand::rngs::StdRng;
use rand::Rng;

#[doc(hidden)]
pub use rand;

pub mod collection;
pub mod sample;
mod string;

/// A recipe for producing values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every produced value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Produce a value, then use it to pick a second strategy to draw
    /// the final value from.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased [`Strategy`] (see [`Strategy::boxed`]).
pub struct BoxedStrategy<V>(std::rc::Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Construct from a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

/// The full-domain strategy for `A` (see [`any`]).
pub struct Any<A>(std::marker::PhantomData<A>);

/// Strategy over the whole domain of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);

/// Per-`proptest!` block configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) test case, carried by `prop_assert*`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a, used to derive a stable per-test seed from its name.
#[doc(hidden)]
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` that draws `config.cases` input tuples and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                const BASE_SEED: u64 =
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut prop_rng =
                        <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                            BASE_SEED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {}: case {} failed: {}\n(seeding is deterministic; re-running reproduces this case)",
                            stringify!($name), case, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` for property bodies: fails the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                left
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}\n{}",
                left,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice between heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The names tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced access to strategy modules (`prop::sample::Index`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}
