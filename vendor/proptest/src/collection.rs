//! Collection strategies: `vec` and `hash_set`.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;

/// A collection size specification: an exact size, a half-open range,
/// or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with a size drawn from `size`. The
/// element domain must be large enough to supply `size` distinct
/// values, as with upstream proptest.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, size: size.into() }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while set.len() < target {
            set.insert(self.element.generate(rng));
            attempts += 1;
            // Collisions shrink the set below `target`; that is fine as
            // long as the caller's minimum is met. Guard against domains
            // smaller than the minimum with a generous attempt budget.
            if attempts > 100 + target * 100 && set.len() >= self.size.min {
                break;
            }
            assert!(
                attempts < 1_000_000,
                "hash_set strategy cannot reach minimum size {} (domain too small?)",
                self.size.min
            );
        }
        set
    }
}
