//! Sampling helpers: the [`Index`] type.

use crate::Arbitrary;
use rand::rngs::StdRng;
use rand::Rng;

/// A length-independent index: drawn once, projected onto any
/// collection length with [`Index::index`].
#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    /// Project onto `[0, len)`. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        ((self.0 as u128 * len as u128) >> 64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        Index(rng.gen::<u64>())
    }
}
