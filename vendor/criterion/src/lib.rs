//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset this workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group`, `Bencher::{iter, iter_batched}`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros —
//! measured with plain `std::time::Instant` and reported as mean
//! ns/iteration on stdout. No statistics, plots, or baselines.
//!
//! Like upstream criterion, running the bench binary with `--test`
//! (what `cargo test` does for `harness = false` bench targets)
//! executes every routine exactly once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per setup batch upstream.
    SmallInput,
    /// Large inputs: few iterations per setup batch upstream.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` only, re-running `setup` outside the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark manager.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: std::env::args().any(|a| a == "--test"), sample_size: 100 }
    }
}

/// Run one benchmark closure and return (iterations, elapsed).
fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> (u64, Duration) {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    (iters, b.elapsed)
}

impl Criterion {
    fn run_named<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if self.test_mode {
            run_once(&mut f, 1);
            println!("Testing {id} ... ok");
            return;
        }
        // Calibrate: aim for ~200 ms of measurement, capped by
        // sample_size-scaled iteration growth for slow routines.
        let (_, probe) = run_once(&mut f, 1);
        let per_iter = probe.max(Duration::from_nanos(1));
        let budget = Duration::from_millis(200).min(per_iter * self.sample_size as u32);
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000_000) as u64;
        let (n, elapsed) = run_once(&mut f, iters);
        let mean_ns = elapsed.as_nanos() as f64 / n as f64;
        println!("{id}: {} iters, mean {:.1} ns/iter", n, mean_ns);
    }

    /// Benchmark a single function under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_named(id, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Lower/raise the per-benchmark sample budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` as `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_named(&full, f);
        self
    }

    /// Close the group (restores the default sample size).
    pub fn finish(self) {
        self.criterion.sample_size = 100;
    }
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
