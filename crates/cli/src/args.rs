//! Hand-rolled argument parsing.
//!
//! Grammar: `<command> (--key value | --flag)*`. Value options take
//! exactly one value; flags ([`FLAGS`]) take none. Unknown options are
//! rejected at parse time (commands validate which options they accept
//! semantically).

use rfh_core::PolicyKind;
use rfh_faults::FaultPlan;
use rfh_sim::{EngineMode, PlannerConfig};
use rfh_types::{FlashCrowdConfig, Result, RfhError};
use rfh_workload::Scenario;
use std::collections::BTreeMap;

/// Parsed options: `--key value` pairs.
pub type Options = BTreeMap<String, String>;

/// Options recognised anywhere (commands ignore what they don't use but
/// typos should not pass silently).
const KNOWN: [&str; 33] = [
    "persist-dir",
    "placement",
    "planner",
    "link-budget",
    "data-plane",
    "pipeline",
    "policy",
    "scenario",
    "epochs",
    "seed",
    "threads",
    "partitions",
    "skew",
    "engine",
    "csv",
    "csv-dir",
    "out",
    "trace",
    "faults",
    "fault-seed",
    "config",
    "cluster-config",
    "connect",
    "addr-file",
    "report",
    "duration-secs",
    "ops",
    "file",
    "interval-ms",
    "sample",
    "spans",
    "telemetry-addrs",
    "timeline",
];

/// Valueless options, stored as `"true"` when present.
pub const FLAGS: [&str; 1] = ["profile"];

/// Split an argument list into `(command, options)`.
pub fn parse(argv: &[String]) -> Result<(String, Options)> {
    let mut it = argv.iter();
    let command = it.next().cloned().unwrap_or_default();
    let mut opts = Options::new();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(RfhError::InvalidConfig {
                parameter: "arguments",
                reason: format!("expected --option, got {arg:?}"),
            });
        };
        if FLAGS.contains(&key) {
            opts.insert(key.to_string(), "true".to_string());
            continue;
        }
        if !KNOWN.contains(&key) {
            return Err(RfhError::InvalidConfig {
                parameter: "arguments",
                reason: format!("unknown option --{key}; try `rfh help`"),
            });
        }
        let Some(value) = it.next() else {
            return Err(RfhError::InvalidConfig {
                parameter: "arguments",
                reason: format!("--{key} needs a value"),
            });
        };
        opts.insert(key.to_string(), value.clone());
    }
    Ok((command, opts))
}

/// Whether a valueless flag (one of [`FLAGS`]) was given.
pub fn flag(opts: &Options, key: &str) -> bool {
    opts.get(key).map(String::as_str) == Some("true")
}

/// `--policy` (default RFH), adjusted by `--placement`: RFH with
/// `--placement domain-spread` is the failure-domain-aware variant
/// ([`PolicyKind::DomainSpread`], also reachable as `--policy spread`).
pub fn policy(opts: &Options) -> Result<PolicyKind> {
    let kind = match opts.get("policy").map(String::as_str) {
        None | Some("rfh") => PolicyKind::Rfh,
        Some("spread") => PolicyKind::DomainSpread,
        Some("random") => PolicyKind::Random,
        Some("owner") => PolicyKind::OwnerOriented,
        Some("request") => PolicyKind::RequestOriented,
        Some(other) => {
            return Err(RfhError::InvalidConfig {
                parameter: "policy",
                reason: format!("{other:?} is not one of rfh|spread|random|owner|request"),
            })
        }
    };
    match opts.get("placement").map(String::as_str) {
        None | Some("traffic") => Ok(kind),
        Some("domain-spread") => match kind {
            PolicyKind::Rfh | PolicyKind::DomainSpread => Ok(PolicyKind::DomainSpread),
            other => Err(RfhError::InvalidConfig {
                parameter: "placement",
                reason: format!("--placement domain-spread applies to the RFH policy, not {other}"),
            }),
        },
        Some(other) => Err(RfhError::InvalidConfig {
            parameter: "placement",
            reason: format!("{other:?} is not one of traffic|domain-spread"),
        }),
    }
}

/// `--planner off|on` plus `--link-budget BYTES`: the per-epoch
/// transfer planner. Off (the default) keeps the greedy execution
/// path; `--planner on` without a budget plans against unlimited links
/// (the differential-test arm); `--link-budget` caps each WAN link's
/// bytes per epoch and implies `--planner on`.
pub fn planner(opts: &Options) -> Result<PlannerConfig> {
    let budget = match opts.get("link-budget") {
        None => None,
        Some(v) => {
            let n: u64 = v.parse().map_err(|_| RfhError::InvalidConfig {
                parameter: "link-budget",
                reason: format!("{v:?} is not a byte count"),
            })?;
            if n == 0 {
                return Err(RfhError::InvalidConfig {
                    parameter: "link-budget",
                    reason: "--link-budget must be at least 1 byte".into(),
                });
            }
            Some(n)
        }
    };
    match opts.get("planner").map(String::as_str) {
        None => Ok(match budget {
            Some(b) => PlannerConfig::budgeted(b),
            None => PlannerConfig::default(),
        }),
        Some("on") => Ok(PlannerConfig { enabled: true, link_budget_bytes: budget }),
        Some("off") => match budget {
            Some(_) => Err(RfhError::InvalidConfig {
                parameter: "planner",
                reason: "--link-budget is meaningless with --planner off".into(),
            }),
            None => Ok(PlannerConfig::default()),
        },
        Some(other) => Err(RfhError::InvalidConfig {
            parameter: "planner",
            reason: format!("{other:?} is not one of on|off"),
        }),
    }
}

/// `--scenario` (default random-even).
pub fn scenario(opts: &Options) -> Result<Scenario> {
    match opts.get("scenario").map(String::as_str) {
        None | Some("random") => Ok(Scenario::RandomEven),
        Some("flash") => Ok(Scenario::FlashCrowd(FlashCrowdConfig::default())),
        Some("popularity") => Ok(Scenario::PopularityShift),
        Some(other) => Err(RfhError::InvalidConfig {
            parameter: "scenario",
            reason: format!("{other:?} is not one of random|flash|popularity"),
        }),
    }
}

/// `--epochs` (default 250).
pub fn epochs(opts: &Options) -> Result<u64> {
    numeric(opts, "epochs", 250)
}

/// `--seed` (default 42).
pub fn seed(opts: &Options) -> Result<u64> {
    numeric(opts, "seed", 42)
}

/// `--threads` (default: the machine's available parallelism). Worker
/// threads for the epoch hot path; results are bit-identical for any
/// value, so the default trades nothing for speed.
pub fn threads(opts: &Options) -> Result<usize> {
    let default = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = numeric(opts, "threads", default as u64)?;
    if n == 0 {
        return Err(RfhError::InvalidConfig {
            parameter: "threads",
            reason: "--threads must be at least 1".into(),
        });
    }
    Ok(n as usize)
}

/// `--partitions N`: override the config's partition count. Partition
/// ids are `u32`, so values past `u32::MAX` are rejected up front with
/// a pointed message instead of wrapping or failing deep in setup.
pub fn partitions(opts: &Options) -> Result<Option<u32>> {
    let Some(v) = opts.get("partitions") else {
        return Ok(None);
    };
    let n: u64 = v.parse().map_err(|_| RfhError::InvalidConfig {
        parameter: "partitions",
        reason: format!("{v:?} is not a non-negative integer"),
    })?;
    if n == 0 {
        return Err(RfhError::InvalidConfig {
            parameter: "partitions",
            reason: "--partitions must be at least 1".into(),
        });
    }
    u32::try_from(n).map(Some).map_err(|_| RfhError::InvalidConfig {
        parameter: "partitions",
        reason: format!("{n} exceeds the u32 partition-id space (max {})", u32::MAX),
    })
}

/// `--skew S`: override the workload's Zipf skew exponent.
pub fn skew(opts: &Options) -> Result<Option<f64>> {
    let Some(v) = opts.get("skew") else {
        return Ok(None);
    };
    let s: f64 = v.parse().map_err(|_| RfhError::InvalidConfig {
        parameter: "skew",
        reason: format!("{v:?} is not a number"),
    })?;
    if !s.is_finite() || s < 0.0 {
        return Err(RfhError::InvalidConfig {
            parameter: "skew",
            reason: format!("{s} is not a finite non-negative skew"),
        });
    }
    Ok(Some(s))
}

/// `--engine dense|sparse` (default sparse). Either engine yields
/// bit-identical results; dense exists for differential testing and
/// timing comparisons.
pub fn engine(opts: &Options) -> Result<EngineMode> {
    match opts.get("engine").map(String::as_str) {
        None | Some("sparse") => Ok(EngineMode::Sparse),
        Some("dense") => Ok(EngineMode::Dense),
        Some(other) => Err(RfhError::InvalidConfig {
            parameter: "engine",
            reason: format!("{other:?} is not one of dense|sparse"),
        }),
    }
}

/// `--faults PLAN.toml` / `--fault-seed N`: the chaos schedule. With no
/// `--faults` file the plan is empty (and `--fault-seed` alone changes
/// nothing: an empty plan builds no injector). `--fault-seed` overrides
/// the `seed =` line of the plan file, so one schedule can be replayed
/// under different stochastic churn.
pub fn fault_plan(opts: &Options) -> Result<FaultPlan> {
    let mut plan = match opts.get("faults") {
        None => FaultPlan::default(),
        Some(path) => FaultPlan::from_toml_str(&std::fs::read_to_string(path)?)?,
    };
    if let Some(v) = opts.get("fault-seed") {
        plan.seed = v.parse().map_err(|_| RfhError::InvalidConfig {
            parameter: "fault-seed",
            reason: format!("{v:?} is not a non-negative integer"),
        })?;
    }
    Ok(plan)
}

/// A `--key N` numeric option with a default.
pub fn numeric(opts: &Options, key: &'static str, default: u64) -> Result<u64> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| RfhError::InvalidConfig {
            parameter: key,
            reason: format!("{v:?} is not a non-negative integer"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let (cmd, opts) = parse(&argv("run --policy owner --epochs 99")).unwrap();
        assert_eq!(cmd, "run");
        assert_eq!(opts.get("policy").unwrap(), "owner");
        assert_eq!(epochs(&opts).unwrap(), 99);
        assert_eq!(seed(&opts).unwrap(), 42, "default seed");
        assert_eq!(policy(&opts).unwrap(), PolicyKind::OwnerOriented);
    }

    #[test]
    fn empty_argv_is_help() {
        let (cmd, opts) = parse(&[]).unwrap();
        assert_eq!(cmd, "");
        assert!(opts.is_empty());
    }

    #[test]
    fn profile_flag_takes_no_value() {
        let (_, opts) = parse(&argv("run --profile --epochs 3")).unwrap();
        assert!(flag(&opts, "profile"));
        assert_eq!(epochs(&opts).unwrap(), 3, "--profile must not eat the next token");
        let (_, opts) = parse(&argv("run --epochs 3")).unwrap();
        assert!(!flag(&opts, "profile"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&argv("run stray")).is_err(), "non-option token");
        assert!(parse(&argv("run --epochs")).is_err(), "missing value");
        assert!(parse(&argv("run --bogus 1")).is_err(), "unknown option");
        let (_, opts) = parse(&argv("run --epochs twelve")).unwrap();
        assert!(epochs(&opts).is_err(), "non-numeric value");
    }

    #[test]
    fn fault_plan_option_loads_and_overrides_seed() {
        let (_, o) = parse(&argv("run")).unwrap();
        assert!(fault_plan(&o).unwrap().is_empty(), "no --faults means no chaos");
        let (_, o) = parse(&argv("run --fault-seed 9")).unwrap();
        assert!(fault_plan(&o).unwrap().is_empty(), "a seed alone injects nothing");

        let dir = std::env::temp_dir().join(format!("rfh_fault_args_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plan.toml");
        std::fs::write(&file, "seed = 4\n\n[[at]]\nepoch = 10\nfail_dc = 3\n").unwrap();
        let (_, o) = parse(&argv(&format!("run --faults {}", file.display()))).unwrap();
        let plan = fault_plan(&o).unwrap();
        assert_eq!(plan.seed, 4);
        assert_eq!(plan.scheduled.len(), 1);
        let (_, o) =
            parse(&argv(&format!("run --faults {} --fault-seed 99", file.display()))).unwrap();
        assert_eq!(fault_plan(&o).unwrap().seed, 99, "--fault-seed wins over the file");

        let (_, o) = parse(&argv("run --faults /nonexistent/plan.toml")).unwrap();
        assert!(fault_plan(&o).is_err(), "missing plan file errors cleanly");
        std::fs::write(&file, "epoch = broken [[").unwrap();
        let (_, o) = parse(&argv(&format!("run --faults {}", file.display()))).unwrap();
        assert!(fault_plan(&o).is_err(), "malformed plan errors cleanly");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partitions_skew_and_engine_options() {
        let (_, o) = parse(&argv("run")).unwrap();
        assert_eq!(partitions(&o).unwrap(), None, "no override by default");
        assert_eq!(skew(&o).unwrap(), None);
        assert_eq!(engine(&o).unwrap(), EngineMode::Sparse, "sparse is the default");

        let (_, o) = parse(&argv("run --partitions 1000000 --skew 1.1 --engine dense")).unwrap();
        assert_eq!(partitions(&o).unwrap(), Some(1_000_000));
        assert_eq!(skew(&o).unwrap(), Some(1.1));
        assert_eq!(engine(&o).unwrap(), EngineMode::Dense);
        let (_, o) = parse(&argv("run --engine sparse")).unwrap();
        assert_eq!(engine(&o).unwrap(), EngineMode::Sparse);

        // u32 overflow is rejected up front with a pointed message.
        let (_, o) = parse(&argv("run --partitions 4294967296")).unwrap();
        let err = partitions(&o).unwrap_err().to_string();
        assert!(err.contains("u32"), "overflow message names the limit: {err}");
        let (_, o) = parse(&argv("run --partitions 4294967295")).unwrap();
        assert_eq!(partitions(&o).unwrap(), Some(u32::MAX), "the max id itself is fine");
        let (_, o) = parse(&argv("run --partitions 0")).unwrap();
        assert!(partitions(&o).is_err(), "zero partitions rejected");
        let (_, o) = parse(&argv("run --partitions many")).unwrap();
        assert!(partitions(&o).is_err(), "non-numeric rejected");

        let (_, o) = parse(&argv("run --skew -0.5")).unwrap();
        assert!(skew(&o).is_err(), "negative skew rejected");
        let (_, o) = parse(&argv("run --skew inf")).unwrap();
        assert!(skew(&o).is_err(), "non-finite skew rejected");
        let (_, o) = parse(&argv("run --engine turbo")).unwrap();
        assert!(engine(&o).is_err(), "unknown engine rejected");
    }

    #[test]
    fn policy_and_scenario_names() {
        for (name, expect) in [
            ("rfh", PolicyKind::Rfh),
            ("spread", PolicyKind::DomainSpread),
            ("random", PolicyKind::Random),
            ("owner", PolicyKind::OwnerOriented),
            ("request", PolicyKind::RequestOriented),
        ] {
            let (_, o) = parse(&argv(&format!("run --policy {name}"))).unwrap();
            assert_eq!(policy(&o).unwrap(), expect);
        }
        let (_, o) = parse(&argv("run --policy dynamo")).unwrap();
        assert!(policy(&o).is_err());

        let (_, o) = parse(&argv("run --scenario flash")).unwrap();
        assert!(matches!(scenario(&o).unwrap(), Scenario::FlashCrowd(_)));
        let (_, o) = parse(&argv("run --scenario weird")).unwrap();
        assert!(scenario(&o).is_err());
        let (_, o) = parse(&argv("run")).unwrap();
        assert!(matches!(scenario(&o).unwrap(), Scenario::RandomEven));
    }

    #[test]
    fn placement_selects_the_spread_variant() {
        let (_, o) = parse(&argv("run --placement domain-spread")).unwrap();
        assert_eq!(policy(&o).unwrap(), PolicyKind::DomainSpread);
        let (_, o) = parse(&argv("run --policy rfh --placement domain-spread")).unwrap();
        assert_eq!(policy(&o).unwrap(), PolicyKind::DomainSpread);
        let (_, o) = parse(&argv("run --policy spread --placement domain-spread")).unwrap();
        assert_eq!(policy(&o).unwrap(), PolicyKind::DomainSpread);
        let (_, o) = parse(&argv("run --policy rfh --placement traffic")).unwrap();
        assert_eq!(policy(&o).unwrap(), PolicyKind::Rfh);
        let (_, o) = parse(&argv("run --policy random --placement domain-spread")).unwrap();
        assert!(policy(&o).is_err(), "spread placement is an RFH variant");
        let (_, o) = parse(&argv("run --placement diagonal")).unwrap();
        assert!(policy(&o).is_err(), "unknown placement rejected");
    }

    #[test]
    fn planner_options_compose() {
        let (_, o) = parse(&argv("run")).unwrap();
        assert_eq!(planner(&o).unwrap(), PlannerConfig::default(), "planner defaults off");
        let (_, o) = parse(&argv("run --planner on")).unwrap();
        assert_eq!(planner(&o).unwrap(), PlannerConfig::unlimited());
        let (_, o) = parse(&argv("run --planner on --link-budget 1048576")).unwrap();
        assert_eq!(planner(&o).unwrap(), PlannerConfig::budgeted(1 << 20));
        let (_, o) = parse(&argv("run --link-budget 1048576")).unwrap();
        assert_eq!(planner(&o).unwrap(), PlannerConfig::budgeted(1 << 20), "budget implies on");
        let (_, o) = parse(&argv("run --planner off")).unwrap();
        assert_eq!(planner(&o).unwrap(), PlannerConfig::default());
        let (_, o) = parse(&argv("run --planner off --link-budget 5")).unwrap();
        assert!(planner(&o).is_err(), "budget with planner off is a contradiction");
        let (_, o) = parse(&argv("run --planner maybe")).unwrap();
        assert!(planner(&o).is_err());
        let (_, o) = parse(&argv("run --link-budget 0")).unwrap();
        assert!(planner(&o).is_err(), "zero budget rejected");
        let (_, o) = parse(&argv("run --link-budget lots")).unwrap();
        assert!(planner(&o).is_err(), "non-numeric budget rejected");
    }
}
