//! The `rfh` binary: thin shell around [`rfh_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match rfh_cli::run(&argv) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
