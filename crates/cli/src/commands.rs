//! The CLI commands.

use crate::args::{self, Options};
use rfh_core::PolicyKind;
use rfh_experiments::table1 as table1_mod;
use rfh_sim::{report, run_comparison, SimParams, Simulation};
use rfh_topology::paper_topology;
use rfh_types::{Result, SimConfig};
use rfh_workload::{EventSchedule, Trace, WorkloadGenerator};
use std::fmt::Write as _;
use std::sync::Arc;

fn params(opts: &Options) -> Result<SimParams> {
    Ok(SimParams {
        config: SimConfig::default(),
        scenario: args::scenario(opts)?,
        policy: args::policy(opts)?,
        epochs: args::epochs(opts)?,
        seed: args::seed(opts)?,
        events: EventSchedule::new(),
    })
}

/// `rfh table1`.
pub fn table1(_opts: &Options) -> Result<String> {
    Ok(table1_mod::render(&SimConfig::default()))
}

/// `rfh topology`: sites, servers, links, and the routes of the paper's
/// running example.
pub fn topology(opts: &Options) -> Result<String> {
    let seed = args::seed(opts)?;
    let topo = paper_topology(SimConfig::default().capacity_spread, seed)?;
    let mut out = String::from("The paper's deployment (Fig. 1):\n\n");
    for dc in topo.datacenters() {
        let _ = writeln!(
            out,
            "  {}  {}-{}-{}  ({:.2}, {:.2})  {} servers",
            dc.site,
            dc.continent,
            dc.country,
            dc.code,
            dc.location.lat_deg,
            dc.location.lon_deg,
            dc.server_count(),
        );
    }
    out.push_str("\nWAN links (one-way latency):\n");
    for dc in topo.datacenters() {
        for (peer, ms) in topo.graph().neighbours(dc.id) {
            if peer.0 > dc.id.0 {
                let _ = writeln!(
                    out,
                    "  {} ↔ {}  {ms:.0} ms  ({:.0} km)",
                    dc.site,
                    topo.datacenter(peer)?.site,
                    topo.distance_km(dc.id, peer)?,
                );
            }
        }
    }
    out.push_str("\nRoutes from the Asian sites to A (the running example):\n");
    let a = topo.datacenter_by_site("A").expect("preset has A").id;
    for site in ["H", "I", "J"] {
        let from = topo.datacenter_by_site(site).expect("preset site").id;
        let path = topo.path(from, a).expect("connected");
        let names: Vec<&str> =
            path.iter().map(|&id| topo.datacenters()[id.index()].site.as_str()).collect();
        let _ = writeln!(
            out,
            "  {} → A: {}  ({:.0} ms)",
            site,
            names.join(" → "),
            topo.graph().latency_ms(from, a).unwrap_or(0.0),
        );
    }
    Ok(out)
}

fn tail(result: &rfh_sim::SimResult, metric: &str) -> f64 {
    let s = result.metrics.series(metric).expect("metric exists");
    s.mean_over(s.len() * 3 / 4, s.len())
}

const SUMMARY_METRICS: [(&str, &str); 8] = [
    ("replica utilization", "utilization"),
    ("total replicas", "replicas_total"),
    ("replication cost (cum)", "replication_cost"),
    ("migrations (cum)", "migrations_total"),
    ("load imbalance", "load_imbalance"),
    ("lookup path length", "path_length"),
    ("mean latency (ms)", "latency_ms"),
    ("SLA within 300 ms", "sla_300ms"),
];

/// `rfh run`: one policy, steady-state summary, optional CSV.
pub fn run_one(opts: &Options) -> Result<String> {
    let p = params(opts)?;
    let label = format!(
        "{} under {} for {} epochs (seed {})",
        p.policy.name(),
        p.scenario.name(),
        p.epochs,
        p.seed
    );
    let result = Simulation::new(p)?.run()?;
    let mut out = format!("{label}\nsteady state (last quarter):\n");
    for (name, metric) in SUMMARY_METRICS {
        let _ = writeln!(out, "  {name:24} {:>12.3}", tail(&result, metric));
    }
    if let Some(path) = opts.get("csv") {
        std::fs::write(path, report::run_csv(&result))?;
        let _ = writeln!(out, "full per-epoch metrics written to {path}");
    }
    Ok(out)
}

/// `rfh compare`: the four-way comparison table.
pub fn compare(opts: &Options) -> Result<String> {
    let p = params(opts)?;
    let label = format!(
        "all four policies under {} for {} epochs (seed {})",
        p.scenario.name(),
        p.epochs,
        p.seed
    );
    let cmp = run_comparison(&p)?;
    let mut out = format!("{label}\nsteady state (last quarter):\n\n");
    let _ = write!(out, "{:26}", "metric");
    for kind in PolicyKind::ALL {
        let _ = write!(out, " {:>10}", kind.name());
    }
    out.push('\n');
    for (name, metric) in SUMMARY_METRICS {
        let _ = write!(out, "{name:26}");
        for kind in PolicyKind::ALL {
            let r = cmp.of(kind).expect("comparison carries every policy");
            let _ = write!(out, " {:>10.3}", tail(r, metric));
        }
        out.push('\n');
    }
    if let Some(dir) = opts.get("csv-dir") {
        let metrics: Vec<&str> = SUMMARY_METRICS.iter().map(|&(_, m)| m).collect();
        report::write_comparison(&cmp, std::path::Path::new(dir), &metrics)?;
        let _ = writeln!(out, "\nper-metric CSVs written under {dir}/");
    }
    Ok(out)
}

/// `rfh replay`: run a policy against a recorded trace file
/// (`--trace FILE`, format as written by `rfh trace`).
pub fn replay(opts: &Options) -> Result<String> {
    let Some(path) = opts.get("trace") else {
        return Err(rfh_types::RfhError::InvalidConfig {
            parameter: "trace",
            reason: "replay needs --trace FILE".into(),
        });
    };
    let csv = std::fs::read_to_string(path)?;
    let cfg = SimConfig::default();
    let trace = Trace::from_csv(&csv, cfg.partitions, rfh_topology::PAPER_DC_COUNT as u32)?;
    if trace.is_empty() {
        return Err(rfh_types::RfhError::Io(format!("{path} contains no epochs")));
    }
    let mut p = params(opts)?;
    p.epochs = trace.len() as u64;
    let label = format!(
        "{} replaying {} ({} epochs, {} queries)",
        p.policy.name(),
        path,
        trace.len(),
        trace.total_queries()
    );
    let result = Simulation::new(p)?.with_shared_trace(Arc::new(trace)).run()?;
    let mut out = format!(
        "{label}
steady state (last quarter):
"
    );
    for (name, metric) in SUMMARY_METRICS {
        let _ = writeln!(out, "  {name:24} {:>12.3}", tail(&result, metric));
    }
    Ok(out)
}

/// `rfh trace`: dump a generated workload as CSV.
pub fn trace(opts: &Options) -> Result<String> {
    let epochs = args::epochs(opts)?;
    let seed = args::seed(opts)?;
    let scenario = args::scenario(opts)?;
    let cfg = SimConfig::default();
    let mut generator = WorkloadGenerator::new(
        cfg.queries_per_epoch,
        cfg.partitions,
        rfh_topology::PAPER_DC_COUNT as u32,
        cfg.partition_skew,
        scenario,
        epochs,
        seed,
    );
    let trace = Trace::record(&mut generator, epochs);
    let csv = trace.to_csv();
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &csv)?;
            Ok(format!(
                "{} epochs, {} queries written to {path}\n",
                trace.len(),
                trace.total_queries()
            ))
        }
        None => Ok(csv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn opts(s: &str) -> Options {
        let argv: Vec<String> = s.split_whitespace().map(str::to_string).collect();
        parse(&argv).unwrap().1
    }

    #[test]
    fn table1_contains_parameters() {
        let out = table1(&opts("table1")).unwrap();
        assert!(out.contains("Poisson(λ = 300)"));
        assert!(out.contains("10GiB"));
    }

    #[test]
    fn topology_describes_the_world() {
        let out = topology(&opts("topology")).unwrap();
        assert!(out.contains("NA-USA-GA1"));
        assert!(out.contains("H → A: H → I → E → D → A"));
        assert!(out.contains("10 servers"));
    }

    #[test]
    fn run_prints_summary() {
        let out = run_one(&opts("run --epochs 10 --policy random")).unwrap();
        assert!(out.contains("Random under random for 10 epochs"));
        assert!(out.contains("replica utilization"));
        assert!(out.contains("SLA within 300 ms"));
    }

    #[test]
    fn compare_prints_four_columns() {
        let out = compare(&opts("compare --epochs 5")).unwrap();
        for name in ["Request", "Owner", "Random", "RFH"] {
            assert!(out.contains(name), "{name} missing");
        }
    }

    #[test]
    fn trace_csv_to_stdout() {
        let out = trace(&opts("trace --epochs 2 --seed 1")).unwrap();
        assert!(out.starts_with("epoch,partition,requester,count\n"));
        assert!(out.lines().count() > 10, "two epochs of λ=300 queries");
    }

    #[test]
    fn replay_runs_a_recorded_trace() {
        let dir = std::env::temp_dir().join(format!("rfh_replay_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("trace.csv");
        trace(&opts(&format!("trace --epochs 8 --seed 2 --out {}", file.display()))).unwrap();
        let out =
            replay(&opts(&format!("replay --trace {} --policy owner", file.display()))).unwrap();
        assert!(out.contains("Owner replaying"));
        assert!(out.contains("8 epochs"));
        assert!(out.contains("replica utilization"));
        // Missing file and missing option both error cleanly.
        assert!(replay(&opts("replay")).is_err());
        assert!(replay(&opts("replay --trace /nonexistent/x.csv")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_files_are_written() {
        let dir = std::env::temp_dir().join(format!("rfh_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("run.csv");
        let out = run_one(&opts(&format!("run --epochs 5 --csv {}", csv.display()))).unwrap();
        assert!(out.contains("written"));
        let content = std::fs::read_to_string(&csv).unwrap();
        assert!(content.starts_with("epoch,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
