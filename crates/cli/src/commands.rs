//! The CLI commands.

use crate::args::{self, Options};
use rfh_core::PolicyKind;
use rfh_experiments::table1 as table1_mod;
use rfh_obs::{Metric, MetricsRegistry, Recorder, TraceRecorder};
use rfh_serve::{
    render_dashboard, run_loadgen_with, Cluster, ClusterConfig, DataPlane, LoadGenConfig,
    PersistenceConfig, ServeClient, TelemetryRing,
};
use rfh_sim::{report, run_comparison_observed, ObsOptions, SimParams, Simulation};
use rfh_topology::paper_topology;
use rfh_types::{Result, RfhError, SimConfig};
use rfh_workload::{EventSchedule, Trace, WorkloadGenerator};
use std::fmt::Write as _;
use std::sync::Arc;

fn params(opts: &Options) -> Result<SimParams> {
    let mut config = SimConfig::default();
    if let Some(n) = args::partitions(opts)? {
        config.partitions = n;
    }
    if let Some(s) = args::skew(opts)? {
        config.partition_skew = s;
    }
    Ok(SimParams {
        config,
        scenario: args::scenario(opts)?,
        policy: args::policy(opts)?,
        epochs: args::epochs(opts)?,
        seed: args::seed(opts)?,
        events: EventSchedule::new(),
        faults: args::fault_plan(opts)?,
        threads: args::threads(opts)?,
    })
}

/// `rfh table1`.
pub fn table1(_opts: &Options) -> Result<String> {
    Ok(table1_mod::render(&SimConfig::default()))
}

/// `rfh topology`: sites, servers, links, and the routes of the paper's
/// running example.
pub fn topology(opts: &Options) -> Result<String> {
    let seed = args::seed(opts)?;
    let topo = paper_topology(SimConfig::default().capacity_spread, seed)?;
    let mut out = String::from("The paper's deployment (Fig. 1):\n\n");
    for dc in topo.datacenters() {
        let _ = writeln!(
            out,
            "  {}  {}-{}-{}  ({:.2}, {:.2})  {} servers",
            dc.site,
            dc.continent,
            dc.country,
            dc.code,
            dc.location.lat_deg,
            dc.location.lon_deg,
            dc.server_count(),
        );
    }
    out.push_str("\nWAN links (one-way latency):\n");
    for dc in topo.datacenters() {
        for (peer, ms) in topo.graph().neighbours(dc.id) {
            if peer.0 > dc.id.0 {
                let _ = writeln!(
                    out,
                    "  {} ↔ {}  {ms:.0} ms  ({:.0} km)",
                    dc.site,
                    topo.datacenter(peer)?.site,
                    topo.distance_km(dc.id, peer)?,
                );
            }
        }
    }
    out.push_str("\nRoutes from the Asian sites to A (the running example):\n");
    let a = topo.datacenter_by_site("A").expect("preset has A").id;
    for site in ["H", "I", "J"] {
        let from = topo.datacenter_by_site(site).expect("preset site").id;
        let path = topo.path(from, a).expect("connected");
        let names: Vec<&str> =
            path.iter().map(|&id| topo.datacenters()[id.index()].site.as_str()).collect();
        let _ = writeln!(
            out,
            "  {} → A: {}  ({:.0} ms)",
            site,
            names.join(" → "),
            topo.graph().latency_ms(from, a).unwrap_or(0.0),
        );
    }
    Ok(out)
}

fn tail(result: &rfh_sim::SimResult, metric: &str) -> f64 {
    let s = result.metrics.series(metric).expect("metric exists");
    s.mean_over(s.len() * 3 / 4, s.len())
}

const SUMMARY_METRICS: [(&str, &str); 8] = [
    ("replica utilization", "utilization"),
    ("total replicas", "replicas_total"),
    ("replication cost (cum)", "replication_cost"),
    ("migrations (cum)", "migrations_total"),
    ("load imbalance", "load_imbalance"),
    ("lookup path length", "path_length"),
    ("mean latency (ms)", "latency_ms"),
    ("SLA within 300 ms", "sla_300ms"),
];

/// `rfh run`: one policy, steady-state summary, optional CSV, optional
/// decision trace (`--trace FILE.jsonl`) and phase profile
/// (`--profile`). Observation only: the summary is identical with and
/// without them.
pub fn run_one(opts: &Options) -> Result<String> {
    let p = params(opts)?;
    let epochs = p.epochs;
    let label = format!(
        "{} under {} for {} epochs (seed {})",
        p.policy.name(),
        p.scenario.name(),
        p.epochs,
        p.seed
    );
    let profiled = args::flag(opts, "profile");
    let planner_cfg = args::planner(opts)?;
    let recorder = opts.get("trace").map(|_| Arc::new(TraceRecorder::new()));
    let mut sim = Simulation::new(p)?
        .with_profiling(profiled)
        .with_engine(args::engine(opts)?)
        .with_planner(planner_cfg);
    if let Some(rec) = &recorder {
        sim = sim.with_recorder(Arc::clone(rec) as Arc<dyn Recorder>);
    }
    while sim.epoch() < epochs {
        sim.step()?;
    }
    let mut registry = MetricsRegistry::new();
    sim.collect_metrics(&mut registry);
    let result = sim.finish();
    let mut out = format!("{label}\nsteady state (last quarter):\n");
    for (name, metric) in SUMMARY_METRICS {
        let _ = writeln!(out, "  {name:24} {:>12.3}", tail(&result, metric));
    }
    let counter = |name: &str| match registry.get(name) {
        Some(Metric::Counter(v)) => *v,
        _ => 0,
    };
    let gauge = |name: &str| match registry.get(name) {
        Some(Metric::Gauge(v)) => *v,
        _ => 0.0,
    };
    out.push_str("robustness:\n");
    let _ = writeln!(out, "  repairs_total            {:>12}", counter("sim.repairs.completed"));
    let _ = writeln!(out, "  dead_letters_total       {:>12}", counter("sim.repairs.dead_letters"));
    let _ = writeln!(out, "  invariant_violations     {:>12}", counter("sim.invariant_violations"));
    let _ =
        writeln!(out, "  spread_score             {:>12.3}", gauge("sim.placement.spread_score"));
    if planner_cfg.enabled {
        out.push_str("planner:\n");
        let _ = writeln!(out, "  moves_admitted           {:>12}", counter("sim.planner.admitted"));
        let _ = writeln!(out, "  moves_deferred           {:>12}", counter("sim.planner.deferred"));
        let _ =
            writeln!(out, "  credit_bytes             {:>12.0}", gauge("sim.planner.credit_bytes"));
    }
    if registry.get("sim.availability.unavailable_partition_epochs").is_some() {
        out.push_str("availability (under faults):\n");
        let _ = writeln!(
            out,
            "  unavailable_partition_epochs {:>8}",
            counter("sim.availability.unavailable_partition_epochs")
        );
        let _ = writeln!(
            out,
            "  sub_rmin_partition_epochs    {:>8}",
            counter("sim.availability.sub_rmin_partition_epochs")
        );
        let _ = writeln!(
            out,
            "  sub_rmin_peak                {:>8.0}",
            gauge("sim.availability.sub_rmin_peak")
        );
    }
    if let Some(profile) = &result.profile {
        out.push_str("\nper-phase epoch budget:\n");
        out.push_str(&profile.render());
        out.push_str("\ncounters:\n");
        out.push_str(&registry.render());
    }
    if let (Some(path), Some(rec)) = (opts.get("trace"), &recorder) {
        std::fs::write(path, rec.to_jsonl())?;
        let _ = writeln!(out, "{} decision events written to {path}", rec.len());
        if rec.dropped() > 0 {
            let _ = writeln!(out, "({} older events evicted from the trace ring)", rec.dropped());
        }
    }
    if let Some(path) = opts.get("csv") {
        std::fs::write(path, report::run_csv(&result))?;
        let _ = writeln!(out, "full per-epoch metrics written to {path}");
    }
    Ok(out)
}

/// `rfh compare`: the four-way comparison table, with optional
/// per-policy phase budgets (`--profile`) and a shared decision trace
/// (`--trace FILE.jsonl`, events tagged by policy).
pub fn compare(opts: &Options) -> Result<String> {
    let p = params(opts)?;
    let label = format!(
        "all four policies under {} for {} epochs (seed {})",
        p.scenario.name(),
        p.epochs,
        p.seed
    );
    let profiled = args::flag(opts, "profile");
    let recorder = opts.get("trace").map(|_| Arc::new(TraceRecorder::new()));
    let obs = ObsOptions {
        profile: profiled,
        recorder: recorder.clone().map(|r| r as Arc<dyn Recorder>),
        engine: args::engine(opts)?,
    };
    let cmp = run_comparison_observed(&p, &obs)?;
    let mut out = format!("{label}\nsteady state (last quarter):\n\n");
    let _ = write!(out, "{:26}", "metric");
    for kind in PolicyKind::ALL {
        let _ = write!(out, " {:>10}", kind.name());
    }
    out.push('\n');
    for (name, metric) in SUMMARY_METRICS {
        let _ = write!(out, "{name:26}");
        for kind in PolicyKind::ALL {
            let r = cmp.require(kind)?;
            let _ = write!(out, " {:>10.3}", tail(r, metric));
        }
        out.push('\n');
    }
    if profiled {
        out.push('\n');
        out.push_str(&report::profile_table(&cmp));
    }
    if let (Some(path), Some(rec)) = (opts.get("trace"), &recorder) {
        // The four policy threads interleave their pushes into the
        // shared ring nondeterministically; order the file by epoch,
        // then by the comparison's policy order (each policy's events
        // are already in its own proposal order, and the sort is
        // stable), so equal runs write equal traces.
        let mut events = rec.events();
        let rank = |p: &str| PolicyKind::ALL.iter().position(|k| k.name() == p);
        events.sort_by_key(|e| (e.epoch, rank(e.policy)));
        let mut jsonl = String::new();
        for ev in &events {
            jsonl.push_str(&ev.to_json());
            jsonl.push('\n');
        }
        std::fs::write(path, jsonl)?;
        let _ = writeln!(out, "\n{} decision events written to {path}", events.len());
        if rec.dropped() > 0 {
            let _ = writeln!(out, "({} older events evicted from the trace ring)", rec.dropped());
        }
    }
    if let Some(dir) = opts.get("csv-dir") {
        let metrics: Vec<&str> = SUMMARY_METRICS.iter().map(|&(_, m)| m).collect();
        report::write_comparison(&cmp, std::path::Path::new(dir), &metrics)?;
        let _ = writeln!(out, "\nper-metric CSVs written under {dir}/");
    }
    Ok(out)
}

/// `rfh replay`: run a policy against a recorded trace file
/// (`--trace FILE`, format as written by `rfh trace`).
pub fn replay(opts: &Options) -> Result<String> {
    let Some(path) = opts.get("trace") else {
        return Err(rfh_types::RfhError::InvalidConfig {
            parameter: "trace",
            reason: "replay needs --trace FILE".into(),
        });
    };
    let csv = std::fs::read_to_string(path)?;
    let mut p = params(opts)?;
    let trace = Trace::from_csv(&csv, p.config.partitions, rfh_topology::PAPER_DC_COUNT as u32)?;
    if trace.is_empty() {
        return Err(rfh_types::RfhError::Io(format!("{path} contains no epochs")));
    }
    p.epochs = trace.len() as u64;
    let label = format!(
        "{} replaying {} ({} epochs, {} queries)",
        p.policy.name(),
        path,
        trace.len(),
        trace.total_queries()
    );
    let result = Simulation::new(p)?
        .with_shared_trace(Arc::new(trace))
        .with_engine(args::engine(opts)?)
        .run()?;
    let mut out = format!(
        "{label}
steady state (last quarter):
"
    );
    for (name, metric) in SUMMARY_METRICS {
        let _ = writeln!(out, "  {name:24} {:>12.3}", tail(&result, metric));
    }
    Ok(out)
}

/// `rfh trace`: dump a generated workload as CSV.
pub fn trace(opts: &Options) -> Result<String> {
    let epochs = args::epochs(opts)?;
    let seed = args::seed(opts)?;
    let scenario = args::scenario(opts)?;
    let mut cfg = SimConfig::default();
    if let Some(n) = args::partitions(opts)? {
        cfg.partitions = n;
    }
    if let Some(s) = args::skew(opts)? {
        cfg.partition_skew = s;
    }
    let mut generator = WorkloadGenerator::new(
        cfg.queries_per_epoch,
        cfg.partitions,
        rfh_topology::PAPER_DC_COUNT as u32,
        cfg.partition_skew,
        scenario,
        epochs,
        seed,
    );
    let trace = Trace::record(&mut generator, epochs);
    let csv = trace.to_csv();
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &csv)?;
            Ok(format!(
                "{} epochs, {} queries written to {path}\n",
                trace.len(),
                trace.total_queries()
            ))
        }
        None => Ok(csv),
    }
}

fn cluster_config(opts: &Options, key: &'static str) -> Result<ClusterConfig> {
    let mut cfg = match opts.get(key) {
        None => ClusterConfig::default(),
        Some(path) => ClusterConfig::from_toml_str(&std::fs::read_to_string(path)?)?,
    };
    // `--data-plane` wins over the config file, like the other CLI
    // overrides.
    cfg.data_plane = match opts.get("data-plane").map(String::as_str) {
        None => cfg.data_plane,
        Some("reactor") => DataPlane::Reactor,
        Some("threaded") => DataPlane::Threaded,
        Some(other) => {
            return Err(RfhError::InvalidConfig {
                parameter: "data-plane",
                reason: format!("{other:?} is not one of reactor|threaded"),
            })
        }
    };
    Ok(cfg)
}

/// `rfh serve`: run a live loopback cluster under the online RFH
/// control loop for `--duration-secs` (default 10), then shut down
/// cleanly and print the serving summary. `--addr-file FILE` writes the
/// node address list a concurrent `rfh loadgen --connect FILE` needs —
/// and if the file already exists (a previous incarnation wrote it),
/// every node *rebinds its old address* instead, so clients keep their
/// file across a kill + relaunch; `--persist-dir DIR` turns on durable
/// storage under DIR (WAL + checkpoints; a relaunch replays the logs
/// and prints the recovery banner); `--telemetry-addrs FILE` writes the
/// `/metrics` endpoint addresses (controller first) for scrapers and
/// `rfh watch`; `--timeline FILE` dumps the controller's tick-sample
/// ring as JSONL at shutdown; `--faults PLAN.toml` runs a chaos plan
/// against the live cluster (one control tick = one plan epoch),
/// including `restart_after` kill-then-restart cycles;
/// `--data-plane reactor|threaded` picks how node sockets are served
/// (epoll event loops by default, thread-per-connection as the
/// differential baseline).
pub fn serve(opts: &Options) -> Result<String> {
    let mut cfg = cluster_config(opts, "config")?;
    if let Some(dir) = opts.get("persist-dir") {
        cfg.persistence = Some(PersistenceConfig::with_dir(dir.clone()));
    }
    let faults = args::fault_plan(opts)?;
    let duration = args::numeric(opts, "duration-secs", 10)?;
    // Addr-file handoff: an existing file pins every node back onto
    // the address its previous incarnation served, so a SIGKILLed
    // `rfh serve` can relaunch under running clients.
    let prior_addrs: Option<Vec<std::net::SocketAddr>> = match opts.get("addr-file") {
        Some(path) if std::path::Path::new(path).exists() => {
            let nodes = ServeClient::parse_addr_file(&std::fs::read_to_string(path)?)?;
            Some(nodes.iter().map(|n| n.addr).collect())
        }
        _ => None,
    };
    let cluster = Cluster::start_bound(&cfg, faults, prior_addrs.as_deref())?;
    let mut out = format!(
        "cluster up: {} nodes, {} partitions, control tick every {} ms\n",
        cfg.nodes(),
        cfg.partitions,
        cfg.control_interval_ms
    );
    if cfg.persistence.is_some() {
        let _ = writeln!(out, "{}", cluster.recovery_report().render());
    }
    if let Some(path) = opts.get("addr-file") {
        if prior_addrs.is_some() {
            let _ = writeln!(out, "rebound node addresses from {path}");
        } else {
            std::fs::write(path, cluster.render_addr_file())?;
            let _ = writeln!(out, "node addresses written to {path}");
        }
    }
    if let Some(path) = opts.get("telemetry-addrs") {
        if !cfg.telemetry {
            return Err(RfhError::InvalidConfig {
                parameter: "telemetry-addrs",
                reason: "the cluster config disables telemetry; no endpoints exist".into(),
            });
        }
        std::fs::write(path, cluster.render_telemetry_addr_file())?;
        let _ = writeln!(out, "telemetry endpoints written to {path}");
    }
    std::thread::sleep(std::time::Duration::from_secs(duration));
    let timeline = opts.get("timeline").map(|path| (path, cluster.timeline_jsonl()));
    let summary = cluster.shutdown()?;
    if let Some((path, jsonl)) = timeline {
        std::fs::write(path, jsonl)?;
        let _ = writeln!(out, "timeline written to {path}");
    }
    let _ = writeln!(out, "served {} seconds; clean shutdown\n", duration);
    out.push_str(&summary.render());
    Ok(out)
}

/// `rfh watch`: render the cluster timeline as a terminal dashboard.
/// `--file FILE` renders a timeline JSONL dump once (as written by
/// `rfh serve --timeline`); `--connect ADDR` (or `--telemetry-addrs
/// FILE`, using its `controller` line) polls a live controller's
/// `/timeline` endpoint every `--interval-ms` (default 500) for
/// `--duration-secs` (default 10), printing a frame per poll.
pub fn watch(opts: &Options) -> Result<String> {
    if let Some(path) = opts.get("file") {
        let samples = TelemetryRing::parse_jsonl(&std::fs::read_to_string(path)?);
        return Ok(render_dashboard(&samples, 72));
    }
    let addr = match (opts.get("connect"), opts.get("telemetry-addrs")) {
        (Some(addr), _) => addr.clone(),
        (None, Some(path)) => std::fs::read_to_string(path)?
            .lines()
            .find_map(|l| l.strip_prefix("controller ").map(str::to_string))
            .ok_or_else(|| RfhError::Io(format!("no `controller` line in {path}")))?,
        (None, None) => {
            return Err(RfhError::InvalidConfig {
                parameter: "watch",
                reason: "watch needs --file FILE, --connect ADDR, or --telemetry-addrs FILE".into(),
            })
        }
    };
    let interval = std::time::Duration::from_millis(args::numeric(opts, "interval-ms", 500)?);
    let deadline = std::time::Instant::now()
        + std::time::Duration::from_secs(args::numeric(opts, "duration-secs", 10)?);
    loop {
        let body = rfh_serve::http::get(addr.as_str(), "/timeline")
            .map_err(|e| RfhError::Io(format!("scrape {addr}/timeline: {e}")))?;
        let samples = TelemetryRing::parse_jsonl(&body);
        let frame = render_dashboard(&samples, 72);
        if std::time::Instant::now() >= deadline {
            return Ok(frame);
        }
        println!("{frame}");
        std::thread::sleep(interval);
    }
}

/// `rfh loadgen`: drive a cluster and report throughput, latency
/// percentiles, and the acked-write verification. With
/// `--connect ADDRFILE` it targets a cluster started by `rfh serve
/// --addr-file`; without it, it self-hosts one (shaped by
/// `--cluster-config` and `--data-plane`, chaos from `--faults`) for
/// the duration of the run. `--config` is the loadgen TOML, `--ops N`
/// overrides the op count, `--pipeline N` keeps up to N frames in
/// flight per closed-loop worker connection, `--report FILE` writes
/// the JSON report, `--sample N` traces every n-th op with a
/// wire-carried op-ID, and `--spans FILE` writes the resulting span
/// chains as JSONL (self-hosted runs include the server-side spans;
/// `--connect` runs see only the client side).
pub fn loadgen(opts: &Options) -> Result<String> {
    let mut lg = match opts.get("config") {
        None => LoadGenConfig::default(),
        Some(path) => LoadGenConfig::from_toml_str(&std::fs::read_to_string(path)?)?,
    };
    lg.ops = args::numeric(opts, "ops", lg.ops)?;
    lg.trace_sample = args::numeric(opts, "sample", lg.trace_sample)?;
    lg.pipeline = args::numeric(opts, "pipeline", lg.pipeline)?;
    lg.validate()?;
    let want_spans = opts.get("spans").is_some();
    let (report, hosted, spans) = match opts.get("connect") {
        Some(path) => {
            let nodes = ServeClient::parse_addr_file(&std::fs::read_to_string(path)?)?;
            let spans = want_spans.then(|| Arc::new(rfh_obs::SpanLog::new()));
            (run_loadgen_with(&lg, &nodes, spans.clone())?, None, spans)
        }
        None => {
            let cfg = cluster_config(opts, "cluster-config")?;
            let cluster = Cluster::start(&cfg, args::fault_plan(opts)?)?;
            // Self-hosted: client spans share the cluster's log, so
            // sampled ops yield complete client → forward chains.
            let spans = want_spans.then(|| cluster.span_log());
            let report = run_loadgen_with(&lg, cluster.node_infos(), spans.clone());
            let summary = cluster.shutdown()?;
            (report?, Some(summary), spans)
        }
    };
    let mut out = report.render();
    if report.lost_acked_writes > 0 || report.value_mismatches > 0 {
        return Err(RfhError::Simulation(format!(
            "acknowledged writes were lost or corrupted:\n{out}"
        )));
    }
    if let Some(path) = opts.get("report") {
        std::fs::write(path, report.to_json())?;
        let _ = writeln!(out, "JSON report written to {path}");
    }
    if let (Some(path), Some(spans)) = (opts.get("spans"), spans) {
        std::fs::write(path, spans.to_jsonl())?;
        let _ = writeln!(out, "{} spans written to {path}", spans.len());
    }
    if let Some(summary) = hosted {
        out.push_str("\nself-hosted cluster summary:\n");
        out.push_str(&summary.render());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn opts(s: &str) -> Options {
        let argv: Vec<String> = s.split_whitespace().map(str::to_string).collect();
        parse(&argv).unwrap().1
    }

    #[test]
    fn table1_contains_parameters() {
        let out = table1(&opts("table1")).unwrap();
        assert!(out.contains("Poisson(λ = 300)"));
        assert!(out.contains("10GiB"));
    }

    #[test]
    fn topology_describes_the_world() {
        let out = topology(&opts("topology")).unwrap();
        assert!(out.contains("NA-USA-GA1"));
        assert!(out.contains("H → A: H → I → E → D → A"));
        assert!(out.contains("10 servers"));
    }

    #[test]
    fn run_prints_summary() {
        let out = run_one(&opts("run --epochs 10 --policy random")).unwrap();
        assert!(out.contains("Random under random for 10 epochs"));
        assert!(out.contains("replica utilization"));
        assert!(out.contains("SLA within 300 ms"));
    }

    #[test]
    fn compare_prints_four_columns() {
        let out = compare(&opts("compare --epochs 5")).unwrap();
        for name in ["Request", "Owner", "Random", "RFH"] {
            assert!(out.contains(name), "{name} missing");
        }
    }

    #[test]
    fn run_traces_and_profiles() {
        let dir = std::env::temp_dir().join(format!("rfh_obs_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("decisions.jsonl");
        let out = run_one(&opts(&format!("run --epochs 10 --profile --trace {}", jsonl.display())))
            .unwrap();
        assert!(out.contains("per-phase epoch budget"));
        assert!(out.contains("traffic"), "phase rows present");
        assert!(out.contains("traffic.engine.passes"), "engine counters present");
        assert!(out.contains("decision events written"));
        let content = std::fs::read_to_string(&jsonl).unwrap();
        assert!(!content.is_empty(), "10 RFH epochs must emit decisions");
        for line in content.lines() {
            assert!(line.starts_with("{\"epoch\":"), "JSONL line: {line}");
            assert!(line.ends_with('}'), "JSONL line: {line}");
        }
        // Observation must not perturb: plain run prints the same summary.
        let plain = run_one(&opts("run --epochs 10")).unwrap();
        let summary_of =
            |s: &str| s.lines().take(1 + SUMMARY_METRICS.len()).collect::<Vec<_>>().join("\n");
        assert_eq!(summary_of(&plain), summary_of(&out));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compare_trace_is_deterministic_and_ordered() {
        let dir = std::env::temp_dir().join(format!("rfh_cmp_trace_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b) = (dir.join("a.jsonl"), dir.join("b.jsonl"));
        let out = compare(&opts(&format!("compare --epochs 8 --trace {}", a.display()))).unwrap();
        assert!(out.contains("decision events written"));
        compare(&opts(&format!("compare --epochs 8 --trace {}", b.display()))).unwrap();
        let (a, b) = (std::fs::read_to_string(&a).unwrap(), std::fs::read_to_string(&b).unwrap());
        assert_eq!(a, b, "equal runs must write equal traces");
        // Epoch-major order, all four policies present.
        let mut last_epoch = 0u64;
        for line in a.lines() {
            let epoch: u64 = line
                .strip_prefix("{\"epoch\":")
                .and_then(|r| r.split(',').next())
                .and_then(|n| n.parse().ok())
                .unwrap();
            assert!(epoch >= last_epoch, "events out of epoch order: {line}");
            last_epoch = epoch;
        }
        for kind in PolicyKind::ALL {
            let tag = format!("\"policy\":\"{}\"", kind.name());
            assert!(a.contains(&tag), "no events tagged {}", kind.name());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compare_profile_prints_phase_budgets() {
        let out = compare(&opts("compare --epochs 5 --profile")).unwrap();
        for kind in PolicyKind::ALL {
            assert!(out.contains(&format!("=== {} phase budget ===", kind.name())));
        }
    }

    #[test]
    fn trace_csv_to_stdout() {
        let out = trace(&opts("trace --epochs 2 --seed 1")).unwrap();
        assert!(out.starts_with("epoch,partition,requester,count\n"));
        assert!(out.lines().count() > 10, "two epochs of λ=300 queries");
    }

    #[test]
    fn replay_runs_a_recorded_trace() {
        let dir = std::env::temp_dir().join(format!("rfh_replay_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("trace.csv");
        trace(&opts(&format!("trace --epochs 8 --seed 2 --out {}", file.display()))).unwrap();
        let out =
            replay(&opts(&format!("replay --trace {} --policy owner", file.display()))).unwrap();
        assert!(out.contains("Owner replaying"));
        assert!(out.contains("8 epochs"));
        assert!(out.contains("replica utilization"));
        // Missing file and missing option both error cleanly.
        assert!(replay(&opts("replay")).is_err());
        assert!(replay(&opts("replay --trace /nonexistent/x.csv")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_accepts_a_fault_plan() {
        let dir = std::env::temp_dir().join(format!("rfh_cli_faults_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let plan = dir.join("plan.toml");
        std::fs::write(
            &plan,
            "seed = 7\n\n[[at]]\nepoch = 5\nfail_dc = 2\n\n[[at]]\nepoch = 10\nrecover_dc = 2\n",
        )
        .unwrap();
        let chaos =
            run_one(&opts(&format!("run --epochs 20 --faults {}", plan.display()))).unwrap();
        assert!(chaos.contains("replica utilization"));
        // The same plan twice prints the same summary; no plan differs
        // (the outage must leave a trace in the steady-state numbers).
        let again =
            run_one(&opts(&format!("run --epochs 20 --faults {}", plan.display()))).unwrap();
        assert_eq!(chaos, again, "seeded chaos runs are reproducible");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_prints_robustness_counters() {
        let out = run_one(&opts("run --epochs 8")).unwrap();
        assert!(out.contains("robustness:"));
        assert!(out.contains("repairs_total"));
        assert!(out.contains("dead_letters_total"));
        assert!(out.contains("invariant_violations"));
    }

    #[test]
    fn serve_and_loadgen_roundtrip_through_addr_file() {
        let dir = std::env::temp_dir().join(format!("rfh_cli_serve_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cluster_toml = dir.join("cluster.toml");
        std::fs::write(
            &cluster_toml,
            "servers_per_rack = 1\npartitions = 16\ncontrol_interval_ms = 50\n",
        )
        .unwrap();
        let loadgen_toml = dir.join("loadgen.toml");
        std::fs::write(&loadgen_toml, "workers = 4\nops = 300\nkeys = 100\nvalue_bytes = 32\n")
            .unwrap();
        let report_json = dir.join("report.json");

        // Self-hosted loadgen: one command brings the cluster up, drives
        // it, verifies, and tears it down.
        let out = loadgen(&opts(&format!(
            "loadgen --cluster-config {} --config {} --report {}",
            cluster_toml.display(),
            loadgen_toml.display(),
            report_json.display()
        )))
        .unwrap();
        assert!(out.contains("lost 0"), "output:\n{out}");
        assert!(out.contains("self-hosted cluster summary"));
        assert!(out.contains("invariant_violations  0"));
        let json = std::fs::read_to_string(&report_json).unwrap();
        assert!(json.contains("\"lost_acked_writes\": 0"));
        assert!(json.contains("\"p99\""));

        // serve writes an addr file the client parser accepts.
        let addr_file = dir.join("nodes.txt");
        let out = serve(&opts(&format!(
            "serve --config {} --duration-secs 1 --addr-file {}",
            cluster_toml.display(),
            addr_file.display()
        )))
        .unwrap();
        assert!(out.contains("cluster up: 20 nodes"));
        assert!(out.contains("clean shutdown"));
        let nodes =
            ServeClient::parse_addr_file(&std::fs::read_to_string(&addr_file).unwrap()).unwrap();
        assert_eq!(nodes.len(), 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_persists_and_rebinds_across_incarnations() {
        let dir = std::env::temp_dir().join(format!("rfh_cli_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cluster_toml = dir.join("cluster.toml");
        std::fs::write(
            &cluster_toml,
            "servers_per_rack = 1\npartitions = 16\ncontrol_interval_ms = 50\n",
        )
        .unwrap();
        let addr_file = dir.join("nodes.txt");
        let data_dir = dir.join("data");
        let serve_args = format!(
            "serve --config {} --duration-secs 1 --addr-file {} --persist-dir {}",
            cluster_toml.display(),
            addr_file.display(),
            data_dir.display()
        );

        let out = serve(&opts(&serve_args)).unwrap();
        assert!(out.contains("node addresses written"), "first incarnation writes:\n{out}");
        assert!(out.contains("recovery: 0 nodes with data"), "cold dir replays nothing:\n{out}");
        let first_addrs = std::fs::read_to_string(&addr_file).unwrap();

        // Seed node 0's log between incarnations, standing in for the
        // writes a killed process would leave behind.
        {
            let pcfg = PersistenceConfig::with_dir(data_dir.display().to_string());
            let store = rfh_serve::store::NodeStore::durable(&pcfg, 0).unwrap();
            for k in 0..25u64 {
                assert!(store.put(k, k + 1, &k.to_le_bytes()));
            }
        }

        let out = serve(&opts(&serve_args)).unwrap();
        assert!(out.contains("rebound node addresses from"), "handoff taken:\n{out}");
        assert!(out.contains("1 nodes with data"), "node 0's log replayed:\n{out}");
        assert!(out.contains("25 records replayed"), "every record came back:\n{out}");
        assert_eq!(
            std::fs::read_to_string(&addr_file).unwrap(),
            first_addrs,
            "the addr file is never regenerated on a relaunch"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_files_are_written() {
        let dir = std::env::temp_dir().join(format!("rfh_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("run.csv");
        let out = run_one(&opts(&format!("run --epochs 5 --csv {}", csv.display()))).unwrap();
        assert!(out.contains("written"));
        let content = std::fs::read_to_string(&csv).unwrap();
        assert!(content.starts_with("epoch,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
