//! # rfh-cli
//!
//! The `rfh` command-line tool: run simulations, compare the four
//! algorithms, regenerate the paper's figures, and inspect the world —
//! without writing a line of Rust.
//!
//! ```text
//! rfh table1                                  print Table I
//! rfh topology [--seed N]                     inspect the 10-DC world and its routes
//! rfh run [--policy rfh] [--scenario flash]   one simulation, summary + optional CSV
//!         [--epochs N] [--seed N] [--csv FILE]
//!         [--threads N]                        parallel epoch engine (bit-identical)
//!         [--partitions N] [--skew S]          scale knobs (1M-partition runs)
//!         [--engine dense|sparse]              epoch engine (bit-identical)
//!         [--placement domain-spread]          failure-domain-aware placement
//!         [--planner on] [--link-budget BYTES] bandwidth-budgeted transfer planner
//!         [--trace OUT.jsonl] [--profile]      decision trace + phase timing
//!         [--faults PLAN.toml] [--fault-seed N] chaos schedule (see DESIGN.md)
//! rfh compare [--scenario random] [--epochs N] four-way comparison table
//!             [--seed N] [--csv-dir DIR]
//!             [--trace OUT.jsonl] [--profile]
//!             [--faults PLAN.toml] [--fault-seed N]
//! rfh trace [--epochs N] [--seed N]           dump a workload trace as CSV
//!           [--scenario S] [--out FILE]
//! rfh serve [--config C.toml] [--faults P.toml] live loopback cluster under the
//!           [--duration-secs N] [--addr-file F]  online RFH control loop
//!           [--persist-dir DIR]                   durable WAL + crash recovery
//!           [--telemetry-addrs F] [--timeline F]  /metrics endpoints + tick ring
//! rfh loadgen [--connect F | --cluster-config C] drive a cluster, measure
//!             [--config L.toml] [--ops N]        latency, verify acked writes
//!             [--report OUT.json]
//!             [--sample N] [--spans OUT.jsonl]   trace every n-th op end to end
//! rfh watch [--file F | --connect ADDR |        render the cluster timeline
//!            --telemetry-addrs F]                as a terminal dashboard
//!           [--interval-ms N] [--duration-secs N]
//! rfh help                                    this text
//! ```
//!
//! Argument parsing is hand-rolled ([`args`]) to stay within the
//! workspace's approved dependency set.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

use rfh_types::RfhError;

/// Run the CLI against the given argument list (without the program
/// name). Returns the text to print, or an error whose message is shown
/// to the user with exit code 1.
pub fn run(argv: &[String]) -> Result<String, RfhError> {
    let (command, opts) = args::parse(argv)?;
    match command.as_str() {
        "table1" => commands::table1(&opts),
        "topology" => commands::topology(&opts),
        "run" => commands::run_one(&opts),
        "compare" => commands::compare(&opts),
        "trace" => commands::trace(&opts),
        "replay" => commands::replay(&opts),
        "serve" => commands::serve(&opts),
        "loadgen" => commands::loadgen(&opts),
        "watch" => commands::watch(&opts),
        "help" | "" => Ok(HELP.to_string()),
        other => Err(RfhError::InvalidConfig {
            parameter: "command",
            reason: format!("unknown command {other:?}; try `rfh help`"),
        }),
    }
}

/// The help text.
pub const HELP: &str = "\
rfh — the RFH replication simulator (ICPP 2012 reproduction)

USAGE:
    rfh <command> [options]

COMMANDS:
    table1        print Table I (environment and parameter setting)
    topology      inspect the paper's 10-datacenter world and WAN routes
    run           run one policy and print its steady-state summary
    compare       run all four policies over an identical workload
    trace         generate a workload trace and dump it as CSV
    replay        run a policy against a recorded trace (--trace FILE)
    serve         run a live loopback cluster (TCP nodes + online RFH loop)
    loadgen       drive a cluster with load; report latency, verify acked writes
    watch         render a cluster timeline (live /timeline or a JSONL dump)
    help          show this text

COMMON OPTIONS:
    --policy    rfh | spread | random | owner | request  (default rfh)
    --scenario  random | flash | popularity           (default random)
    --epochs N                                        (default 250)
    --seed N                                          (default 42)
    --threads N       worker threads for the epoch hot path; results are
                      bit-identical for any value (default: all cores)
    --partitions N    override the partition count (default 64); partition
                      ids are u32, larger values are rejected up front
    --skew S          override the workload's Zipf skew exponent (default 0.8)
    --engine E        dense | sparse epoch engine (default sparse); both are
                      bit-identical — dense exists for differential testing
    --csv FILE        write the run's full metrics as CSV (run)
    --csv-dir DIR     write per-metric comparison CSVs (compare)
    --out FILE        trace output file (trace; default stdout)
    --trace FILE      recorded workload trace to replay (replay), or the
                      decision-event JSONL to write (run, compare)
    --profile         print the per-phase epoch timing table and counters
                      (run, compare)
    --faults FILE     fault-plan TOML: correlated outages, WAN link faults,
                      partitions, gray failures, background churn (run, compare)
    --fault-seed N    override the plan file's chaos seed (replay the same
                      schedule under different churn)
    --placement P     traffic (the paper's ordering, default) | domain-spread
                      (RFH targets ranked by rack/room/DC spread); `--policy
                      spread` is shorthand for rfh + domain-spread (run)
    --planner on|off  route moves through the per-epoch transfer planner; with
                      no --link-budget the budget is infinite and results are
                      byte-identical to the greedy executor (run)
    --link-budget B   per-WAN-link byte budget per epoch (implies --planner on);
                      moves over budget defer to the next epoch with carried
                      credit, under-replicated partitions admitted first (run)

SERVING OPTIONS:
    --config FILE         cluster TOML (serve) / loadgen TOML (loadgen)
    --duration-secs N     how long `serve` stays up             (default 10)
    --addr-file FILE      `serve` writes node addresses here for clients; if the
                          file already exists, every node rebinds its old address
                          (kill + relaunch keeps clients' files valid)
    --persist-dir DIR     `serve` keeps a per-node WAL + checkpoints under DIR;
                          a relaunch replays the logs, truncates torn tails, and
                          reconciles before serving (acked writes survive SIGKILL)
    --connect FILE        `loadgen` targets the cluster behind this addr file;
                          without it, loadgen self-hosts a cluster
    --cluster-config FILE cluster TOML for the self-hosted loadgen cluster
    --ops N               override the loadgen operation count
    --pipeline N          loadgen closed-loop pipeline depth: each worker keeps
                          up to N frames in flight per connection (default 1)
    --data-plane P        serve/self-hosted data plane: reactor (epoll event
                          loops, the default) or threaded (one thread per conn)
    --report FILE         write the loadgen JSON report (BENCH_serve format)

TELEMETRY OPTIONS:
    --telemetry-addrs FILE  `serve` writes the /metrics endpoint addresses here
                            (controller first); `watch` reads the controller line
    --timeline FILE         `serve` dumps the controller's tick ring as JSONL
    --sample N              `loadgen` traces every n-th op with a wire op-ID
    --spans FILE            `loadgen` writes the sampled ops' span chains (JSONL)
    --file FILE             `watch` renders this timeline JSONL dump once
    --connect ADDR          `watch` polls this controller's /timeline endpoint
    --interval-ms N         `watch` poll interval                    (default 500)

The figure-by-figure harness lives in the experiment binaries:
    cargo run -p rfh-experiments --bin all | fig3..fig10 | table1 | ablations | sla
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn help_paths() {
        assert_eq!(run(&[]).unwrap(), HELP);
        assert_eq!(run(&argv("help")).unwrap(), HELP);
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&argv("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn dispatch_reaches_commands() {
        let out = run(&argv("table1")).unwrap();
        assert!(out.contains("TABLE I"));
    }
}
