//! The failure-domain differential: under correlated rack / site
//! outage sweeps, `--placement domain-spread` must deliver measurably
//! better availability than stock RFH on the identical seed and plan,
//! and the bandwidth-budgeted planner must not cost repair speed when
//! its budget is not the bottleneck.
//!
//! The experiment-scale version of this comparison (full Table I
//! config, every policy, the planner budget ladder) lives in
//! `cargo run -p rfh-experiments --bin domains`; this test pins the
//! relation itself at a small deterministic scale so CI catches any
//! regression in the spread heuristic or the availability accounting.

use rfh_core::PolicyKind;
use rfh_faults::{FaultAction, FaultPlan};
use rfh_sim::{recovery_epochs, PlannerConfig, SimParams, Simulation};
use rfh_types::{DatacenterId, FlashCrowdConfig, RackId, RoomId, SimConfig};
use rfh_workload::{EventSchedule, Scenario};

const EPOCHS: u64 = 340;
/// First datacenter outage of the site sweep (anchors time-to-repair).
const DC_FAIL: u64 = 220;

/// Sweep every failure domain: each of the 20 racks fails for 4 epochs
/// in turn after an 80-epoch warm-up, then each of the 10 sites. Any
/// partition whose replicas share a rack or a site is caught wherever
/// traffic happened to concentrate it.
fn outage_sweep() -> FaultPlan {
    let mut plan = FaultPlan { seed: 5, ..FaultPlan::default() };
    let room0 = RoomId::new(0);
    let mut epoch = 80;
    for dc in 0..10 {
        for rack in 0..2 {
            let (dc, rack) = (DatacenterId::new(dc), RackId::new(rack));
            plan = plan
                .at(epoch, FaultAction::FailRack(dc, room0, rack))
                .at(epoch + 4, FaultAction::RecoverRack(dc, room0, rack));
            epoch += 7;
        }
    }
    let mut epoch = DC_FAIL;
    for dc in 0..10 {
        let dc = DatacenterId::new(dc);
        plan = plan
            .at(epoch, FaultAction::FailDatacenter(dc))
            .at(epoch + 4, FaultAction::RecoverDatacenter(dc));
        epoch += 11;
    }
    plan
}

fn params(policy: PolicyKind) -> SimParams {
    SimParams {
        config: SimConfig { partitions: 16, replica_capacity_mean: 5.0, ..SimConfig::default() },
        // The flash crowd concentrates traffic, which is exactly when
        // traffic-driven placement packs replicas into few domains.
        scenario: Scenario::FlashCrowd(FlashCrowdConfig::default()),
        policy,
        epochs: EPOCHS,
        seed: 7,
        events: EventSchedule::new(),
        faults: outage_sweep(),
        threads: 1,
    }
}

struct Outcome {
    unavailable: u64,
    sub_rmin: u64,
    spread: f64,
    ttr: Option<u64>,
}

fn run(policy: PolicyKind, planner: PlannerConfig) -> Outcome {
    let mut sim = Simulation::new(params(policy)).expect("valid params").with_planner(planner);
    while sim.epoch() < EPOCHS {
        sim.step().expect("epoch steps");
    }
    let (unavailable, sub_rmin, _) = sim.availability_counters();
    let spread = sim.spread_score();
    let result = sim.finish();
    Outcome { unavailable, sub_rmin, spread, ttr: recovery_epochs(&result.metrics, DC_FAIL, 0.05) }
}

/// The headline claim: on the identical seed and outage plan,
/// domain-spread placement dips below the availability floor strictly
/// less than stock RFH, never goes fully unavailable more often, and
/// actually spreads (the score is the mechanism, the dip is the
/// effect).
#[test]
fn domain_spread_beats_stock_rfh_under_correlated_outages() {
    let stock = run(PolicyKind::Rfh, PlannerConfig::default());
    let spread = run(PolicyKind::DomainSpread, PlannerConfig::default());

    assert!(
        spread.spread > stock.spread,
        "spread placement must measurably spread: {:.3} vs stock {:.3}",
        spread.spread,
        stock.spread
    );
    assert!(
        spread.sub_rmin < stock.sub_rmin,
        "sub-r_min partition-epochs must strictly improve: spread {} vs stock {}",
        spread.sub_rmin,
        stock.sub_rmin
    );
    assert!(
        spread.unavailable <= stock.unavailable,
        "unavailable partition-epochs must not get worse: spread {} vs stock {}",
        spread.unavailable,
        stock.unavailable
    );
    // Spread may rebuild onto different (colder) targets, so its
    // time-to-repair is not required to beat stock — only to exist and
    // stay within the same order: both runs must re-reach their
    // pre-outage replica count inside the site sweep's cadence.
    let (stock_ttr, spread_ttr) =
        (stock.ttr.expect("stock run recovers"), spread.ttr.expect("spread run recovers"));
    assert!(
        spread_ttr <= stock_ttr.max(11),
        "spread repair must finish within one sweep step: spread {spread_ttr} vs stock {stock_ttr}"
    );
}

/// Planner no-regression: with an unlimited budget the planner is
/// bit-identical to greedy (proven exhaustively in parallel_equiv.rs —
/// here just the availability view of it), and with a budget generous
/// enough that it never binds, time-to-repair and the availability
/// counters are unchanged too.
#[test]
fn planner_does_not_regress_repair_when_budget_is_ample() {
    let greedy = run(PolicyKind::Rfh, PlannerConfig::default());
    for planner in [PlannerConfig::unlimited(), PlannerConfig::budgeted(1 << 30)] {
        let planned = run(PolicyKind::Rfh, planner);
        assert_eq!(planned.unavailable, greedy.unavailable, "{planner:?}");
        assert_eq!(planned.sub_rmin, greedy.sub_rmin, "{planner:?}");
        assert_eq!(planned.ttr, greedy.ttr, "{planner:?}");
    }
}

/// A budget tight enough to bind defers real moves — and the deferred
/// lane drains them, so the run still repairs and the planner's
/// lifetime accounting balances.
#[test]
fn tight_budget_defers_but_still_repairs() {
    let size = SimConfig::default().partition_size.0;
    let mut sim = Simulation::new(params(PolicyKind::Rfh))
        .expect("valid params")
        .with_planner(PlannerConfig::budgeted(size));
    while sim.epoch() < EPOCHS {
        sim.step().expect("epoch steps");
    }
    let (admitted, deferred) = sim.planner_counters();
    assert!(admitted > 0, "moves must flow under a tight budget");
    assert!(deferred > 0, "a one-partition-per-link budget must defer under outage repair");
    let (unavailable, _, _) = sim.availability_counters();
    assert_eq!(unavailable, 0, "deferral must not strand partitions without live replicas");
    let result = sim.finish();
    assert!(
        recovery_epochs(&result.metrics, DC_FAIL, 0.05).is_some(),
        "the run must still recover from the site sweep"
    );
}
