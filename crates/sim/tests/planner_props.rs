//! Property suite for the transfer planner — the three guarantees its
//! module docs promise, checked over arbitrary move streams:
//!
//! 1. **Budget safety**: over any window of `k` epochs a link admits at
//!    most `k × budget` bytes (credit is only ever unspent budget, so
//!    it cannot manufacture bandwidth).
//! 2. **No starvation**: any move that keeps being re-offered (aging
//!    each deferral, as the simulator's deferred lane does) is
//!    eventually admitted — head-of-line blocking plus carried credit
//!    guarantees progress for arbitrarily large moves.
//! 3. **Determinism**: identical input sequences produce identical
//!    plans and identical carried-credit state.

use proptest::prelude::*;
use rfh_sim::{MoveClass, MoveReq, TransferPlanner};
use std::collections::BTreeMap;

/// A generated move: `(link index, bytes, class selector)`. Link index
/// maps onto a small set of WAN links so contention actually happens;
/// class 0 = Normal, 1 = UnderReplicated, 2.. = Deferred with age.
type GenMove = (u32, u64, u32);

fn to_req(id: usize, m: GenMove) -> MoveReq<usize> {
    let (link, bytes, class) = m;
    let links = [(0u32, 1u32), (0, 2), (1, 2), (3, 7)];
    let class = match class {
        0 => MoveClass::Normal,
        1 => MoveClass::UnderReplicated,
        n => MoveClass::Deferred { age: n - 2 },
    };
    MoveReq { tag: id, link: Some(links[link as usize % links.len()]), bytes, class }
}

fn epochs_strategy() -> impl Strategy<Value = Vec<Vec<GenMove>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..4, 0u64..3_000, 0u32..6), 0..12),
        1..6,
    )
}

proptest! {
    /// Budget safety: for every link, the cumulative bytes admitted
    /// over epochs `0..=e` never exceed `(e + 1) × budget`. This is the
    /// "no epoch exceeds any link budget" property in its windowed
    /// form, which also rules out credit manufacturing bandwidth.
    #[test]
    fn admitted_bytes_never_exceed_the_windowed_budget(
        epochs in epochs_strategy(),
        budget in 1u64..2_000,
    ) {
        let mut pl = TransferPlanner::new();
        let mut cumulative: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for (e, batch) in epochs.iter().enumerate() {
            let reqs: Vec<MoveReq<usize>> =
                batch.iter().enumerate().map(|(i, &m)| to_req(i, m)).collect();
            let sizes: Vec<(Option<(u32, u32)>, u64)> =
                reqs.iter().map(|r| (r.link, r.bytes)).collect();
            let out = pl.plan(reqs, |_| budget);
            for &id in &out.admitted {
                let (link, bytes) = sizes[id];
                *cumulative.entry(link.unwrap()).or_insert(0) += bytes;
            }
            for (&link, &total) in &cumulative {
                prop_assert!(
                    total <= (e as u64 + 1) * budget,
                    "link {link:?} moved {total} bytes in {} epochs of budget {budget}",
                    e + 1
                );
            }
        }
    }

    /// No starvation: re-offer every deferred move each epoch with its
    /// age incremented (exactly what the simulator's deferred lane
    /// does) and every move is admitted within the analytical bound of
    /// `Σ ceil(bytes_i / budget)` epochs per link, plus slack for the
    /// epoch each head needs to reach the front.
    #[test]
    fn every_deferred_move_is_eventually_admitted(
        moves in proptest::collection::vec((0u32..4, 1u64..10_000, 0u32..3), 1..10),
        budget in 1u64..1_000,
    ) {
        let mut pl = TransferPlanner::new();
        // (id, link, bytes, age) still waiting.
        let mut pending: Vec<(usize, GenMove, u32)> =
            moves.iter().copied().enumerate().map(|(i, m)| (i, m, 0)).collect();
        let bound: u64 = moves.iter().map(|&(_, b, _)| b.div_ceil(budget)).sum::<u64>()
            + moves.len() as u64
            + 2;
        let mut epoch = 0u64;
        while !pending.is_empty() {
            prop_assert!(
                epoch <= bound,
                "{} moves still pending after {epoch} epochs (bound {bound})",
                pending.len()
            );
            let reqs: Vec<MoveReq<usize>> = pending
                .iter()
                .map(|&(id, m, age)| {
                    MoveReq { class: MoveClass::Deferred { age }, ..to_req(id, m) }
                })
                .collect();
            let out = pl.plan(reqs, |_| budget);
            pending.retain_mut(|(id, _, age)| {
                if out.admitted.contains(id) {
                    false
                } else {
                    *age += 1;
                    true
                }
            });
            epoch += 1;
        }
    }

    /// Determinism: two planners fed the identical epoch sequence agree
    /// on every plan and on the credit state carried between epochs.
    #[test]
    fn identical_inputs_produce_identical_plans(
        epochs in epochs_strategy(),
        budget in 1u64..2_000,
    ) {
        let mut a = TransferPlanner::new();
        let mut b = TransferPlanner::new();
        for batch in &epochs {
            let reqs = |_: ()| -> Vec<MoveReq<usize>> {
                batch.iter().enumerate().map(|(i, &m)| to_req(i, m)).collect()
            };
            let out_a = a.plan(reqs(()), |_| budget);
            let out_b = b.plan(reqs(()), |_| budget);
            prop_assert_eq!(out_a.admitted, out_b.admitted);
            prop_assert_eq!(out_a.deferred, out_b.deferred);
            prop_assert_eq!(a.credit_bytes(), b.credit_bytes());
            for link in [(0u32, 1u32), (0, 2), (1, 2), (3, 7)] {
                prop_assert_eq!(a.credit_of(link), b.credit_of(link));
            }
        }
        prop_assert_eq!(a.admitted_total(), b.admitted_total());
        prop_assert_eq!(a.deferred_total(), b.deferred_total());
    }

    /// Zero-cost moves (suicides, intra-DC transfers) are always
    /// admitted, whatever the contention — they consume no budget and
    /// cannot be starved by a blocked link.
    #[test]
    fn linkless_moves_always_admit(
        epochs in epochs_strategy(),
        budget in 1u64..500,
    ) {
        let mut pl = TransferPlanner::new();
        for batch in &epochs {
            let mut reqs: Vec<MoveReq<usize>> =
                batch.iter().enumerate().map(|(i, &m)| to_req(i, m)).collect();
            let free_id = reqs.len();
            reqs.push(MoveReq { tag: free_id, link: None, bytes: 0, class: MoveClass::Normal });
            let out = pl.plan(reqs, |_| budget);
            prop_assert!(out.admitted.contains(&free_id));
        }
    }
}
