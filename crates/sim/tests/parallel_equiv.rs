//! The serial ≡ parallel differential harness.
//!
//! The parallel epoch engine's contract is *bit-identity*: for any
//! thread count, a run produces exactly the metric history, placement,
//! and rendered reports of the serial run — parallelism may only change
//! wall-clock. These tests drive the full matrix (every policy × thread
//! counts {1, 2, 4, 7} × several seeds, with and without a chaos fault
//! plan) and compare:
//!
//! * the [`SimResult`] (every metric series, profile excluded),
//! * the final rendered [`PlacementView`] (replica placement content),
//! * the full per-epoch CSV report, byte for byte.
//!
//! 7 threads is deliberately coprime with the 16-partition count so
//! shard boundaries land unevenly; 2 and 4 divide it exactly.

use rfh_core::PolicyKind;
use rfh_faults::{ChurnConfig, FaultAction, FaultPlan};
use rfh_sim::{report, SimParams, SimResult, Simulation};
use rfh_traffic::PlacementView;
use rfh_types::{DatacenterId, SimConfig};
use rfh_workload::{EventSchedule, Scenario};

const THREADS: [usize; 4] = [1, 2, 4, 7];
const SEEDS: [u64; 3] = [7, 23, 4242];

fn base(policy: PolicyKind, seed: u64, threads: usize) -> SimParams {
    SimParams {
        config: SimConfig { partitions: 16, replica_capacity_mean: 5.0, ..SimConfig::default() },
        scenario: Scenario::RandomEven,
        policy,
        epochs: 30,
        seed,
        events: EventSchedule::new(),
        faults: FaultPlan::default(),
        threads,
    }
}

/// Every fault family at once: background churn, a correlated DC
/// outage, gray message loss, and a bandwidth squeeze — all inside the
/// 30-epoch window.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 11,
        scheduled: Vec::new(),
        churn: Some(ChurnConfig { mtbf: 300.0, mttr: 10.0, start: 0, end: None }),
    }
    .at(8, FaultAction::FailDatacenter(DatacenterId::new(3)))
    .at(10, FaultAction::MessageLoss(0.2))
    .at(12, FaultAction::Bandwidth(0.5, 0.5))
    .at(18, FaultAction::RecoverDatacenter(DatacenterId::new(3)))
    .at(20, FaultAction::MessageLoss(0.0))
    .at(22, FaultAction::Bandwidth(1.0, 1.0))
}

/// Run to completion and capture everything the differential compares:
/// the result, the rendered CSV, and the final placement view.
fn run_once(
    policy: PolicyKind,
    seed: u64,
    threads: usize,
    chaos: bool,
) -> (SimResult, String, PlacementView) {
    let mut p = base(policy, seed, threads);
    if chaos {
        p.faults = chaos_plan();
    }
    let cap = p.config.replica_capacity_mean;
    let epochs = p.epochs;
    let mut sim = Simulation::new(p).expect("params are valid");
    while sim.epoch() < epochs {
        sim.step().expect("epoch steps");
    }
    let view = sim.manager().placement_view(sim.topology(), cap);
    let result = sim.finish();
    let csv = report::run_csv(&result);
    (result, csv, view)
}

fn assert_matrix(chaos: bool) {
    for policy in PolicyKind::ALL {
        for seed in SEEDS {
            let (serial, serial_csv, serial_view) = run_once(policy, seed, 1, chaos);
            for threads in THREADS {
                let (parallel, csv, view) = run_once(policy, seed, threads, chaos);
                let tag = format!(
                    "{policy} seed {seed} threads {threads}{}",
                    if chaos { " +chaos" } else { "" }
                );
                assert_eq!(serial, parallel, "SimResult diverged: {tag}");
                assert_eq!(serial_csv, csv, "CSV report diverged: {tag}");
                assert_eq!(serial_view, view, "final placement diverged: {tag}");
            }
        }
    }
}

#[test]
fn parallel_runs_are_bit_identical_to_serial() {
    assert_matrix(false);
}

#[test]
fn parallel_runs_are_bit_identical_to_serial_under_chaos() {
    assert_matrix(true);
}

/// The four-way comparison runner goes through the same engine; spot
/// check that its per-metric CSV (the figure pipeline's input) is
/// byte-identical too, serial vs a deliberately awkward thread count.
#[test]
fn comparison_csv_is_thread_count_invariant() {
    let serial = rfh_sim::run_comparison(&base(PolicyKind::Rfh, 7, 1)).unwrap();
    let parallel = rfh_sim::run_comparison(&base(PolicyKind::Rfh, 7, 7)).unwrap();
    for metric in ["utilization", "replicas_total", "unserved", "latency_ms"] {
        assert_eq!(
            report::comparison_csv(&serial, metric),
            report::comparison_csv(&parallel, metric),
            "comparison CSV diverged for {metric}"
        );
    }
}
