//! The dense ≡ sparse ≡ parallel differential harness.
//!
//! The epoch engine's contract is *bit-identity*: for either engine
//! mode and any thread count, a run produces exactly the metric
//! history, placement, decision trace, and rendered reports of the
//! dense serial run — the sparse dirty-set walk and the sharded
//! traffic pass may only change wall-clock. These tests drive the full
//! matrix (every policy, the domain-spread placement variant included,
//! × {dense, sparse} × thread counts {1, 2, 4, 7} × several seeds,
//! with and without a chaos fault plan) and compare:
//!
//! * the [`SimResult`] (every metric series, profile excluded),
//! * the final rendered [`PlacementView`] (replica placement content),
//! * the decision-event JSONL trace, byte for byte,
//! * the full per-epoch CSV report, byte for byte.
//!
//! 7 threads is deliberately coprime with the 16-partition count so
//! shard boundaries land unevenly; 2 and 4 divide it exactly. The
//! chaos plan matters doubly for the sparse engine: a datacenter
//! outage prunes replicas from partitions that carry no queries, so
//! cold partitions must re-enter the dirty set through the placement
//! (not the workload) channel for the runs to stay identical.
//!
//! The transfer planner joins the same contract: with an unlimited
//! budget every move is admitted in decision order, so a planner-on run
//! must be byte-identical to the greedy executor across the whole
//! matrix (`unlimited_budget_planner_is_bit_identical_to_greedy`).

use rfh_core::PolicyKind;
use rfh_faults::{ChurnConfig, FaultAction, FaultPlan};
use rfh_obs::TraceRecorder;
use rfh_sim::{report, EngineMode, PlannerConfig, SimParams, SimResult, Simulation};
use rfh_traffic::PlacementView;
use rfh_types::{DatacenterId, SimConfig};
use rfh_workload::{EventSchedule, Scenario};
use std::sync::Arc;

const THREADS: [usize; 4] = [1, 2, 4, 7];
const SEEDS: [u64; 3] = [7, 23, 4242];

fn base(policy: PolicyKind, seed: u64, threads: usize) -> SimParams {
    SimParams {
        config: SimConfig { partitions: 16, replica_capacity_mean: 5.0, ..SimConfig::default() },
        scenario: Scenario::RandomEven,
        policy,
        epochs: 30,
        seed,
        events: EventSchedule::new(),
        faults: FaultPlan::default(),
        threads,
    }
}

/// Every fault family at once: background churn, a correlated DC
/// outage, gray message loss, and a bandwidth squeeze — all inside the
/// 30-epoch window.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 11,
        scheduled: Vec::new(),
        churn: Some(ChurnConfig { mtbf: 300.0, mttr: 10.0, start: 0, end: None }),
    }
    .at(8, FaultAction::FailDatacenter(DatacenterId::new(3)))
    .at(10, FaultAction::MessageLoss(0.2))
    .at(12, FaultAction::Bandwidth(0.5, 0.5))
    .at(18, FaultAction::RecoverDatacenter(DatacenterId::new(3)))
    .at(20, FaultAction::MessageLoss(0.0))
    .at(22, FaultAction::Bandwidth(1.0, 1.0))
}

/// Run to completion and capture everything the differential compares:
/// the result, the rendered CSV, the decision trace, and the final
/// placement view.
fn run_once(
    policy: PolicyKind,
    seed: u64,
    threads: usize,
    chaos: bool,
    engine: EngineMode,
) -> (SimResult, String, String, PlacementView) {
    run_planned(policy, seed, threads, chaos, engine, PlannerConfig::default())
}

fn run_planned(
    policy: PolicyKind,
    seed: u64,
    threads: usize,
    chaos: bool,
    engine: EngineMode,
    planner: PlannerConfig,
) -> (SimResult, String, String, PlacementView) {
    let mut p = base(policy, seed, threads);
    if chaos {
        p.faults = chaos_plan();
    }
    let cap = p.config.replica_capacity_mean;
    let epochs = p.epochs;
    let recorder = Arc::new(TraceRecorder::new());
    let mut sim = Simulation::new(p)
        .expect("params are valid")
        .with_engine(engine)
        .with_planner(planner)
        .with_recorder(Arc::clone(&recorder) as Arc<dyn rfh_obs::Recorder>);
    while sim.epoch() < epochs {
        sim.step().expect("epoch steps");
    }
    let view = sim.manager().placement_view(sim.topology(), cap);
    let result = sim.finish();
    let csv = report::run_csv(&result);
    (result, csv, recorder.to_jsonl(), view)
}

fn assert_matrix(chaos: bool) {
    for policy in PolicyKind::WITH_SPREAD {
        for seed in SEEDS {
            let (dense, dense_csv, dense_trace, dense_view) =
                run_once(policy, seed, 1, chaos, EngineMode::Dense);
            for engine in [EngineMode::Dense, EngineMode::Sparse] {
                for threads in THREADS {
                    if engine == EngineMode::Dense && threads == 1 {
                        continue; // that's the baseline itself
                    }
                    let (run, csv, trace, view) = run_once(policy, seed, threads, chaos, engine);
                    let tag = format!(
                        "{policy} seed {seed} {engine:?} threads {threads}{}",
                        if chaos { " +chaos" } else { "" }
                    );
                    assert_eq!(dense, run, "SimResult diverged: {tag}");
                    assert_eq!(dense_csv, csv, "CSV report diverged: {tag}");
                    assert_eq!(dense_trace, trace, "decision trace diverged: {tag}");
                    assert_eq!(dense_view, view, "final placement diverged: {tag}");
                }
            }
        }
    }
}

#[test]
fn engine_and_thread_matrix_is_bit_identical() {
    assert_matrix(false);
}

#[test]
fn engine_and_thread_matrix_is_bit_identical_under_chaos() {
    assert_matrix(true);
}

/// The planner differential: with `--planner on` and no link budget,
/// every move is admitted in decision order, so the run — SimResult,
/// CSV, decision trace, final placement — must be byte-identical to
/// the greedy executor. Driven across every policy (domain-spread
/// included) × both engines × thread counts {1, 4} × chaos on/off, so
/// the identity holds exactly where the planner will actually run.
#[test]
fn unlimited_budget_planner_is_bit_identical_to_greedy() {
    for chaos in [false, true] {
        for policy in PolicyKind::WITH_SPREAD {
            let (base_r, base_csv, base_trace, base_view) =
                run_once(policy, 7, 1, chaos, EngineMode::Dense);
            for engine in [EngineMode::Dense, EngineMode::Sparse] {
                for threads in [1, 4] {
                    let (run, csv, trace, view) =
                        run_planned(policy, 7, threads, chaos, engine, PlannerConfig::unlimited());
                    let tag = format!(
                        "{policy} planner-on {engine:?} threads {threads}{}",
                        if chaos { " +chaos" } else { "" }
                    );
                    assert_eq!(base_r, run, "SimResult diverged: {tag}");
                    assert_eq!(base_csv, csv, "CSV report diverged: {tag}");
                    assert_eq!(base_trace, trace, "decision trace diverged: {tag}");
                    assert_eq!(base_view, view, "final placement diverged: {tag}");
                }
            }
        }
    }
}

/// The four-way comparison runner goes through the same engine; spot
/// check that its per-metric CSV (the figure pipeline's input) is
/// byte-identical too, dense serial vs sparse at a deliberately
/// awkward thread count.
#[test]
fn comparison_csv_is_engine_and_thread_invariant() {
    use rfh_sim::{run_comparison_observed, ObsOptions};
    let dense = run_comparison_observed(
        &base(PolicyKind::Rfh, 7, 1),
        &ObsOptions { engine: EngineMode::Dense, ..Default::default() },
    )
    .unwrap();
    let sparse = rfh_sim::run_comparison(&base(PolicyKind::Rfh, 7, 7)).unwrap();
    for metric in ["utilization", "replicas_total", "unserved", "latency_ms"] {
        assert_eq!(
            report::comparison_csv(&dense, metric),
            report::comparison_csv(&sparse, metric),
            "comparison CSV diverged for {metric}"
        );
    }
}
