//! End-to-end chaos: fault plans drive the simulator through
//! correlated outages, WAN partitions and gray failures, and the run
//! stays deterministic, auditable and recoverable.

use rfh_core::PolicyKind;
use rfh_faults::{ChurnConfig, FaultAction, FaultPlan};
use rfh_obs::{Metric, MetricsRegistry};
use rfh_sim::{recovery_epochs, SimParams, Simulation};
use rfh_types::{DatacenterId, SimConfig};
use rfh_workload::{ClusterEvent, EventSchedule, Scenario};

fn base(policy: PolicyKind, epochs: u64) -> SimParams {
    SimParams {
        config: SimConfig { partitions: 16, replica_capacity_mean: 5.0, ..SimConfig::default() },
        scenario: Scenario::RandomEven,
        policy,
        epochs,
        seed: 7,
        events: EventSchedule::new(),
        faults: FaultPlan::default(),
        threads: 1,
    }
}

/// A busy plan touching every fault family: background churn, a
/// correlated DC outage, gray message loss and a bandwidth squeeze.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 11,
        scheduled: Vec::new(),
        churn: Some(ChurnConfig { mtbf: 300.0, mttr: 10.0, start: 0, end: None }),
    }
    .at(20, FaultAction::FailDatacenter(DatacenterId::new(3)))
    .at(25, FaultAction::MessageLoss(0.2))
    .at(30, FaultAction::Bandwidth(0.5, 0.5))
    .at(40, FaultAction::RecoverDatacenter(DatacenterId::new(3)))
    .at(45, FaultAction::MessageLoss(0.0))
    .at(50, FaultAction::Bandwidth(1.0, 1.0))
}

#[test]
fn identical_seed_and_plan_is_bit_identical_for_every_policy() {
    for kind in PolicyKind::ALL {
        let mut p = base(kind, 60);
        p.faults = chaos_plan();
        let a = Simulation::new(p.clone()).unwrap().run().unwrap();
        let b = Simulation::new(p).unwrap().run().unwrap();
        assert_eq!(a, b, "chaos run must be reproducible for {kind}");
    }
}

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    // A plan with a seed but nothing scheduled builds no injector at
    // all, so its run equals the default-params run bit for bit.
    let plain = Simulation::new(base(PolicyKind::Rfh, 40)).unwrap().run().unwrap();
    let mut p = base(PolicyKind::Rfh, 40);
    p.faults = FaultPlan { seed: 99, ..FaultPlan::default() };
    assert!(p.faults.is_empty());
    let chaosless = Simulation::new(p).unwrap().run().unwrap();
    assert_eq!(plain, chaosless);
}

#[test]
fn partitioned_destinations_defer_then_repair_after_heal() {
    // Cut half the backbone off for 30 epochs. Transfers decided into
    // the island are unreachable: they must be deferred with backoff,
    // not silently counted as done, and must land once the split heals.
    let island: Vec<DatacenterId> = (5..10).map(DatacenterId::new).collect();
    let mut p = base(PolicyKind::Random, 80);
    p.faults = FaultPlan { seed: 3, ..FaultPlan::default() }
        .at(10, FaultAction::Partition(island))
        .at(40, FaultAction::HealPartition);
    let mut sim = Simulation::new(p).unwrap();
    for _ in 0..80 {
        sim.step().unwrap();
    }
    let mut reg = MetricsRegistry::new();
    sim.collect_metrics(&mut reg);
    let completed = match reg.get("sim.repairs.completed") {
        Some(&Metric::Counter(n)) => n,
        other => panic!("missing repair counter: {other:?}"),
    };
    assert!(completed > 0, "deferred transfers must complete after the heal");
    let result = sim.finish();
    let repairs = result.metrics.series("repairs_total").unwrap();
    assert_eq!(repairs.last().unwrap(), completed as f64);
    assert_eq!(repairs.get(9), Some(0.0), "no repairs before the split");
}

#[test]
fn auditor_is_silent_on_healthy_and_benign_chaos_runs() {
    // No faults: not a single violation across all four policies.
    for kind in PolicyKind::ALL {
        let result = Simulation::new(base(kind, 40)).unwrap().run().unwrap();
        let v = result.metrics.series("invariant_violations").unwrap();
        assert_eq!(v.last().unwrap(), 0.0, "clean run must audit clean for {kind}");
    }
    // A survivable outage with plenty of spare capacity: the dip is
    // excused by the recorded fault and repairs converge in time.
    let mut p = base(PolicyKind::Rfh, 100);
    p.faults = FaultPlan::default()
        .at(20, FaultAction::FailDatacenter(DatacenterId::new(2)))
        .at(30, FaultAction::RecoverDatacenter(DatacenterId::new(2)));
    let result = Simulation::new(p).unwrap().run().unwrap();
    let v = result.metrics.series("invariant_violations").unwrap();
    assert_eq!(v.last().unwrap(), 0.0, "survivable outage must audit clean");
}

#[test]
fn auditor_flags_unrepairable_under_replication() {
    // Kill 99 of 100 servers and never recover: r_min = 2 is
    // unreachable on a single survivor, so once the repair window
    // lapses the auditor must report stuck partitions.
    let doomed: Vec<rfh_types::ServerId> = (1..100).map(rfh_types::ServerId::new).collect();
    let mut p = base(PolicyKind::Rfh, 70);
    p.faults = FaultPlan::default().at(10, FaultAction::FailServers(doomed));
    let mut sim = Simulation::new(p).unwrap();
    for _ in 0..70 {
        sim.step().unwrap();
    }
    assert!(sim.auditor().total() > 0, "stuck under-replication must be flagged");
    assert!(
        sim.auditor().violations().iter().all(|v| v.epoch > 40),
        "violations fire only after the repair window lapses"
    );
    let result = sim.finish();
    let v = result.metrics.series("invariant_violations").unwrap();
    assert!(v.last().unwrap() > 0.0, "violations must surface in the metric series");
}

#[test]
fn fail_random_overcount_fails_everyone_and_recovers() {
    // Asking for 250 failures in a 100-server fleet is not an error:
    // everyone dies, the 150-server gap is recorded as shortfall, and
    // RecoverAll later brings the fleet (and the archived data) back.
    let mut events = EventSchedule::new();
    events.add(15, ClusterEvent::FailRandomServers { count: 250 });
    events.add(25, ClusterEvent::RecoverAll);
    let mut p = base(PolicyKind::Rfh, 60);
    p.events = events;
    let mut sim = Simulation::new(p).unwrap();
    for _ in 0..60 {
        sim.step().unwrap();
    }
    let mut reg = MetricsRegistry::new();
    sim.collect_metrics(&mut reg);
    assert_eq!(reg.get("sim.fault_shortfall"), Some(&Metric::Counter(150)));
    let result = sim.finish();
    let alive = result.metrics.series("alive_servers").unwrap();
    assert_eq!(alive.values()[15], 0.0, "over-count kills the whole fleet");
    assert_eq!(alive.values()[25], 100.0, "RecoverAll revives it");
    // RecoverAll revives the very servers holding the data, so the
    // partitions come back with their disks — no archive restore.
    let loss = result.metrics.series("data_loss_total").unwrap();
    assert_eq!(loss.last().unwrap(), 0.0, "revived disks are not data loss");
    let ttr = recovery_epochs(&result.metrics, 15, 0.05);
    assert!(ttr.is_some(), "replica count must reconverge after recovery");
}

#[test]
fn archive_restore_counts_loss_when_primaries_stay_dead() {
    // Kill the whole fleet, then revive only the top half. Partitions
    // pinned to a dead bottom-half primary must be restored from
    // archive onto a live server — counted as data loss and repair —
    // while partitions whose pinned server revived recover for free.
    let all: Vec<rfh_types::ServerId> = (0..100).map(rfh_types::ServerId::new).collect();
    let upper: Vec<rfh_types::ServerId> = (50..100).map(rfh_types::ServerId::new).collect();
    let mut p = base(PolicyKind::Rfh, 50);
    p.faults = FaultPlan::default()
        .at(10, FaultAction::FailServers(all))
        .at(20, FaultAction::RecoverServers(upper));
    let result = Simulation::new(p).unwrap().run().unwrap();
    let loss = result.metrics.series("data_loss_total").unwrap();
    let repairs = result.metrics.series("repairs_total").unwrap();
    assert_eq!(loss.get(19), Some(0.0), "no restore target while everyone is dead");
    assert!(loss.last().unwrap() > 0.0, "dead-primary partitions restore from archive");
    assert!(repairs.last().unwrap() >= loss.last().unwrap(), "each restore is a repair");
    assert!(
        loss.last().unwrap() < 16.0,
        "partitions whose pinned server revived must not count as loss"
    );
}
