//! Observation must not perturb: the recorder and the profiler read
//! simulation state but can never feed anything back, so a traced and
//! profiled run is bit-identical to a plain one — and the JSONL schema
//! the trace streams is pinned against accidental drift.

use rfh_core::PolicyKind;
use rfh_obs::{DecisionEvent, DecisionKind, TraceRecorder, Trigger};
use rfh_sim::{run_comparison, run_comparison_observed, ObsOptions, SimParams, Simulation};
use rfh_types::SimConfig;
use rfh_workload::{EventSchedule, Scenario};
use std::sync::Arc;

fn base(scenario: Scenario) -> SimParams {
    SimParams {
        config: SimConfig { partitions: 16, replica_capacity_mean: 5.0, ..SimConfig::default() },
        scenario,
        policy: PolicyKind::Rfh,
        epochs: 30,
        seed: 7,
        events: EventSchedule::new(),
        faults: rfh_sim::FaultPlan::default(),
        threads: 1,
    }
}

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let params = base(Scenario::RandomEven);
    let plain = Simulation::new(params.clone()).unwrap().run().unwrap();

    let rec = Arc::new(TraceRecorder::new());
    let traced = Simulation::new(params)
        .unwrap()
        .with_recorder(rec.clone())
        .with_profiling(true)
        .run()
        .unwrap();

    // SimResult equality covers policy, scenario and every metric
    // series bit for bit (the profile is deliberately excluded).
    assert_eq!(plain, traced);
    assert!(plain.profile.is_none());
    let profile = traced.profile.expect("profiling was on");
    assert!(!profile.is_empty());
    assert!(!rec.is_empty(), "a 30-epoch RFH run must make decisions");
}

#[test]
fn observed_comparison_matches_plain_comparison() {
    let params = base(Scenario::RandomEven);
    let plain = run_comparison(&params).unwrap();

    let rec = Arc::new(TraceRecorder::new());
    let obs = ObsOptions { profile: true, recorder: Some(rec.clone()), ..Default::default() };
    let observed = run_comparison_observed(&params, &obs).unwrap();

    for kind in PolicyKind::ALL {
        let p = plain.require(kind).unwrap();
        let o = observed.require(kind).unwrap();
        assert_eq!(p, o, "{kind} diverged under observation");
        assert!(o.profile.is_some(), "{kind} was profiled");
    }
    // The shared recorder saw all four policies.
    let events = rec.events();
    assert!(!events.is_empty());
    for kind in PolicyKind::ALL {
        assert!(events.iter().any(|e| e.policy == kind.name()), "no events tagged {}", kind.name());
    }
}

/// The shared recorder serves four concurrently running policy threads;
/// outcomes and epoch flushes are matched by (policy, partition), so
/// whatever the interleaving, each policy's slice of the shared ring
/// must equal the trace of that policy run solo with a private recorder
/// — same events, same order, same applied flags and costs.
#[test]
fn shared_recorder_attributes_events_to_the_right_policy() {
    let params = base(Scenario::RandomEven);
    let shared = Arc::new(TraceRecorder::new());
    let obs = ObsOptions { profile: false, recorder: Some(shared.clone()), ..Default::default() };
    run_comparison_observed(&params, &obs).unwrap();
    let merged = shared.events();

    for kind in PolicyKind::ALL {
        let solo_rec = Arc::new(TraceRecorder::new());
        let solo_params = SimParams { policy: kind, ..params.clone() };
        Simulation::new(solo_params).unwrap().with_recorder(solo_rec.clone()).run().unwrap();
        let solo = solo_rec.events();
        let from_shared: Vec<_> =
            merged.iter().filter(|e| e.policy == kind.name()).cloned().collect();
        assert!(!solo.is_empty(), "{kind} solo run must emit events");
        assert_eq!(from_shared, solo, "{kind} events misattributed in the shared recorder");
    }
}

/// Parallel decision passes buffer trace events per worker shard and
/// flush them in canonical partition order — so with a recorder
/// attached, a 4-thread run must stream exactly the JSONL of the
/// 1-thread run (and 7 threads, coprime with the 16 partitions, too).
#[test]
fn trace_is_bit_identical_for_any_thread_count() {
    let jsonl_at = |threads: usize| {
        let params = SimParams { threads, ..base(Scenario::RandomEven) };
        let rec = Arc::new(TraceRecorder::new());
        let result = Simulation::new(params).unwrap().with_recorder(rec.clone()).run().unwrap();
        (result, rec.to_jsonl())
    };
    let (serial, serial_jsonl) = jsonl_at(1);
    assert!(!serial_jsonl.is_empty(), "30 traced RFH epochs must emit decisions");
    for threads in [4, 7] {
        let (result, jsonl) = jsonl_at(threads);
        assert_eq!(serial, result, "{threads}-thread run diverged");
        assert_eq!(serial_jsonl, jsonl, "{threads}-thread trace diverged");
    }
}

#[test]
fn trace_jsonl_is_wellformed() {
    let rec = Arc::new(TraceRecorder::new());
    Simulation::new(base(Scenario::RandomEven)).unwrap().with_recorder(rec.clone()).run().unwrap();
    let jsonl = rec.to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"epoch\":"), "bad line start: {line}");
        assert!(line.ends_with('}'), "bad line end: {line}");
        for field in ["\"policy\":", "\"kind\":", "\"partition\":", "\"trigger\":", "\"applied\":"]
        {
            assert!(line.contains(field), "line lacks {field}: {line}");
        }
    }
}

/// The JSONL schema is public surface (CI and external tooling parse
/// it); this golden line pins the field set, order and formatting.
#[test]
fn golden_jsonl_schema() {
    let ev = DecisionEvent {
        epoch: 12,
        policy: "RFH",
        kind: DecisionKind::Migrate,
        partition: 7,
        source: Some(3),
        target: Some(41),
        trigger: Trigger::MigrationBenefit,
        traffic: 55.5,
        q_avg: 12.25,
        threshold: 18.375,
        blocking: 0.0625,
        unserved: 0.0,
        cost: Some(2048.0),
        applied: Some(true),
    };
    assert_eq!(
        ev.to_json(),
        "{\"epoch\":12,\"policy\":\"RFH\",\"kind\":\"migrate\",\"partition\":7,\
         \"source\":3,\"target\":41,\"trigger\":\"migration_benefit\",\"traffic\":55.5,\
         \"q_avg\":12.25,\"threshold\":18.375,\"blocking\":0.0625,\"unserved\":0,\
         \"cost\":2048,\"applied\":true}"
    );
}
