//! Run the four algorithms over identical workloads, in parallel.
//!
//! Each run is fully deterministic given `(params, seed)` and shares no
//! mutable state with the others — every policy thread owns its
//! `Simulation`, which owns its own `TrafficEngine` (route and
//! membership caches included), so running them on crossbeam scoped
//! threads is a pure wall-clock optimization — results are identical to
//! sequential execution (a test asserts this). The only shared state is
//! the immutable recorded workload trace.

use crate::simulation::{EngineMode, SimParams, SimResult, Simulation};
use rfh_core::PolicyKind;
use rfh_obs::Recorder;
use rfh_types::{Result, RfhError};
use rfh_workload::Trace;
use std::sync::Arc;

/// Results of the four policies over one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonResult {
    /// One result per policy, in [`PolicyKind::ALL`] order.
    pub results: Vec<SimResult>,
}

impl ComparisonResult {
    /// The result of one policy, or `None` if it is absent (a
    /// [`run_comparison`] product always carries all four, but sliced
    /// or hand-built results may not).
    pub fn of(&self, kind: PolicyKind) -> Option<&SimResult> {
        self.results.iter().find(|r| r.policy == kind)
    }

    /// The result of one policy, or [`RfhError::Simulation`] if it is
    /// absent — for callers that would otherwise `unwrap` the
    /// [`Self::of`] option.
    pub fn require(&self, kind: PolicyKind) -> Result<&SimResult> {
        self.of(kind)
            .ok_or_else(|| RfhError::Simulation(format!("comparison has no {kind} result")))
    }
}

/// Observability options for [`run_comparison_observed`].
#[derive(Default)]
pub struct ObsOptions {
    /// Time each policy's epoch phases and attach the profile to its
    /// [`SimResult`].
    pub profile: bool,
    /// Shared decision-event sink; events from all four policies land
    /// in it (each tagged with its policy label).
    pub recorder: Option<Arc<dyn Recorder>>,
    /// Epoch engine for every policy's run. Defaults to
    /// [`EngineMode::Sparse`]; either mode yields bit-identical results.
    pub engine: EngineMode,
}

/// Run all four policies with identical parameters and workload.
///
/// `base` supplies everything but the policy; the workload trace is
/// recorded once and shared.
pub fn run_comparison(base: &SimParams) -> Result<ComparisonResult> {
    run_comparison_observed(base, &ObsOptions::default())
}

/// [`run_comparison`] with observability attached: optional per-policy
/// phase profiling and an optional shared decision-event recorder.
///
/// Observation-only: the recorder cannot feed state back and the
/// profiler only reads the clock, so the results are bit-identical to
/// a plain [`run_comparison`] (a test asserts this).
pub fn run_comparison_observed(base: &SimParams, obs: &ObsOptions) -> Result<ComparisonResult> {
    // Record the workload once, from the same constructor
    // Simulation::new uses internally (so the shapes cannot drift).
    let mut generator = base.workload_generator(rfh_topology::PAPER_DC_COUNT as u32);
    let trace = Arc::new(Trace::record(&mut generator, base.epochs));

    let outcome: std::result::Result<Vec<SimResult>, RfhError> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = PolicyKind::ALL
                .into_iter()
                .map(|kind| {
                    let params = SimParams { policy: kind, ..base.clone() };
                    let trace = Arc::clone(&trace);
                    let recorder = obs.recorder.clone();
                    let profile = obs.profile;
                    let engine = obs.engine;
                    scope.spawn(move |_| {
                        let mut sim = Simulation::new(params)?
                            .with_shared_trace(trace)
                            .with_profiling(profile)
                            .with_engine(engine);
                        if let Some(rec) = recorder {
                            sim = sim.with_recorder(rec);
                        }
                        sim.run()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| RfhError::Simulation("worker panicked".into()))?)
                .collect()
        })
        .map_err(|_| RfhError::Simulation("comparison scope panicked".into()))?;

    Ok(ComparisonResult { results: outcome? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_types::SimConfig;
    use rfh_workload::{EventSchedule, Scenario};

    fn base() -> SimParams {
        SimParams {
            config: SimConfig {
                partitions: 16,
                replica_capacity_mean: 5.0,
                ..SimConfig::default()
            },
            scenario: Scenario::RandomEven,
            policy: PolicyKind::Rfh, // overridden per run
            epochs: 30,
            seed: 11,
            events: EventSchedule::new(),
            faults: crate::FaultPlan::default(),
            threads: 1,
        }
    }

    #[test]
    fn comparison_runs_all_four() {
        let cmp = run_comparison(&base()).unwrap();
        assert_eq!(cmp.results.len(), 4);
        for kind in PolicyKind::ALL {
            let r = cmp.of(kind).expect("comparison carries every policy");
            assert_eq!(r.policy, kind);
            assert_eq!(r.metrics.epochs(), 30);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let b = base();
        let parallel = run_comparison(&b).unwrap();
        for kind in PolicyKind::ALL {
            let params = SimParams { policy: kind, ..b.clone() };
            let sequential = Simulation::new(params).unwrap().run().unwrap();
            let parallel = parallel.of(kind).expect("comparison carries every policy");
            assert_eq!(&sequential, parallel, "{kind}");
        }
    }

    #[test]
    fn policies_actually_differ() {
        let cmp = run_comparison(&base()).unwrap();
        let series: Vec<&[f64]> = PolicyKind::ALL
            .iter()
            .map(|&k| cmp.of(k).unwrap().metrics.series("replicas_total").unwrap().values())
            .collect();
        // At least the random baseline should diverge from RFH.
        assert_ne!(series[2], series[3], "Random vs RFH must differ");
    }
}
