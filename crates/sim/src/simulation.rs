//! The epoch loop for one policy.

use crate::metrics::{
    epoch_load_imbalance, mean_utilization, mean_utilization_active, EpochSnapshot, Metrics,
};
use crate::planner::{link_between, LinkKey, MoveClass, MoveReq, PlannerConfig, TransferPlanner};
use crate::repair::{destination_unreachable, PendingRepair, RepairQueue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfh_core::{
    server_blocking_probabilities, Action, EpochContext, OwnerOrientedPolicy, PlacementMode,
    PolicyKind, RandomPolicy, ReplicaManager, ReplicationPolicy, RequestOrientedPolicy, RfhPolicy,
};
use rfh_faults::{FaultInjector, FaultPlan, InvariantAuditor};
use rfh_obs::{
    MetricsRegistry, NullRecorder, ProfileReport, Profiler, Recorder, PHASE_APPLY, PHASE_DECIDE,
    PHASE_EVENTS, PHASE_METRICS, PHASE_SPARSE, PHASE_TRAFFIC, PHASE_WORKLOAD,
};
use rfh_pool::WorkerPool;
use rfh_ring::ConsistentHashRing;
use rfh_stats::min_replica_count;
use rfh_topology::{paper_topology, Topology};
use rfh_traffic::{PlacementView, TrafficEngine, TrafficSmoother};
use rfh_types::{Epoch, PartitionId, Result, RfhError, ServerId, SimConfig};
use rfh_workload::{ClusterEvent, EventSchedule, QueryLoad, Scenario, Trace, WorkloadGenerator};
use std::sync::Arc;

/// Tokens per server on the placement ring.
const RING_TOKENS: u32 = 64;

/// Which epoch engine drives a run.
///
/// Both modes produce **bit-identical** results — metrics, placements,
/// decision traces, RNG streams (a differential test matrix asserts
/// this). They differ only in per-epoch cost: dense work is
/// O(partitions), sparse work is O(dirty set), which is what lets an
/// epoch over a million partitions cost only its hot set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Full sweeps: every partition is re-accounted, re-smoothed,
    /// re-decided and re-audited every epoch. The reference semantics.
    Dense,
    /// Incremental dirty-set engine (the default): each epoch touches
    /// only the *active set* — partitions with queries this epoch,
    /// partitions whose placement changed, and carried-over partitions
    /// the policy says are not yet provably inert
    /// ([`rfh_core::ReplicationPolicy::keeps_live`]).
    #[default]
    Sparse,
}

/// Parameters of one simulation run.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Table I parameters.
    pub config: SimConfig,
    /// Query-origin scenario.
    pub scenario: Scenario,
    /// The algorithm under test.
    pub policy: PolicyKind,
    /// Run length in epochs.
    pub epochs: u64,
    /// Master seed: workload, topology capacity factors and event
    /// randomness all derive from it, so `(params, seed)` fully
    /// determines the run.
    pub seed: u64,
    /// Scheduled cluster events (failures / recoveries / joins).
    pub events: EventSchedule,
    /// Fault schedule (correlated outages, WAN faults, churn). The
    /// default empty plan builds no injector at all, so a run without
    /// faults is bit-identical to one from before the fault layer
    /// existed.
    pub faults: FaultPlan,
    /// Worker threads for the epoch hot path (traffic pass and RFH
    /// decision pass). `0` or `1` keeps everything on the calling
    /// thread; any value produces bit-identical results — parallelism
    /// changes wall-clock only, never the run.
    pub threads: usize,
}

impl SimParams {
    /// Paper defaults: Table I config, 250 epochs, no events.
    pub fn paper(policy: PolicyKind, scenario: Scenario) -> Self {
        SimParams {
            config: SimConfig::default(),
            scenario,
            policy,
            epochs: 250,
            seed: 42,
            events: EventSchedule::new(),
            faults: FaultPlan::default(),
            threads: 1,
        }
    }

    /// The workload generator these parameters describe. The single
    /// construction point shared by [`Simulation`] and
    /// [`crate::runner::run_comparison`]: equal params and `dc_count`
    /// yield byte-identical query streams.
    pub fn workload_generator(&self, dc_count: u32) -> WorkloadGenerator {
        WorkloadGenerator::new(
            self.config.queries_per_epoch,
            self.config.partitions,
            dc_count,
            self.config.partition_skew,
            self.scenario.clone(),
            self.epochs,
            self.seed,
        )
    }
}

/// The outcome of a finished run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The algorithm that produced it.
    pub policy: PolicyKind,
    /// Scenario name (for report labelling).
    pub scenario: String,
    /// The full metric history.
    pub metrics: Metrics,
    /// Per-phase epoch timing, present when profiling was enabled.
    pub profile: Option<ProfileReport>,
}

/// Equality ignores the profile: two runs are the *same run* iff their
/// decisions and metric histories match — wall-clock never counts, so
/// determinism tests hold whether or not profiling was on.
impl PartialEq for SimResult {
    fn eq(&self, other: &Self) -> bool {
        self.policy == other.policy
            && self.scenario == other.scenario
            && self.metrics == other.metrics
    }
}

/// One policy's simulation state.
pub struct Simulation {
    /// Data-loss events (partitions restored from archive) pending
    /// attribution to the next snapshot.
    pending_data_loss: usize,
    params: SimParams,
    topo: Topology,
    ring: ConsistentHashRing,
    manager: ReplicaManager,
    smoother: TrafficSmoother,
    policy: Box<dyn ReplicationPolicy + Send>,
    /// Workload source: a shared recorded trace, or a private generator.
    trace: Option<Arc<Trace>>,
    generator: WorkloadGenerator,
    /// RNG for scheduled random events (mass failure).
    event_rng: StdRng,
    /// Reused traffic engine: route table and membership caches persist
    /// across epochs, refreshed only when the topology generation moves.
    engine: TrafficEngine,
    /// The placement view the traffic pass reads, maintained in place
    /// from replica-map deltas instead of rebuilt every epoch.
    view: PlacementView,
    /// Partitions whose replica set changed since the last render.
    dirty_parts: Vec<PartitionId>,
    /// The view's shape is invalid (first epoch, join, prune): the next
    /// step re-renders it wholesale.
    view_stale: bool,
    /// Chaos driver; `None` for the empty plan (the zero-cost path).
    injector: Option<FaultInjector>,
    /// Always-on safety/liveness checker (see `rfh_faults::audit`).
    auditor: InvariantAuditor,
    /// Deferred transfers awaiting a reachable destination.
    repair_queue: RepairQueue,
    /// Partitions whose every replica died with no live server to
    /// restore onto: pinned to their dead primary until one recovers.
    pinned: Vec<PartitionId>,
    /// Servers requested by `FailRandomServers` beyond the alive
    /// population (the clamp's accounting).
    fault_shortfall: u64,
    /// Archive restores completed this epoch, pending the snapshot.
    pending_repairs: usize,
    /// Shared worker pool for the traffic and decision passes; `None`
    /// when `params.threads <= 1` (the serial path, zero overhead).
    pool: Option<Arc<WorkerPool>>,
    /// Dense full sweeps or the sparse dirty-set engine.
    engine_mode: EngineMode,
    /// Availability floor `r_min`, cached at construction (it depends
    /// only on the config).
    r_min: usize,
    /// Sparse mode: last epoch's active set, sorted ascending — the
    /// carry half of the next active set.
    prev_active: Vec<u32>,
    /// Sparse mode: build buffer for the next active set (swapped with
    /// [`prev_active`](Self::prev_active) each epoch).
    active_scratch: Vec<u32>,
    /// Reused query-matrix buffer for generated workloads: cleared
    /// touched-rows-only each epoch, so workload handling stays
    /// O(queries) instead of O(partitions).
    load_buf: QueryLoad,
    /// Cumulative partitions visited by sparse epochs.
    sparse_dirty: u64,
    /// Cumulative partitions sparse epochs skipped.
    sparse_skipped: u64,
    /// Transfer-planner configuration; disabled (the default) keeps the
    /// historical greedy execution path byte for byte.
    planner_cfg: PlannerConfig,
    /// Per-link admission state (carried credit and lifetime counts).
    /// Untouched while the planner is disabled.
    planner: TransferPlanner,
    /// Chaos availability accounting, scanned only when a fault plan is
    /// active: partition-epochs with zero live replicas.
    unavailable_pe: u64,
    /// Partition-epochs below the availability floor `r_min`.
    sub_rmin_pe: u64,
    /// Peak count of sub-`r_min` partitions in any single epoch.
    sub_rmin_peak: u64,
    /// Decision-event sink; [`NullRecorder`] unless traced.
    recorder: Arc<dyn Recorder>,
    /// Per-phase epoch timer; disabled (one branch per phase) unless
    /// [`with_profiling`](Self::with_profiling) turned it on.
    profiler: Profiler,
    epoch: u64,
    metrics: Metrics,
}

impl Simulation {
    /// Build a run on the paper topology.
    pub fn new(params: SimParams) -> Result<Self> {
        params.config.validate()?;
        let topo = paper_topology(params.config.capacity_spread, params.seed)?;
        Self::with_topology(params, topo)
    }

    /// Build a run on a custom topology.
    pub fn with_topology(params: SimParams, topo: Topology) -> Result<Self> {
        params.config.validate()?;
        let cfg = &params.config;
        let mut ring = ConsistentHashRing::new(RING_TOKENS);
        for s in topo.servers() {
            if s.alive {
                ring.join(s.id);
            }
        }
        let holders = (0..cfg.partitions)
            .map(|p| ring.primary(PartitionId::new(p)))
            .collect::<Result<Vec<_>>>()?;
        let manager = ReplicaManager::new(cfg, topo.server_count(), holders)?;
        let smoother = TrafficSmoother::new(
            cfg.partitions,
            topo.datacenters().len() as u32,
            cfg.thresholds.alpha,
        );
        let pool = (params.threads > 1).then(|| Arc::new(WorkerPool::new(params.threads)));
        let policy = Self::build_policy(&params, &topo, &ring, pool.as_ref());
        let generator = params.workload_generator(topo.datacenters().len() as u32);
        let metrics = Metrics::new(cfg.partitions);
        let load_buf = QueryLoad::zeros(cfg.partitions, topo.datacenters().len() as u32);
        let r_min = min_replica_count(cfg.failure_rate, cfg.min_availability) as usize;
        Ok(Simulation {
            pending_data_loss: 0,
            event_rng: StdRng::seed_from_u64(params.seed ^ 0x4556_454E_5453), // "EVENTS"
            injector: FaultInjector::new(&params.faults),
            auditor: InvariantAuditor::new(cfg.partitions, r_min),
            repair_queue: RepairQueue::new(),
            pinned: Vec::new(),
            fault_shortfall: 0,
            pending_repairs: 0,
            params,
            topo,
            ring,
            manager,
            smoother,
            policy,
            trace: None,
            generator,
            engine: TrafficEngine::new(),
            view: PlacementView::new(0, 0, Vec::new()),
            dirty_parts: Vec::new(),
            view_stale: true,
            engine_mode: EngineMode::default(),
            r_min,
            prev_active: Vec::new(),
            active_scratch: Vec::new(),
            load_buf,
            sparse_dirty: 0,
            sparse_skipped: 0,
            pool,
            planner_cfg: PlannerConfig::default(),
            planner: TransferPlanner::new(),
            unavailable_pe: 0,
            sub_rmin_pe: 0,
            sub_rmin_peak: 0,
            recorder: Arc::new(NullRecorder),
            profiler: Profiler::new(false),
            epoch: 0,
            metrics,
        })
    }

    /// Replace the policy with a custom (e.g. ablated) implementation.
    /// The `params.policy` kind is kept for labelling only.
    pub fn with_custom_policy(mut self, policy: Box<dyn ReplicationPolicy + Send>) -> Self {
        self.policy = policy;
        self
    }

    /// Replay a shared recorded trace instead of generating queries.
    /// Guarantees byte-identical workloads across policies (the
    /// generator already guarantees this for equal seeds; the trace also
    /// saves regeneration work).
    pub fn with_shared_trace(mut self, trace: Arc<Trace>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attach a decision-event recorder. Observation-only: the policy's
    /// decisions are identical under any recorder (the recorder trait
    /// cannot feed state back), so a traced run stays bit-identical to
    /// an untraced one.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Enable (or disable) per-phase epoch timing. Off by default; when
    /// off the cost is one branch per phase boundary.
    pub fn with_profiling(mut self, enabled: bool) -> Self {
        self.profiler = Profiler::new(enabled);
        self
    }

    /// Select the epoch engine (see [`EngineMode`]; the default is
    /// [`EngineMode::Sparse`]). Results are bit-identical either way —
    /// the mode trades per-epoch cost only.
    pub fn with_engine(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }

    /// Attach the per-epoch transfer planner (see [`crate::planner`]).
    /// A disabled config (the default) keeps the greedy execution path
    /// byte for byte; an enabled planner with an unlimited budget is
    /// bit-identical to it (the differential matrix in
    /// `parallel_equiv.rs` asserts this); a finite budget rate-limits
    /// each WAN link, deferring what does not fit to the next epoch via
    /// the repair queue.
    pub fn with_planner(mut self, cfg: PlannerConfig) -> Self {
        self.planner_cfg = cfg;
        self
    }

    fn build_policy(
        params: &SimParams,
        topo: &Topology,
        ring: &ConsistentHashRing,
        pool: Option<&Arc<WorkerPool>>,
    ) -> Box<dyn ReplicationPolicy + Send> {
        match params.policy {
            PolicyKind::Rfh => match pool {
                Some(pool) => Box::new(RfhPolicy::new().with_pool(Arc::clone(pool))),
                None => Box::new(RfhPolicy::new()),
            },
            PolicyKind::DomainSpread => {
                let p = RfhPolicy::new().with_placement(PlacementMode::DomainSpread);
                match pool {
                    Some(pool) => Box::new(p.with_pool(Arc::clone(pool))),
                    None => Box::new(p),
                }
            }
            PolicyKind::Random => Box::new(RandomPolicy::new(ring.clone())),
            PolicyKind::OwnerOriented => Box::new(OwnerOrientedPolicy::new()),
            PolicyKind::RequestOriented => Box::new(RequestOrientedPolicy::new(
                params.config.partitions,
                topo.datacenters().len() as u32,
                params.seed ^ 0x5245_5155, // "REQU"
            )),
        }
    }

    /// Current epoch (next to be simulated).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The replica map (inspection in tests and examples).
    pub fn manager(&self) -> &ReplicaManager {
        &self.manager
    }

    /// The cluster (inspection in tests and examples).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Drive the fault plan for this epoch: inject what is due, update
    /// ring membership, prune replicas on freshly-dead servers, and
    /// apply the sticky gray-failure knobs.
    fn inject_faults(&mut self) -> Result<()> {
        let Some(injector) = self.injector.as_mut() else {
            return Ok(());
        };
        let report = injector.begin_epoch(self.epoch, &mut self.topo)?;
        if !report.failed.is_empty() || report.routes_changed || report.random_shortfall > 0 {
            self.auditor.note_fault(self.epoch);
        }
        for &id in &report.failed {
            self.ring.leave(id);
        }
        for &id in &report.recovered {
            self.ring.join(id);
        }
        // The offline simulator carries no process state, so a restart
        // is indistinguishable from a plain recovery here; the live
        // runtime is where restart means "replay the log".
        for &id in &report.restarted {
            self.ring.join(id);
        }
        if let Some(p) = report.message_loss {
            self.policy.set_message_loss(p);
        }
        if let Some((repl, migr)) = report.bandwidth {
            self.manager.set_bandwidth_factors(repl, migr);
        }
        self.fault_shortfall += report.random_shortfall as u64;
        // Route changes need no handling here: the topology generation
        // bump re-keys the traffic engine's caches automatically.
        if !report.failed.is_empty() {
            self.prune_dead_replicas();
        }
        Ok(())
    }

    /// Drop replicas on dead servers. Partitions that lost every copy
    /// are restored onto a surviving ring successor when one exists;
    /// with no live server anywhere they stay pinned to their dead
    /// primary and are retried by [`Self::retry_restores`].
    fn prune_dead_replicas(&mut self) {
        let ring = &self.ring;
        let topo = &self.topo;
        let outcome = self.manager.prune_dead(topo, |p| {
            ring.successors(p, topo.server_count())
                .ok()
                .into_iter()
                .flatten()
                .find(|&s| topo.servers()[s.index()].alive)
                .or_else(|| topo.servers().iter().find(|s| s.alive).map(|s| s.id))
        });
        self.pending_data_loss += outcome.restored_partitions.len();
        for p in outcome.unrestored_partitions {
            if !self.pinned.contains(&p) {
                self.pinned.push(p);
            }
        }
        self.view_stale = true;
    }

    /// Retry archive restores for partitions pinned to dead servers.
    /// Data loss is accounted when the restore actually lands.
    fn retry_restores(&mut self) {
        if self.pinned.is_empty() {
            return;
        }
        let mut still_pinned = Vec::new();
        for p in std::mem::take(&mut self.pinned) {
            // A pinned server that recovered brings its disk back with
            // it: the partition is whole again without touching the
            // archive, so no data loss and no repair to account.
            if self.manager.replicas(p).iter().any(|&s| self.topo.servers()[s.index()].alive) {
                self.view_stale = true;
                continue;
            }
            let target = self
                .ring
                .successors(p, self.topo.server_count())
                .ok()
                .into_iter()
                .flatten()
                .find(|&s| self.topo.servers()[s.index()].alive)
                .or_else(|| self.topo.servers().iter().find(|s| s.alive).map(|s| s.id));
            match target {
                Some(to) if self.manager.restore_partition(&self.topo, p, to).is_ok() => {
                    self.pending_data_loss += 1;
                    self.pending_repairs += 1;
                    self.view_stale = true;
                }
                _ => still_pinned.push(p),
            }
        }
        self.pinned = still_pinned;
    }

    fn apply_events(&mut self) -> Result<()> {
        // Clone the events at this epoch to end the borrow of params.
        let evs: Vec<ClusterEvent> = self.params.events.at(self.epoch).cloned().collect();
        if evs.is_empty() {
            return Ok(());
        }
        let mut membership_changed = false;
        for ev in evs {
            match ev {
                ClusterEvent::FailRandomServers { count } => {
                    let failed = self.topo.fail_random_servers(count, &mut self.event_rng);
                    // Asking for more than the alive population is not
                    // an error: everyone dies and the gap is recorded.
                    self.fault_shortfall += (count - failed.len()) as u64;
                    for id in failed {
                        self.ring.leave(id);
                        membership_changed = true;
                    }
                }
                ClusterEvent::FailServers(ids) => {
                    for id in ids {
                        if self.topo.fail_server(id)? {
                            self.ring.leave(id);
                            membership_changed = true;
                        }
                    }
                }
                ClusterEvent::RecoverServers(ids) => {
                    for id in ids {
                        if self.topo.recover_server(id)? {
                            self.ring.join(id);
                        }
                    }
                }
                ClusterEvent::RecoverAll => {
                    let dead: Vec<ServerId> =
                        self.topo.servers().iter().filter(|s| !s.alive).map(|s| s.id).collect();
                    for id in dead {
                        self.topo.recover_server(id)?;
                        self.ring.join(id);
                    }
                }
                ClusterEvent::JoinServer { datacenter, room, rack } => {
                    let id = self.topo.add_server(datacenter, room, rack, 1.0)?;
                    self.manager.add_server_slot();
                    self.ring.join(id);
                    self.view_stale = true;
                }
            }
        }
        if membership_changed {
            self.auditor.note_fault(self.epoch);
            self.prune_dead_replicas();
        }
        Ok(())
    }

    /// Simulate one epoch; returns its snapshot.
    pub fn step(&mut self) -> Result<EpochSnapshot> {
        let ev_t0 = self.profiler.start();
        self.inject_faults()?;
        self.apply_events()?;
        self.retry_restores();
        self.manager.begin_epoch();
        // Chaos availability accounting, as the cluster stands entering
        // the epoch (post-fault, pre-repair — the worst this epoch
        // sees). Only scanned under an active fault plan, so fault-free
        // runs — including the million-partition sparse benches — pay
        // nothing.
        if self.injector.is_some() {
            self.scan_availability();
        }
        self.profiler.stop(PHASE_EVENTS, ev_t0);

        let wl_t0 = self.profiler.start();
        let load: &QueryLoad = match &self.trace {
            Some(t) => t.epoch(self.epoch).ok_or_else(|| {
                RfhError::Simulation(format!("trace has no epoch {}", self.epoch))
            })?,
            None => {
                self.generator.epoch_load_into(self.epoch, &mut self.load_buf);
                &self.load_buf
            }
        };
        self.profiler.stop(PHASE_WORKLOAD, wl_t0);

        // Sparse mode: assemble the epoch's active set before the render
        // below consumes `dirty_parts` / `view_stale`. A stale view means
        // placements moved wholesale (first epoch, prune, join, restore)
        // — that epoch runs dirty-all, which doubles as the warm-up that
        // seeds the carry. Otherwise the set is carry ∪ touched ∪ dirty:
        // carried partitions the policy cannot yet prove inert, plus
        // everything with queries or placement changes this epoch.
        let sp_t0 = self.profiler.start();
        let active: Option<&[u32]> = match self.engine_mode {
            EngineMode::Dense => None,
            EngineMode::Sparse => {
                self.active_scratch.clear();
                if self.view_stale {
                    self.active_scratch.extend(0..self.params.config.partitions);
                } else {
                    for &pu in &self.prev_active {
                        if self.policy.keeps_live(
                            &self.topo,
                            &self.smoother,
                            &self.manager,
                            self.r_min,
                            PartitionId::new(pu),
                        ) {
                            self.active_scratch.push(pu);
                        }
                    }
                    self.active_scratch.extend_from_slice(load.touched());
                    self.active_scratch.extend(self.dirty_parts.iter().map(|p| p.0));
                    self.active_scratch.sort_unstable();
                    self.active_scratch.dedup();
                }
                std::mem::swap(&mut self.prev_active, &mut self.active_scratch);
                self.sparse_dirty += self.prev_active.len() as u64;
                self.sparse_skipped +=
                    self.params.config.partitions as u64 - self.prev_active.len() as u64;
                Some(&self.prev_active)
            }
        };
        self.profiler.stop(PHASE_SPARSE, sp_t0);

        let tr_t0 = self.profiler.start();
        let cfg = &self.params.config;
        if self.view_stale {
            self.manager.render_view(&self.topo, cfg.replica_capacity_mean, &mut self.view);
            self.view_stale = false;
            self.dirty_parts.clear();
        } else {
            for &p in &self.dirty_parts {
                self.manager.render_partition(
                    &self.topo,
                    cfg.replica_capacity_mean,
                    p,
                    &mut self.view,
                );
            }
            self.dirty_parts.clear();
        }
        let accounts = match (active, &self.pool) {
            (Some(a), Some(pool)) => {
                self.engine.account_active_sharded(&self.topo, load, &self.view, a, pool)
            }
            (Some(a), None) => self.engine.account_active(&self.topo, load, &self.view, a),
            (None, Some(pool)) => self.engine.account_sharded(&self.topo, load, &self.view, pool),
            (None, None) => self.engine.account(&self.topo, load, &self.view),
        };
        match active {
            Some(a) => self.smoother.update_active(load, accounts, a),
            None => self.smoother.update(load, accounts),
        }
        let blocking =
            server_blocking_probabilities(&self.topo, accounts, cfg.replica_capacity_mean);
        self.profiler.stop(PHASE_TRAFFIC, tr_t0);

        let de_t0 = self.profiler.start();
        let ctx = EpochContext {
            epoch: Epoch(self.epoch),
            topo: &self.topo,
            load,
            accounts,
            smoother: &self.smoother,
            blocking: &blocking,
            view: &self.view,
            config: cfg,
            recorder: &*self.recorder,
            active,
        };
        let actions = self.policy.decide(&ctx, &self.manager);
        self.profiler.stop(PHASE_DECIDE, de_t0);

        let me_t0 = self.profiler.start();
        let mut snap = EpochSnapshot {
            utilization: match active {
                Some(a) => mean_utilization_active(&self.view, accounts, a),
                None => mean_utilization(&self.view, accounts),
            },
            load_imbalance: epoch_load_imbalance(&self.topo, accounts),
            path_length: accounts.mean_path_length(),
            served: accounts.served_total(),
            unserved: accounts.unserved_total(),
            alive_servers: self.topo.alive_server_count(),
            latency_ms: accounts.mean_latency_ms(),
            sla_fraction: accounts.sla_fraction(),
            data_loss: std::mem::take(&mut self.pending_data_loss),
            ..Default::default()
        };
        self.profiler.stop(PHASE_METRICS, me_t0);

        let ap_t0 = self.profiler.start();
        self.apply_actions(actions, &mut snap);
        self.profiler.stop(PHASE_APPLY, ap_t0);

        let me_t1 = self.profiler.start();
        snap.replicas_total = self.manager.total_replicas();
        let manager = &self.manager;
        let pinned = &self.pinned;
        // Sparse mode audits the active set (plus the auditor's own
        // watch list of armed / dead-replica partitions); the violation
        // stream is identical to a dense audit because only actions can
        // change a partition's audit state, actions land on active
        // partitions, and deferred repairs either hit watched partitions
        // or leave the audit outcome unchanged.
        snap.invariant_violations = match self.engine_mode {
            EngineMode::Sparse => self.auditor.audit_subset(
                self.epoch,
                &self.topo,
                &self.prev_active,
                |p, buf| buf.extend_from_slice(manager.replicas(p)),
                |p| pinned.contains(&p),
            ),
            EngineMode::Dense => self.auditor.audit(
                self.epoch,
                &self.topo,
                |p, buf| buf.extend_from_slice(manager.replicas(p)),
                |p| pinned.contains(&p),
            ),
        } as usize;
        self.metrics.record(&snap);
        self.profiler.stop(PHASE_METRICS, me_t1);
        self.recorder.end_epoch(self.policy.name(), self.epoch);
        self.epoch += 1;
        Ok(snap)
    }

    /// The serial half of the epoch's snapshot/apply split: execute the
    /// decisions the policy made against the frozen placement view.
    /// Deferred repairs go first (admitted in an earlier epoch, they
    /// compete for this epoch's bandwidth ahead of new decisions), then
    /// this epoch's actions in decision order. All placement mutation
    /// for the epoch happens here, on the coordinating thread.
    fn apply_actions(&mut self, actions: Vec<Action>, snap: &mut EpochSnapshot) {
        // The recorder matches outcomes and epoch flushes by the label
        // the policy stamps into its events — ask the policy itself, so
        // custom (ablated) policies stay correctly attributed too.
        let policy_label = self.policy.name();
        snap.repairs = std::mem::take(&mut self.pending_repairs);
        // Deferred transfers first: they were admitted in an earlier
        // epoch and compete for this epoch's bandwidth ahead of new
        // decisions.
        let due = self.repair_queue.take_due(self.epoch);
        if !self.planner_cfg.enabled {
            for item in due {
                self.execute_repair(item, snap, policy_label);
            }
            for action in actions {
                self.execute_fresh(action, snap, policy_label);
            }
            return;
        }
        // Planner path. Moves are offered in the greedy execution order
        // (deferred lane first, then this epoch's decisions); priority
        // only decides *which* moves win a contended budget, and
        // admitted moves execute in their offered order — so with an
        // unlimited budget this path is byte-identical to the greedy
        // one above.
        let size = self.params.config.partition_size.0;
        let mut moves: Vec<MoveReq<(Action, bool, u32)>> =
            Vec::with_capacity(due.len() + actions.len());
        for item in &due {
            moves.push(MoveReq {
                tag: (item.action, true, item.attempts),
                link: self.wan_link(&item.action),
                bytes: size,
                class: MoveClass::Deferred { age: item.attempts },
            });
        }
        for &action in &actions {
            let class = match action {
                Action::Replicate { partition, .. }
                    if self.manager.replica_count(partition) < self.r_min =>
                {
                    MoveClass::UnderReplicated
                }
                _ => MoveClass::Normal,
            };
            moves.push(MoveReq {
                tag: (action, false, 0),
                link: self.wan_link(&action),
                bytes: size,
                class,
            });
        }
        // Per-link budget: the configured cap scaled by the live WAN
        // bandwidth-cut factors, so a `bandwidth` fault verb throttles
        // planned transfers exactly as it throttles the per-server caps.
        let (repl_f, migr_f) = self.manager.bandwidth_factors();
        let budget = match self.planner_cfg.link_budget_bytes {
            None => u64::MAX,
            Some(b) => (b as f64 * repl_f.min(migr_f)) as u64,
        };
        let outcome = self.planner.plan(moves, |_| budget);
        for (action, is_repair, attempts) in outcome.admitted {
            if is_repair {
                self.execute_repair(
                    PendingRepair { action, attempts, due: self.epoch },
                    snap,
                    policy_label,
                );
            } else {
                self.execute_fresh(action, snap, policy_label);
            }
        }
        for (action, _, attempts) in outcome.deferred {
            let partition = match action {
                Action::Replicate { partition, .. }
                | Action::Migrate { partition, .. }
                | Action::Suicide { partition, .. } => partition,
            };
            self.recorder.outcome(policy_label, partition.0, false, 0.0);
            // A budget deferral is not a failed attempt (the destination
            // is fine), so the planner lane retries next epoch without
            // backoff; `attempts` keeps growing as the aging priority.
            self.repair_queue.defer_next(action, attempts + 1, self.epoch);
        }
    }

    /// The WAN link an action's transfer crosses, as a planner
    /// [`LinkKey`]. `None` — always admitted, zero bytes — for suicides
    /// and intra-datacenter transfers: the planner budgets the WAN, not
    /// the in-datacenter fabric.
    fn wan_link(&self, action: &Action) -> Option<LinkKey> {
        let dc = |s: ServerId| self.topo.servers()[s.index()].datacenter;
        let (src, dst) = match *action {
            Action::Replicate { partition, target } => {
                (dc(self.manager.holder(partition)), dc(target))
            }
            Action::Migrate { from, to, .. } => (dc(from), dc(to)),
            Action::Suicide { .. } => return None,
        };
        (src != dst).then(|| link_between(src, dst))
    }

    /// Execute one deferred-lane item: re-defer with backoff while the
    /// destination is unreachable, otherwise apply and account it.
    fn execute_repair(
        &mut self,
        item: PendingRepair,
        snap: &mut EpochSnapshot,
        policy_label: &'static str,
    ) {
        if destination_unreachable(&self.topo, &self.manager, &item.action) {
            if !self.repair_queue.defer(item.action, item.attempts + 1, self.epoch) {
                snap.dead_letters += 1;
            }
            return;
        }
        // An unapplicable retry (partition re-replicated elsewhere
        // meanwhile, target filled up) is moot, not a failure: the
        // policy re-decides every epoch.
        let Ok(applied) =
            self.manager.apply_recorded(&self.topo, item.action, &*self.recorder, policy_label)
        else {
            return;
        };
        self.repair_queue.note_completed();
        snap.repairs += 1;
        match item.action {
            Action::Replicate { partition, .. } => {
                snap.replications += 1;
                snap.replication_cost += applied.cost;
                self.dirty_parts.push(partition);
            }
            Action::Migrate { partition, .. } => {
                snap.migrations += 1;
                snap.migration_cost += applied.cost;
                self.dirty_parts.push(partition);
            }
            Action::Suicide { .. } => unreachable!("suicides are never deferred"),
        }
    }

    /// Execute one of this epoch's fresh decisions.
    fn execute_fresh(
        &mut self,
        action: Action,
        snap: &mut EpochSnapshot,
        policy_label: &'static str,
    ) {
        // Under WAN faults a transfer whose destination is dead or
        // unreachable is deferred and retried with backoff instead
        // of silently counting as done. The check only runs when a
        // fault plan is active: scripted-event runs keep their
        // historical behaviour bit for bit.
        if self.injector.is_some() && destination_unreachable(&self.topo, &self.manager, &action) {
            let partition = match action {
                Action::Replicate { partition, .. }
                | Action::Migrate { partition, .. }
                | Action::Suicide { partition, .. } => partition,
            };
            self.recorder.outcome(policy_label, partition.0, false, 0.0);
            if !self.repair_queue.defer(action, 0, self.epoch) {
                snap.dead_letters += 1;
            }
            return;
        }
        // A rejected action (bandwidth exhausted, target filled up by
        // an earlier action this epoch) is simply not executed —
        // the decision is retried naturally in later epochs.
        let Ok(applied) =
            self.manager.apply_recorded(&self.topo, action, &*self.recorder, policy_label)
        else {
            return;
        };
        match action {
            Action::Replicate { partition, .. } => {
                snap.replications += 1;
                snap.replication_cost += applied.cost;
                self.dirty_parts.push(partition);
            }
            Action::Migrate { partition, .. } => {
                snap.migrations += 1;
                snap.migration_cost += applied.cost;
                self.dirty_parts.push(partition);
            }
            Action::Suicide { partition, .. } => {
                snap.suicides += 1;
                self.dirty_parts.push(partition);
            }
        }
    }

    /// Count partitions with zero live replicas (unavailable) and below
    /// the availability floor, folding them into the lifetime
    /// partition-epoch counters. Engine-independent (it reads the
    /// replica map, not the sparse active set), so dense and sparse
    /// chaos runs report identical availability.
    fn scan_availability(&mut self) {
        let mut unavailable = 0u64;
        let mut sub = 0u64;
        for p in 0..self.manager.partitions() {
            let live = self
                .manager
                .replicas(PartitionId::new(p))
                .iter()
                .filter(|&&s| self.topo.servers()[s.index()].alive)
                .count();
            if live == 0 {
                unavailable += 1;
            }
            if live < self.r_min {
                sub += 1;
            }
        }
        self.unavailable_pe += unavailable;
        self.sub_rmin_pe += sub;
        self.sub_rmin_peak = self.sub_rmin_peak.max(sub);
    }

    /// Export the run's counters into a metrics registry: epoch and
    /// replica totals plus the traffic engine's cache effectiveness.
    /// All values are lifetime totals written set-style, so collecting
    /// into the same registry repeatedly is idempotent.
    pub fn collect_metrics(&self, registry: &mut MetricsRegistry) {
        registry.counter_total("sim.epochs", self.epoch);
        registry.gauge("sim.replicas_total", self.manager.total_replicas() as f64);
        registry.counter_total("sim.fault_shortfall", self.fault_shortfall);
        registry.counter_total("sim.repairs.completed", self.repair_queue.completed());
        registry.counter_total("sim.repairs.dead_letters", self.repair_queue.dead_letters());
        registry.gauge("sim.repairs.pending", self.repair_queue.len() as f64);
        registry.counter_total("sim.invariant_violations", self.auditor.total());
        registry.counter_total("sim.sparse.dirty_partitions", self.sparse_dirty);
        registry.counter_total("sim.sparse.skipped_partitions", self.sparse_skipped);
        if self.planner_cfg.enabled {
            registry.counter_total("sim.planner.admitted", self.planner.admitted_total());
            registry.counter_total("sim.planner.deferred", self.planner.deferred_total());
            registry.gauge("sim.planner.credit_bytes", self.planner.credit_bytes() as f64);
        }
        if self.injector.is_some() {
            registry.counter_total(
                "sim.availability.unavailable_partition_epochs",
                self.unavailable_pe,
            );
            registry.counter_total("sim.availability.sub_rmin_partition_epochs", self.sub_rmin_pe);
            registry.gauge("sim.availability.sub_rmin_peak", self.sub_rmin_peak as f64);
        }
        registry.gauge("sim.placement.spread_score", self.spread_score());
        self.engine.stats().collect_metrics(registry);
    }

    /// Mean failure-domain spread of the current placement: per
    /// partition, the number of distinct (datacenter, room, rack)
    /// triples its replicas occupy divided by its replica count — 1.0
    /// when every copy sits in its own rack, approaching `1/n` when all
    /// share one. O(replicas); computed at collection time only.
    pub fn spread_score(&self) -> f64 {
        let n = self.manager.partitions();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut racks: Vec<(u32, u32, u32)> = Vec::new();
        for p in 0..n {
            let set = self.manager.replicas(PartitionId::new(p));
            if set.is_empty() {
                continue;
            }
            racks.clear();
            for &s in set {
                let srv = &self.topo.servers()[s.index()];
                racks.push((srv.datacenter.0, srv.room.0, srv.rack.0));
            }
            racks.sort_unstable();
            racks.dedup();
            total += racks.len() as f64 / set.len() as f64;
        }
        total / n as f64
    }

    /// Chaos availability counters: `(unavailable partition-epochs,
    /// sub-r_min partition-epochs, peak sub-r_min in one epoch)`. All
    /// zero unless a fault plan is active.
    pub fn availability_counters(&self) -> (u64, u64, u64) {
        (self.unavailable_pe, self.sub_rmin_pe, self.sub_rmin_peak)
    }

    /// The transfer planner's lifetime `(admitted, deferred)` move
    /// counts. Both zero while the planner is disabled.
    pub fn planner_counters(&self) -> (u64, u64) {
        (self.planner.admitted_total(), self.planner.deferred_total())
    }

    /// The invariant auditor's findings so far (tests and diagnostics).
    pub fn auditor(&self) -> &InvariantAuditor {
        &self.auditor
    }

    /// Package the metrics recorded so far (and the profile, if timing
    /// was on) without running further epochs.
    pub fn finish(self) -> SimResult {
        let profile = if self.profiler.enabled() { Some(self.profiler.report()) } else { None };
        SimResult {
            policy: self.params.policy,
            scenario: self.params.scenario.name().to_string(),
            metrics: self.metrics,
            profile,
        }
    }

    /// Run to completion and return the metric history.
    pub fn run(mut self) -> Result<SimResult> {
        while self.epoch < self.params.epochs {
            self.step()?;
        }
        Ok(self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params(policy: PolicyKind) -> SimParams {
        SimParams {
            config: SimConfig {
                partitions: 16,
                replica_capacity_mean: 5.0,
                ..SimConfig::default()
            },
            scenario: Scenario::RandomEven,
            policy,
            epochs: 40,
            seed: 7,
            events: EventSchedule::new(),
            faults: FaultPlan::default(),
            threads: 1,
        }
    }

    #[test]
    fn runs_to_completion_for_every_policy() {
        for kind in PolicyKind::ALL {
            let sim = Simulation::new(quick_params(kind)).unwrap();
            let result = sim.run().unwrap();
            assert_eq!(result.metrics.epochs(), 40, "{kind}");
            assert_eq!(result.policy, kind);
        }
    }

    #[test]
    fn replica_counts_grow_from_demand() {
        let sim = Simulation::new(quick_params(PolicyKind::Rfh)).unwrap();
        let result = sim.run().unwrap();
        let replicas = result.metrics.series("replicas_total").unwrap();
        assert_eq!(replicas.values()[0], 16.0 + 16.0, "first epoch: floor growth begins");
        assert!(
            replicas.last().unwrap() > 32.0,
            "demand must add replicas beyond the floor: {:?}",
            replicas.last()
        );
    }

    #[test]
    fn sparse_equals_dense_for_every_policy() {
        for kind in PolicyKind::ALL {
            let dense = Simulation::new(quick_params(kind))
                .unwrap()
                .with_engine(EngineMode::Dense)
                .run()
                .unwrap();
            let sparse = Simulation::new(quick_params(kind))
                .unwrap()
                .with_engine(EngineMode::Sparse)
                .run()
                .unwrap();
            assert_eq!(dense, sparse, "{kind}: sparse engine must be bit-identical");
        }
    }

    #[test]
    fn sparse_epochs_skip_cold_partitions() {
        // 512 partitions but only ~300 queries/epoch: most partitions see
        // no traffic in any given epoch, and the random baseline carries
        // nothing beyond the availability floor.
        let mut p = quick_params(PolicyKind::Random);
        p.config.partitions = 512;
        let mut sim = Simulation::new(p).unwrap();
        for _ in 0..40 {
            sim.step().unwrap();
        }
        fn counter(reg: &MetricsRegistry, name: &str) -> u64 {
            match reg.get(name) {
                Some(rfh_obs::Metric::Counter(v)) => *v,
                other => panic!("{name}: expected counter, got {other:?}"),
            }
        }
        let mut reg = MetricsRegistry::new();
        sim.collect_metrics(&mut reg);
        let dirty = counter(&reg, "sim.sparse.dirty_partitions");
        let skipped = counter(&reg, "sim.sparse.skipped_partitions");
        assert_eq!(dirty + skipped, 40 * 512, "every partition is dirty or skipped");
        assert!(skipped > 0, "a skewed workload must leave some partitions cold");
        // Collecting again must not double-count (set-style totals).
        sim.collect_metrics(&mut reg);
        assert_eq!(counter(&reg, "sim.sparse.dirty_partitions"), dirty);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Simulation::new(quick_params(PolicyKind::Rfh)).unwrap().run().unwrap();
        let b = Simulation::new(quick_params(PolicyKind::Rfh)).unwrap().run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p = quick_params(PolicyKind::Rfh);
        let a = Simulation::new(p.clone()).unwrap().run().unwrap();
        p.seed = 8;
        let b = Simulation::new(p).unwrap().run().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn trace_replay_equals_generation() {
        let p = quick_params(PolicyKind::OwnerOriented);
        let generated = Simulation::new(p.clone()).unwrap().run().unwrap();
        // Record the same generator's stream and replay it.
        let mut g = p.workload_generator(10);
        let trace = Arc::new(Trace::record(&mut g, p.epochs));
        let replayed = Simulation::new(p).unwrap().with_shared_trace(trace).run().unwrap();
        assert_eq!(generated, replayed);
    }

    /// Time-to-repair harness behind
    /// [`mass_failure_drops_replicas_then_recovers`]: kill `burst`
    /// servers at `fail_epoch` and return how many epochs the replica
    /// count takes to climb back within `tolerance` of its pre-failure
    /// level, as measured by [`crate::recovery_epochs`].
    fn time_to_repair(fail_epoch: u64, burst: usize, tolerance: f64) -> Option<u64> {
        let mut p = quick_params(PolicyKind::Rfh);
        p.epochs = fail_epoch * 2;
        p.events = EventSchedule::mass_failure_at(fail_epoch, burst);
        let result = Simulation::new(p).unwrap().run().unwrap();
        let replicas = result.metrics.series("replicas_total").unwrap();
        let alive = result.metrics.series("alive_servers").unwrap();
        let fe = fail_epoch as usize;
        assert_eq!(alive.values()[fe - 1], 100.0);
        assert_eq!(alive.values()[fe], (100 - burst) as f64, "{burst} servers die at {fail_epoch}");
        let before = replicas.values()[fe - 1];
        let at = replicas.values()[fe];
        assert!(at < before, "replica count must drop with the servers: {before} → {at}");
        crate::recovery_epochs(&result.metrics, fail_epoch, tolerance)
    }

    #[test]
    fn mass_failure_drops_replicas_then_recovers() {
        let ttr = time_to_repair(60, 30, 0.05)
            .expect("re-replication must return within 5% of the pre-failure fleet");
        assert!(ttr <= 40, "recovery must converge within bounded epochs, took {ttr}");
        // A smaller wave heals no slower than the big one measured with
        // the same tolerance.
        let small = time_to_repair(60, 10, 0.05).expect("small wave recovers too");
        assert!(small <= ttr.max(10), "10-server wave took {small}, 30-server took {ttr}");
    }

    #[test]
    fn data_loss_only_under_catastrophic_failure() {
        // No events: the data-loss series stays flat zero.
        let clean = Simulation::new(quick_params(PolicyKind::Rfh)).unwrap().run().unwrap();
        let series = clean.metrics.series("data_loss_total").unwrap();
        assert!(series.values().iter().all(|&v| v == 0.0));
        // Kill 95 of 100 servers at once: with replicas capped at r_min=2
        // early on, some partitions must lose every copy.
        let mut p = quick_params(PolicyKind::Rfh);
        p.epochs = 30;
        p.events = EventSchedule::mass_failure_at(20, 95);
        let hit = Simulation::new(p).unwrap().run().unwrap();
        let series = hit.metrics.series("data_loss_total").unwrap();
        assert!(series.last().unwrap() > 0.0, "a 95-server wipe must create restore events");
        assert_eq!(series.get(19), Some(0.0), "no loss before the event");
    }

    #[test]
    fn unserved_demand_shrinks_over_time() {
        let sim = Simulation::new(quick_params(PolicyKind::Rfh)).unwrap();
        let result = sim.run().unwrap();
        let unserved = result.metrics.series("unserved").unwrap();
        let early = unserved.mean_over(0, 5);
        let late = unserved.mean_over(35, 40);
        assert!(
            late < early * 0.5 || late < 1.0,
            "replication must absorb demand: early {early}, late {late}"
        );
    }
}
