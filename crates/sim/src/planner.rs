//! The per-epoch transfer planner: admission control for replicate /
//! migrate moves against per-link bandwidth budgets.
//!
//! RFH fires its decisions greedily per partition; under churn the
//! resulting transfers can saturate inter-datacenter links and prolong
//! exactly the availability dip replication exists to prevent. The
//! planner sits between the decision pass and execution: the epoch
//! engine turns its intended moves into [`MoveReq`]s, the planner
//! admits them link by link against a per-epoch byte budget, and
//! everything that does not fit is deferred to the next epoch (the
//! PR 3 [`crate::RepairQueue`] is the deferred lane — see
//! [`crate::RepairQueue::defer_next`]).
//!
//! Three properties, proven by the property suite in
//! `crates/sim/tests/planner_props.rs`:
//!
//! 1. **Budget safety.** The bytes admitted on a link in one epoch
//!    never exceed that epoch's budget plus the credit carried in from
//!    earlier epochs, and credit only ever accrues from *unspent*
//!    budget — so over any window of `k` epochs a link moves at most
//!    `k × budget` bytes.
//! 2. **No starvation.** Admission order is priority order, but once a
//!    move on a link defers, every later move on that link defers too
//!    (head-of-line blocking). The blocked head therefore finds its
//!    full carried credit plus a fresh budget waiting next epoch; the
//!    credit grows by `budget` every blocked epoch, so any move of
//!    finite size is admitted within `ceil(bytes / budget)` epochs of
//!    reaching the head of its link. Deferred moves age, and age
//!    outranks every fresh move, so a deferred move *does* reach the
//!    head.
//! 3. **Determinism.** The planner holds only `BTreeMap`s and sorts by
//!    total orders ending in the input sequence number — identical
//!    inputs produce identical plans, byte for byte.
//!
//! **Bit-identity under infinite budgets.** Priority order decides only
//! *which* moves are admitted; admitted moves are returned in their
//! original input order. With an unlimited budget everything is
//! admitted, so the execution sequence — and with it every manager
//! rejection, recorder event and RNG draw downstream — is byte-identical
//! to a planner-less run. The differential matrix in
//! `crates/sim/tests/parallel_equiv.rs` asserts this across policies ×
//! engines × thread counts × chaos.

use rfh_types::DatacenterId;
use std::collections::{BTreeMap, BTreeSet};

/// Planner configuration, as carried by the CLI / serve config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerConfig {
    /// Whether the planner runs at all. Off (the default) keeps the
    /// historical greedy execution path, byte for byte.
    pub enabled: bool,
    /// Per-link byte budget per epoch. `None` plans against an
    /// unlimited budget — every move is admitted, in decision order
    /// (the differential-test configuration). The effective budget is
    /// additionally scaled by the replica manager's live bandwidth
    /// factors, so a `bandwidth` fault verb throttles planned transfers
    /// exactly as it throttles the per-server caps.
    pub link_budget_bytes: Option<u64>,
}

impl PlannerConfig {
    /// Planner on with an unlimited budget (the differential arm).
    pub fn unlimited() -> Self {
        PlannerConfig { enabled: true, link_budget_bytes: None }
    }

    /// Planner on with a per-link budget of `bytes` per epoch.
    pub fn budgeted(bytes: u64) -> Self {
        PlannerConfig { enabled: true, link_budget_bytes: Some(bytes) }
    }
}

/// A WAN link as the planner accounts it: the unordered pair of
/// datacenter ids, low id first. Both directions of a physical link
/// share one budget.
pub type LinkKey = (u32, u32);

/// The canonical [`LinkKey`] between two datacenters.
pub fn link_between(a: DatacenterId, b: DatacenterId) -> LinkKey {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// Priority class of one intended move. Selection order is `Deferred`
/// (oldest age first), then `UnderReplicated`, then `Normal`; ties
/// break by input order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveClass {
    /// Re-admitted from the deferred lane; `age` is how many times it
    /// has been deferred already. Older moves outrank younger ones, so
    /// aging promotes every deferred move to the head of its link.
    Deferred {
        /// Prior deferrals of this move.
        age: u32,
    },
    /// A replication for a partition below the availability floor
    /// `r_min` — the moves the planner exists to expedite.
    UnderReplicated,
    /// Everything else (hub replications, migrations).
    Normal,
}

impl MoveClass {
    /// Selection-order key: lower sorts earlier. Age saturates well
    /// below the rank width, so `Deferred` always outranks the fresh
    /// classes and older always outranks younger.
    fn rank(self) -> u64 {
        match self {
            MoveClass::Deferred { age } => u32::MAX as u64 - age.min(u32::MAX - 2) as u64,
            MoveClass::UnderReplicated => u32::MAX as u64 + 1,
            MoveClass::Normal => u32::MAX as u64 + 2,
        }
    }
}

/// One intended move, as the epoch engine hands it to the planner.
#[derive(Debug, Clone)]
pub struct MoveReq<T> {
    /// Caller payload, returned verbatim in the plan.
    pub tag: T,
    /// The WAN link the transfer crosses; `None` for zero-byte moves
    /// (suicides, intra-datacenter transfers), which always admit.
    pub link: Option<LinkKey>,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Priority class.
    pub class: MoveClass,
}

/// The planner's verdict for one epoch: `admitted` preserves the input
/// order of the admitted subset (execution-order stability is what the
/// bit-identity contract rests on); `deferred` preserves the input
/// order of the rest.
#[derive(Debug, Clone)]
pub struct PlanOutcome<T> {
    /// Moves to execute this epoch, in input order.
    pub admitted: Vec<T>,
    /// Moves to push onto the deferred lane, in input order.
    pub deferred: Vec<T>,
}

/// Per-link admission control with carried credit. See the module docs
/// for the scheme and its guarantees.
#[derive(Debug, Clone, Default)]
pub struct TransferPlanner {
    /// Unspent budget carried by links whose head-of-line move is
    /// blocked. Cleared the first epoch the link admits everything
    /// offered (credit exists to unblock, not to burst).
    credit: BTreeMap<LinkKey, u64>,
    admitted_total: u64,
    deferred_total: u64,
}

impl TransferPlanner {
    /// A planner with no carried credit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plan one epoch. `budget_of` yields each link's byte budget for
    /// this epoch (`u64::MAX` for unlimited); it is consulted once per
    /// distinct link.
    pub fn plan<T>(
        &mut self,
        moves: Vec<MoveReq<T>>,
        mut budget_of: impl FnMut(LinkKey) -> u64,
    ) -> PlanOutcome<T> {
        // Selection order: priority class, then input order. Stable and
        // total, so the plan is a pure function of the input sequence.
        let mut order: Vec<usize> = (0..moves.len()).collect();
        order.sort_by_key(|&i| (moves[i].class.rank(), i));

        // Each link's available bytes this epoch: budget plus whatever
        // credit a blocked head carried over.
        let mut avail: BTreeMap<LinkKey, u64> = BTreeMap::new();
        let mut blocked: BTreeSet<LinkKey> = BTreeSet::new();
        let mut admit_flags = vec![false; moves.len()];
        for &i in &order {
            let Some(link) = moves[i].link else {
                admit_flags[i] = true; // zero-cost moves always admit
                continue;
            };
            if blocked.contains(&link) {
                continue; // head-of-line: the link is closed this epoch
            }
            let a = avail.entry(link).or_insert_with(|| {
                budget_of(link).saturating_add(self.credit.get(&link).copied().unwrap_or(0))
            });
            if moves[i].bytes <= *a {
                *a -= moves[i].bytes;
                admit_flags[i] = true;
            } else {
                blocked.insert(link);
            }
        }

        // Carry credit on blocked links only; a link that admitted
        // everything offered starts fresh next epoch.
        for (link, rest) in avail {
            if blocked.contains(&link) {
                // `rest` already includes any prior credit, so this
                // grows by exactly one budget per blocked epoch.
                self.credit.insert(link, rest);
            } else {
                self.credit.remove(&link);
            }
        }

        let mut admitted = Vec::new();
        let mut deferred = Vec::new();
        for (i, m) in moves.into_iter().enumerate() {
            if admit_flags[i] {
                admitted.push(m.tag);
            } else {
                deferred.push(m.tag);
            }
        }
        self.admitted_total += admitted.len() as u64;
        self.deferred_total += deferred.len() as u64;
        PlanOutcome { admitted, deferred }
    }

    /// Lifetime count of admitted moves.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// Lifetime count of deferred moves.
    pub fn deferred_total(&self) -> u64 {
        self.deferred_total
    }

    /// Total credit currently carried by blocked links, in bytes.
    pub fn credit_bytes(&self) -> u64 {
        self.credit.values().fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Credit carried by one link (tests and diagnostics).
    pub fn credit_of(&self, link: LinkKey) -> u64 {
        self.credit.get(&link).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tag: u32, link: Option<LinkKey>, bytes: u64, class: MoveClass) -> MoveReq<u32> {
        MoveReq { tag, link, bytes, class }
    }

    #[test]
    fn unlimited_budget_admits_everything_in_input_order() {
        let mut pl = TransferPlanner::new();
        let moves = vec![
            req(0, Some((0, 1)), 500, MoveClass::Normal),
            req(1, Some((0, 1)), 500, MoveClass::UnderReplicated),
            req(2, None, 0, MoveClass::Normal),
            req(3, Some((2, 3)), 500, MoveClass::Deferred { age: 3 }),
        ];
        let out = pl.plan(moves, |_| u64::MAX);
        assert_eq!(out.admitted, vec![0, 1, 2, 3], "input order, not priority order");
        assert!(out.deferred.is_empty());
        assert_eq!(pl.credit_bytes(), 0);
    }

    #[test]
    fn budget_admits_by_priority_but_returns_input_order() {
        let mut pl = TransferPlanner::new();
        // Budget 600 on one link: the under-replicated move (input
        // position 2) wins the slot over the two earlier normal moves.
        let moves = vec![
            req(0, Some((0, 1)), 500, MoveClass::Normal),
            req(1, Some((0, 1)), 500, MoveClass::Normal),
            req(2, Some((0, 1)), 500, MoveClass::UnderReplicated),
        ];
        let out = pl.plan(moves, |_| 600);
        assert_eq!(out.admitted, vec![2]);
        assert_eq!(out.deferred, vec![0, 1]);
    }

    #[test]
    fn head_of_line_blocking_closes_the_link() {
        let mut pl = TransferPlanner::new();
        // The high-priority move is too big; the small normal move on
        // the same link must NOT sneak past it (that would starve the
        // head), but another link is unaffected.
        let moves = vec![
            req(0, Some((0, 1)), 1000, MoveClass::UnderReplicated),
            req(1, Some((0, 1)), 10, MoveClass::Normal),
            req(2, Some((4, 7)), 10, MoveClass::Normal),
        ];
        let out = pl.plan(moves, |_| 600);
        assert_eq!(out.admitted, vec![2]);
        assert_eq!(out.deferred, vec![0, 1]);
        assert_eq!(pl.credit_of((0, 1)), 600, "unspent budget carries");
        assert_eq!(pl.credit_of((4, 7)), 0, "satisfied links carry nothing");
    }

    #[test]
    fn credit_grows_until_the_blocked_move_fits() {
        let mut pl = TransferPlanner::new();
        // 1000-byte move, 400-byte budget: epochs carry 400, then 800,
        // then 1200 ≥ 1000 — admitted on the third epoch.
        for epoch in 0..2 {
            let out = pl
                .plan(vec![req(0, Some((0, 1)), 1000, MoveClass::Deferred { age: epoch })], |_| {
                    400
                });
            assert!(out.admitted.is_empty(), "epoch {epoch}");
            assert_eq!(pl.credit_of((0, 1)), 400 * (epoch as u64 + 1));
        }
        let out =
            pl.plan(vec![req(0, Some((0, 1)), 1000, MoveClass::Deferred { age: 2 })], |_| 400);
        assert_eq!(out.admitted, vec![0]);
        assert_eq!(pl.credit_of((0, 1)), 0, "credit resets once the head admits");
    }

    #[test]
    fn aged_deferred_moves_outrank_everything() {
        let mut pl = TransferPlanner::new();
        let moves = vec![
            req(0, Some((0, 1)), 500, MoveClass::UnderReplicated),
            req(1, Some((0, 1)), 500, MoveClass::Deferred { age: 0 }),
            req(2, Some((0, 1)), 500, MoveClass::Deferred { age: 4 }),
        ];
        let out = pl.plan(moves, |_| 500);
        assert_eq!(out.admitted, vec![2], "oldest deferral wins the slot");
    }

    #[test]
    fn link_key_is_direction_free() {
        assert_eq!(link_between(DatacenterId::new(3), DatacenterId::new(7)), (3, 7));
        assert_eq!(link_between(DatacenterId::new(7), DatacenterId::new(3)), (3, 7));
        assert_eq!(link_between(DatacenterId::new(5), DatacenterId::new(5)), (5, 5));
    }

    #[test]
    fn totals_accumulate() {
        let mut pl = TransferPlanner::new();
        pl.plan(vec![req(0, Some((0, 1)), 10, MoveClass::Normal)], |_| 100);
        pl.plan(vec![req(0, Some((0, 1)), 10, MoveClass::Normal)], |_| 5);
        assert_eq!(pl.admitted_total(), 1);
        assert_eq!(pl.deferred_total(), 1);
    }
}
