//! # rfh-sim
//!
//! The epoch-driven cloud-storage simulator of §III: the paper's
//! evaluation environment, rebuilt. Each epoch it
//!
//! 1. applies scheduled cluster events (failures, recoveries, joins —
//!    the Fig. 10 machinery),
//! 2. generates (or replays) the `q_ijt` query matrix,
//! 3. runs the traffic pass (absorption along WAN routes),
//! 4. folds the observations into the EWMA state,
//! 5. lets the policy under test decide and executes its actions under
//!    the storage/bandwidth limits, and
//! 6. records every metric the paper's figures plot.
//!
//! * [`metrics`] — per-epoch series: replica utilization (eqs. 20–23),
//!   replica counts, replication/migration costs (eq. 1), migration
//!   times, load imbalance (eqs. 24–26), lookup path length, unserved
//!   demand, alive servers.
//! * [`simulation`] — the epoch loop for one policy.
//! * [`runner`] — run the four policies over identical workloads, in
//!   parallel (crossbeam scoped threads; each run is independent and
//!   deterministic, so parallelism cannot change results).
//! * [`report`] — CSV rendering of results and per-policy phase-budget
//!   tables.
//!
//! Observability (the `rfh-obs` crate) threads through without touching
//! semantics: [`Simulation::with_recorder`] streams decision events,
//! [`Simulation::with_profiling`] times each epoch phase, and
//! [`runner::run_comparison_observed`] does both across all four
//! policies — none of which can change a run's results.

#![warn(missing_docs)]

pub mod metrics;
pub mod planner;
pub mod repair;
pub mod report;
pub mod runner;
pub mod simulation;

pub use metrics::{recovery_epochs, EpochSnapshot, Metrics};
pub use planner::{
    link_between, LinkKey, MoveClass, MoveReq, PlanOutcome, PlannerConfig, TransferPlanner,
};
pub use repair::{destination_unreachable, RepairQueue};
pub use rfh_faults::{FaultAction, FaultPlan};
pub use runner::{run_comparison, run_comparison_observed, ComparisonResult, ObsOptions};
pub use simulation::{EngineMode, SimParams, SimResult, Simulation};
