//! CSV rendering of simulation results.

use crate::runner::ComparisonResult;
use crate::simulation::SimResult;
use rfh_core::PolicyKind;
use rfh_stats::{timeseries::to_csv, TimeSeries};
use rfh_types::Result;
use std::path::Path;

/// CSV of one metric across the four policies, one column per policy.
///
/// Header: `epoch,Request,Owner,Random,RFH`.
pub fn comparison_csv(cmp: &ComparisonResult, metric: &str) -> String {
    let mut renamed: Vec<TimeSeries> = Vec::new();
    for kind in PolicyKind::ALL {
        let Some(r) = cmp.of(kind) else { continue };
        if let Some(series) = r.metrics.series(metric) {
            let mut s = TimeSeries::with_capacity(kind.name(), series.len());
            for &v in series.values() {
                s.push(v);
            }
            renamed.push(s);
        }
    }
    let refs: Vec<&TimeSeries> = renamed.iter().collect();
    to_csv(&refs)
}

/// CSV of every metric of one run, one column per metric.
pub fn run_csv(result: &SimResult) -> String {
    let refs: Vec<&TimeSeries> = result.metrics.all_series().iter().collect();
    to_csv(&refs)
}

/// The per-policy phase budgets of a profiled comparison: one timing
/// table per policy that carries a profile (empty string when the
/// comparison ran unprofiled).
pub fn profile_table(cmp: &ComparisonResult) -> String {
    let mut out = String::new();
    for kind in PolicyKind::ALL {
        let Some(r) = cmp.of(kind) else { continue };
        let Some(profile) = &r.profile else { continue };
        out.push_str(&format!("=== {} phase budget ===\n", kind.name()));
        out.push_str(&profile.render());
        out.push('\n');
    }
    out
}

/// Write a comparison's metric CSVs into a directory, one file per
/// metric (`<dir>/<metric>.csv`). Creates the directory.
pub fn write_comparison(cmp: &ComparisonResult, dir: &Path, metrics: &[&str]) -> Result<()> {
    std::fs::create_dir_all(dir)?;
    for metric in metrics {
        let csv = comparison_csv(cmp, metric);
        std::fs::write(dir.join(format!("{metric}.csv")), csv)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_comparison;
    use crate::simulation::SimParams;
    use rfh_types::SimConfig;
    use rfh_workload::{EventSchedule, Scenario};

    fn tiny_comparison() -> ComparisonResult {
        run_comparison(&SimParams {
            config: SimConfig { partitions: 4, replica_capacity_mean: 5.0, ..SimConfig::default() },
            scenario: Scenario::RandomEven,
            policy: PolicyKind::Rfh,
            epochs: 5,
            seed: 3,
            events: EventSchedule::new(),
            faults: crate::FaultPlan::default(),
            threads: 1,
        })
        .unwrap()
    }

    #[test]
    fn comparison_csv_has_four_policy_columns() {
        let cmp = tiny_comparison();
        let csv = comparison_csv(&cmp, "replicas_total");
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "epoch,Request,Owner,Random,RFH");
        assert_eq!(lines.count(), 5, "one row per epoch");
    }

    #[test]
    fn unknown_metric_yields_empty_table() {
        let cmp = tiny_comparison();
        let csv = comparison_csv(&cmp, "not_a_metric");
        assert_eq!(csv, "epoch\n");
    }

    #[test]
    fn run_csv_contains_all_metrics() {
        let cmp = tiny_comparison();
        let csv = run_csv(cmp.of(PolicyKind::Rfh).expect("RFH ran"));
        let header = csv.lines().next().unwrap();
        for name in crate::metrics::Metrics::series_names() {
            assert!(header.contains(name), "{name} missing from {header}");
        }
    }

    #[test]
    fn profile_table_lists_profiled_policies_only() {
        let cmp = tiny_comparison();
        assert_eq!(profile_table(&cmp), "", "unprofiled comparison has no tables");
        let profiled = crate::runner::run_comparison_observed(
            &SimParams {
                config: SimConfig {
                    partitions: 4,
                    replica_capacity_mean: 5.0,
                    ..SimConfig::default()
                },
                scenario: Scenario::RandomEven,
                policy: PolicyKind::Rfh,
                epochs: 5,
                seed: 3,
                events: EventSchedule::new(),
                faults: crate::FaultPlan::default(),
                threads: 1,
            },
            &crate::runner::ObsOptions { profile: true, ..Default::default() },
        )
        .unwrap();
        let table = profile_table(&profiled);
        for kind in PolicyKind::ALL {
            assert!(table.contains(kind.name()), "{kind} missing from:\n{table}");
        }
        assert!(table.contains("traffic"), "phase rows present:\n{table}");
    }

    #[test]
    fn write_comparison_creates_files() {
        let cmp = tiny_comparison();
        let dir = std::env::temp_dir().join(format!("rfh_report_test_{}", std::process::id()));
        write_comparison(&cmp, &dir, &["utilization", "path_length"]).unwrap();
        assert!(dir.join("utilization.csv").exists());
        assert!(dir.join("path_length.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
