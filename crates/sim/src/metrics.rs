//! Per-epoch metric collection — one series per curve the paper plots.
//!
//! | Series | Paper figure | Definition |
//! |---|---|---|
//! | `utilization` | Fig. 3 | eqs. 20–23: mean over replicas of served/capacity |
//! | `replicas_total` | Fig. 4(a)(c), Fig. 10 | total replica count |
//! | `replicas_avg` | Fig. 4(b)(d) | replicas per partition |
//! | `replication_cost` | Fig. 5(a)(c) | cumulative eq. 1 cost of replications |
//! | `replication_cost_avg` | Fig. 5(b)(d) | cumulative cost / replications so far |
//! | `migrations_total` | Fig. 6(a)(c) | cumulative migration count |
//! | `migrations_avg` | Fig. 6(b)(d) | cumulative migrations / current replicas |
//! | `migration_cost` | Fig. 7(a)(c) | cumulative eq. 1 cost of migrations |
//! | `migration_cost_avg` | Fig. 7(b)(d) | cumulative migration cost / migrations |
//! | `load_imbalance` | Fig. 8 | eq. 25: stddev of per-server load |
//! | `path_length` | Fig. 9 | mean WAN hops to the serving replica |
//! | `unserved` | (SLA discussion, §I) | queries nobody served |
//! | `alive_servers` | Fig. 10 | servers alive |
//! | `latency_ms` | (SLA discussion, §I) | mean round-trip response latency |
//! | `sla_300ms` | (SLA discussion, §I) | fraction of demand answered within 300 ms |
//! | `data_loss_total` | (availability extension) | cumulative partitions that lost every replica |
//! | `repairs_total` | (robustness extension) | cumulative deferred transfers/restores that completed |
//! | `dead_letters_total` | (robustness extension) | cumulative transfers dropped after exhausting retries |
//! | `invariant_violations` | (robustness extension) | cumulative safety/liveness violations from the auditor |

use rfh_stats::{load_imbalance, TimeSeries};
use rfh_topology::Topology;
use rfh_traffic::{PlacementView, TrafficAccounts};
use rfh_types::{PartitionId, ServerId};

/// Everything measured in one epoch (the inputs to the series).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochSnapshot {
    /// Mean replica utilization (eq. 23), in `[0, 1]`.
    pub utilization: f64,
    /// Total replicas.
    pub replicas_total: usize,
    /// Replications executed this epoch.
    pub replications: usize,
    /// Replication cost accrued this epoch.
    pub replication_cost: f64,
    /// Migrations executed this epoch.
    pub migrations: usize,
    /// Migration cost accrued this epoch.
    pub migration_cost: f64,
    /// Suicides executed this epoch.
    pub suicides: usize,
    /// eq. 25 load imbalance over alive servers.
    pub load_imbalance: f64,
    /// Mean lookup path length (WAN hops).
    pub path_length: f64,
    /// Queries served.
    pub served: f64,
    /// Queries nobody could serve.
    pub unserved: f64,
    /// Alive servers.
    pub alive_servers: usize,
    /// Mean round-trip response latency of served queries (ms).
    pub latency_ms: f64,
    /// Fraction of demand answered within the 300 ms SLA.
    pub sla_fraction: f64,
    /// Partitions that lost every replica this epoch (restored from
    /// cold archive — the failure replication exists to prevent).
    pub data_loss: usize,
    /// Deferred transfers and archive restores that completed this
    /// epoch (the repair path working through its backlog).
    pub repairs: usize,
    /// Transfers dropped this epoch after exhausting their retry
    /// budget.
    pub dead_letters: usize,
    /// Invariant violations the auditor flagged this epoch.
    pub invariant_violations: usize,
}

/// The full metric history of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    partitions: u32,
    /// Cumulative counters.
    replications_cum: usize,
    migrations_cum: usize,
    data_loss_cum: usize,
    repairs_cum: usize,
    dead_letters_cum: usize,
    violations_cum: usize,
    replication_cost_cum: f64,
    migration_cost_cum: f64,
    /// The recorded series, in documentation order.
    series: Vec<TimeSeries>,
}

/// Indices into `Metrics::series` (kept private; accessors below).
const UTILIZATION: usize = 0;
const REPLICAS_TOTAL: usize = 1;
const REPLICAS_AVG: usize = 2;
const REPLICATION_COST: usize = 3;
const REPLICATION_COST_AVG: usize = 4;
const MIGRATIONS_TOTAL: usize = 5;
const MIGRATIONS_AVG: usize = 6;
const MIGRATION_COST: usize = 7;
const MIGRATION_COST_AVG: usize = 8;
const LOAD_IMBALANCE: usize = 9;
const PATH_LENGTH: usize = 10;
const UNSERVED: usize = 11;
const SERVED: usize = 12;
const ALIVE_SERVERS: usize = 13;
const SUICIDES: usize = 14;
const LATENCY_MS: usize = 15;
const SLA_300MS: usize = 16;
const DATA_LOSS_TOTAL: usize = 17;
const REPAIRS_TOTAL: usize = 18;
const DEAD_LETTERS_TOTAL: usize = 19;
const INVARIANT_VIOLATIONS: usize = 20;
const SERIES_NAMES: [&str; 21] = [
    "utilization",
    "replicas_total",
    "replicas_avg",
    "replication_cost",
    "replication_cost_avg",
    "migrations_total",
    "migrations_avg",
    "migration_cost",
    "migration_cost_avg",
    "load_imbalance",
    "path_length",
    "unserved",
    "served",
    "alive_servers",
    "suicides",
    "latency_ms",
    "sla_300ms",
    "data_loss_total",
    "repairs_total",
    "dead_letters_total",
    "invariant_violations",
];

impl Metrics {
    /// Empty history for a run over `partitions` partitions.
    pub fn new(partitions: u32) -> Self {
        Metrics {
            partitions,
            replications_cum: 0,
            migrations_cum: 0,
            data_loss_cum: 0,
            repairs_cum: 0,
            dead_letters_cum: 0,
            violations_cum: 0,
            replication_cost_cum: 0.0,
            migration_cost_cum: 0.0,
            series: SERIES_NAMES.iter().map(|n| TimeSeries::new(*n)).collect(),
        }
    }

    /// Record one epoch.
    pub fn record(&mut self, snap: &EpochSnapshot) {
        self.replications_cum += snap.replications;
        self.migrations_cum += snap.migrations;
        self.data_loss_cum += snap.data_loss;
        self.repairs_cum += snap.repairs;
        self.dead_letters_cum += snap.dead_letters;
        self.violations_cum += snap.invariant_violations;
        self.replication_cost_cum += snap.replication_cost;
        self.migration_cost_cum += snap.migration_cost;

        let s = &mut self.series;
        s[UTILIZATION].push(snap.utilization);
        s[REPLICAS_TOTAL].push(snap.replicas_total as f64);
        s[REPLICAS_AVG].push(if self.partitions == 0 {
            0.0
        } else {
            snap.replicas_total as f64 / self.partitions as f64
        });
        s[REPLICATION_COST].push(self.replication_cost_cum);
        s[REPLICATION_COST_AVG].push(if self.replications_cum == 0 {
            0.0
        } else {
            self.replication_cost_cum / self.replications_cum as f64
        });
        s[MIGRATIONS_TOTAL].push(self.migrations_cum as f64);
        s[MIGRATIONS_AVG].push(if snap.replicas_total == 0 {
            0.0
        } else {
            self.migrations_cum as f64 / snap.replicas_total as f64
        });
        s[MIGRATION_COST].push(self.migration_cost_cum);
        s[MIGRATION_COST_AVG].push(if self.migrations_cum == 0 {
            0.0
        } else {
            self.migration_cost_cum / self.migrations_cum as f64
        });
        s[LOAD_IMBALANCE].push(snap.load_imbalance);
        s[PATH_LENGTH].push(snap.path_length);
        s[UNSERVED].push(snap.unserved);
        s[SERVED].push(snap.served);
        s[ALIVE_SERVERS].push(snap.alive_servers as f64);
        s[SUICIDES].push(snap.suicides as f64);
        s[LATENCY_MS].push(snap.latency_ms);
        s[SLA_300MS].push(snap.sla_fraction);
        s[DATA_LOSS_TOTAL].push(self.data_loss_cum as f64);
        s[REPAIRS_TOTAL].push(self.repairs_cum as f64);
        s[DEAD_LETTERS_TOTAL].push(self.dead_letters_cum as f64);
        s[INVARIANT_VIOLATIONS].push(self.violations_cum as f64);
    }

    /// Number of recorded epochs.
    pub fn epochs(&self) -> usize {
        self.series[UTILIZATION].len()
    }

    /// A series by name (one of the names listed in the module docs).
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        let idx = SERIES_NAMES.iter().position(|&n| n == name)?;
        Some(&self.series[idx])
    }

    /// All series, documentation order.
    pub fn all_series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Names of every recorded series.
    pub fn series_names() -> &'static [&'static str] {
        &SERIES_NAMES
    }
}

/// Time-to-repair: epochs after `fail_epoch` until the replica
/// population first returns to within `tolerance` (a fraction, e.g.
/// `0.05`) of its pre-failure level. `Some(0)` means the population
/// never effectively dipped; `None` means it had not reconverged by the
/// end of the run (or `fail_epoch` is out of range / epoch 0, which has
/// no pre-failure baseline).
pub fn recovery_epochs(metrics: &Metrics, fail_epoch: u64, tolerance: f64) -> Option<u64> {
    let series = metrics.series("replicas_total")?;
    let fail = usize::try_from(fail_epoch).ok()?;
    if fail == 0 || fail >= series.len() {
        return None;
    }
    let baseline = series.values()[fail - 1];
    let floor = baseline * (1.0 - tolerance);
    series.values()[fail..].iter().position(|&v| v >= floor).map(|i| i as u64)
}

/// Compute the mean replica utilization of eq. (23) for one epoch:
/// every `(partition, server)` pair that hosts replica capacity
/// contributes `min(1, served / capacity)`; the mean is over replicas.
pub fn mean_utilization(view: &PlacementView, accounts: &TrafficAccounts) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for p_idx in 0..view.partitions() {
        let p = PartitionId::new(p_idx);
        for s in view.replica_servers(p) {
            let cap = view.capacity(p, s);
            debug_assert!(cap > 0.0);
            let served = accounts.served.get(s.index(), p.index());
            total += (served / cap).min(1.0);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// [`mean_utilization`] over a sparse active set: only the replicas of
/// `active` partitions can have served anything this epoch, so every
/// skipped replica contributes an exact `+0.0` term to the numerator —
/// the additive identity on this non-negative accumulator — while the
/// denominator comes from the view's O(1) cell counter. Bit-identical
/// to the dense scan whenever the sparse invariant holds (every
/// partition with served traffic is in `active`, ascending).
pub fn mean_utilization_active(
    view: &PlacementView,
    accounts: &TrafficAccounts,
    active: &[u32],
) -> f64 {
    let mut total = 0.0;
    for &pu in active {
        let p = PartitionId::new(pu);
        for s in view.replica_servers(p) {
            let cap = view.capacity(p, s);
            debug_assert!(cap > 0.0);
            let served = accounts.served.get(s.index(), p.index());
            total += (served / cap).min(1.0);
        }
    }
    let count = view.nonzero_cells();
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// eq. (25): population standard deviation of per-alive-server load.
pub fn epoch_load_imbalance(topo: &Topology, accounts: &TrafficAccounts) -> f64 {
    let loads: Vec<f64> = topo
        .servers()
        .iter()
        .filter(|s| s.alive)
        .map(|s| accounts.server_load(ServerId::new(s.id.0)))
        .collect();
    load_imbalance(&loads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(replicas: usize, replications: usize, cost: f64) -> EpochSnapshot {
        EpochSnapshot {
            utilization: 0.5,
            replicas_total: replicas,
            replications,
            replication_cost: cost,
            ..Default::default()
        }
    }

    #[test]
    fn series_names_are_exposed() {
        let m = Metrics::new(4);
        for name in Metrics::series_names() {
            assert!(m.series(name).is_some(), "{name} missing");
        }
        assert!(m.series("nope").is_none());
        assert_eq!(m.all_series().len(), SERIES_NAMES.len());
    }

    #[test]
    fn cumulative_cost_and_average() {
        let mut m = Metrics::new(4);
        m.record(&snap(4, 2, 10.0));
        m.record(&snap(6, 1, 2.0));
        m.record(&snap(6, 0, 0.0));
        let cost = m.series("replication_cost").unwrap();
        assert_eq!(cost.values(), &[10.0, 12.0, 12.0]);
        let avg = m.series("replication_cost_avg").unwrap();
        assert_eq!(avg.values()[0], 5.0);
        assert_eq!(avg.values()[1], 4.0);
        assert_eq!(avg.values()[2], 4.0, "no new replications keeps the average");
        assert_eq!(m.series("replicas_avg").unwrap().values()[1], 1.5);
        assert_eq!(m.epochs(), 3);
    }

    #[test]
    fn recovery_epochs_measures_the_dip() {
        let mut m = Metrics::new(4);
        for replicas in [100, 100, 60, 70, 80, 96, 100] {
            m.record(&snap(replicas, 0, 0.0));
        }
        // Failure at epoch 2 (baseline 100): within 5% means ≥ 95,
        // first reached at epoch 5 → 3 epochs to repair.
        assert_eq!(recovery_epochs(&m, 2, 0.05), Some(3));
        // A 50% tolerance is already met at the dip itself.
        assert_eq!(recovery_epochs(&m, 2, 0.5), Some(0));
        // Zero tolerance needs the full 100 back.
        assert_eq!(recovery_epochs(&m, 2, 0.0), Some(4));
        // Never reconverges within the run.
        let mut short = Metrics::new(4);
        for replicas in [100, 50, 51] {
            short.record(&snap(replicas, 0, 0.0));
        }
        assert_eq!(recovery_epochs(&short, 1, 0.05), None);
        // No baseline before epoch 0; out-of-range epochs.
        assert_eq!(recovery_epochs(&m, 0, 0.05), None);
        assert_eq!(recovery_epochs(&m, 99, 0.05), None);
    }

    #[test]
    fn division_guards() {
        let mut m = Metrics::new(0);
        m.record(&EpochSnapshot::default());
        assert_eq!(m.series("replicas_avg").unwrap().values()[0], 0.0);
        assert_eq!(m.series("migration_cost_avg").unwrap().values()[0], 0.0);
        assert_eq!(m.series("migrations_avg").unwrap().values()[0], 0.0);
    }

    mod utilization {
        use super::super::*;
        use rfh_topology::TopologyBuilder;
        use rfh_traffic::TrafficEngine;
        use rfh_types::{Continent, DatacenterId, GeoPoint};
        use rfh_workload::QueryLoad;

        fn one_dc() -> Topology {
            let mut b = TopologyBuilder::new();
            b.datacenter("A", Continent::Asia, "CHN", "A1", GeoPoint::new(0.0, 0.0), 1, 1, 2)
                .unwrap();
            b.build(0.0, 0).unwrap()
        }

        #[test]
        fn utilization_mixes_full_and_idle_replicas() {
            let topo = one_dc();
            let mut view = PlacementView::new(1, 2, vec![ServerId::new(0)]);
            view.add_capacity(PartitionId::new(0), ServerId::new(0), 10.0);
            view.add_capacity(PartitionId::new(0), ServerId::new(1), 10.0);
            let mut load = QueryLoad::zeros(1, 1);
            load.add(PartitionId::new(0), DatacenterId::new(0), 10);
            let acc = TrafficEngine::new().account(&topo, &load, &view).clone();
            // Server 0 absorbs all 10 (first in DC order): 1.0; server 1
            // idles: 0.0 → mean 0.5.
            assert!((mean_utilization(&view, &acc) - 0.5).abs() < 1e-12);
        }

        #[test]
        fn empty_view_is_zero() {
            let topo = one_dc();
            let view = PlacementView::new(1, 2, vec![ServerId::new(0)]);
            let load = QueryLoad::zeros(1, 1);
            let acc = TrafficEngine::new().account(&topo, &load, &view).clone();
            assert_eq!(mean_utilization(&view, &acc), 0.0);
        }

        #[test]
        fn imbalance_reflects_served_spread() {
            let topo = one_dc();
            let mut view = PlacementView::new(1, 2, vec![ServerId::new(0)]);
            view.add_capacity(PartitionId::new(0), ServerId::new(0), 100.0);
            let mut load = QueryLoad::zeros(1, 1);
            load.add(PartitionId::new(0), DatacenterId::new(0), 50);
            let acc = TrafficEngine::new().account(&topo, &load, &view).clone();
            // Loads are [50, 0] → stddev 25.
            assert!((epoch_load_imbalance(&topo, &acc) - 25.0).abs() < 1e-12);
        }
    }
}
