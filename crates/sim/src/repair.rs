//! Retryable transfers: bounded exponential backoff for replication and
//! migration actions whose destination is unreachable.
//!
//! Under WAN faults a decided transfer can be impossible to execute —
//! the target server is down, or no route reaches its datacenter. The
//! execution layer must not count such transfers as done (that would be
//! replicating into a black hole) nor silently discard them (the policy
//! believes the transfer is in flight). Instead the simulation defers
//! them here and retries with exponentially growing spacing: attempt
//! `k` waits `2^k` epochs, so a transfer blocked by a long outage backs
//! off instead of hammering every epoch. After [`RepairQueue::MAX_ATTEMPTS`]
//! failed attempts the action is *dead-lettered*: dropped permanently
//! and accounted, mirroring how production replication pipelines
//! surface permanently failed work instead of retrying forever.
//!
//! The queue is deterministic: actions retain FIFO order within an
//! epoch, delays are pure functions of the attempt count, and no
//! randomness is involved — a chaos run replays bit-identically.

use rfh_core::{Action, ReplicaManager};
use rfh_topology::Topology;
use rfh_types::ServerId;

/// A deferred action plus its retry state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingRepair {
    /// The transfer to retry.
    pub action: Action,
    /// Attempts already failed (0 = first deferral).
    pub attempts: u32,
    /// Epoch the next attempt is due.
    pub due: u64,
}

/// FIFO retry queue with exponential backoff and dead-letter
/// accounting. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct RepairQueue {
    pending: Vec<PendingRepair>,
    dead_letters: u64,
    completed: u64,
}

impl RepairQueue {
    /// Retries allowed before an action is dead-lettered. With backoff
    /// `2^k` this covers an outage of `2+4+…+2^6 ≈ 126` epochs.
    pub const MAX_ATTEMPTS: u32 = 6;

    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defer `action` after a failed attempt number `attempts`
    /// (0-based). Returns `false` — and counts a dead letter — once the
    /// attempt budget is exhausted.
    pub fn defer(&mut self, action: Action, attempts: u32, epoch: u64) -> bool {
        if attempts >= Self::MAX_ATTEMPTS {
            self.dead_letters += 1;
            return false;
        }
        let due = epoch + (1u64 << (attempts + 1).min(6));
        self.pending.push(PendingRepair { action, attempts, due });
        true
    }

    /// Defer `action` to the *next* epoch — the transfer planner's
    /// deferred lane. Unlike [`defer`](Self::defer), a bandwidth
    /// deferral is not a failed attempt: the destination is fine, the
    /// link budget was simply spent, and the planner's carried credit
    /// guarantees eventual admission — so there is no backoff and no
    /// dead-letter cap. `attempts` still accumulates (it is the
    /// planner's aging priority, and it seeds the unreachable backoff
    /// should the destination later die).
    pub fn defer_next(&mut self, action: Action, attempts: u32, epoch: u64) {
        self.pending.push(PendingRepair { action, attempts, due: epoch + 1 });
    }

    /// Remove and return every action due at `epoch`, oldest first.
    pub fn take_due(&mut self, epoch: u64) -> Vec<PendingRepair> {
        let mut due = Vec::new();
        self.pending.retain(|item| {
            if item.due <= epoch {
                due.push(*item);
                false
            } else {
                true
            }
        });
        due
    }

    /// Count a deferred action that finally applied.
    pub fn note_completed(&mut self) {
        self.completed += 1;
    }

    /// Actions currently waiting for a retry.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Actions dropped after exhausting their attempts.
    pub fn dead_letters(&self) -> u64 {
        self.dead_letters
    }

    /// Deferred actions that eventually applied.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

/// Whether `action`'s destination cannot take a transfer right now:
/// the target server is dead, or the WAN has no route from the
/// transfer's source datacenter to the target's. Suicides never
/// transfer anything and are always executable.
pub fn destination_unreachable(topo: &Topology, manager: &ReplicaManager, action: &Action) -> bool {
    let dc_of = |s: ServerId| topo.servers()[s.index()].datacenter;
    let blocked = |src: ServerId, dst: ServerId| {
        !topo.servers()[dst.index()].alive
            || topo.graph().latency_ms(dc_of(src), dc_of(dst)).is_none()
    };
    match *action {
        Action::Replicate { partition, target } => blocked(manager.holder(partition), target),
        Action::Migrate { from, to, .. } => blocked(from, to),
        Action::Suicide { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_types::PartitionId;

    fn act(i: u32) -> Action {
        Action::Replicate { partition: PartitionId::new(i), target: ServerId::new(0) }
    }

    #[test]
    fn backoff_doubles_and_preserves_order() {
        let mut q = RepairQueue::new();
        assert!(q.defer(act(0), 0, 10));
        assert!(q.defer(act(1), 0, 10));
        assert!(q.defer(act(2), 1, 10));
        assert!(q.take_due(11).is_empty(), "first retry waits 2 epochs");
        let due = q.take_due(12);
        assert_eq!(due.len(), 2, "attempt 0 comes due at +2");
        assert_eq!(due[0].action, act(0), "FIFO within an epoch");
        assert_eq!(due[1].action, act(1));
        assert_eq!(q.len(), 1);
        let due = q.take_due(14);
        assert_eq!(due[0].action, act(2), "attempt 1 waits 4 epochs");
    }

    #[test]
    fn backoff_caps_and_dead_letters() {
        let mut q = RepairQueue::new();
        // Attempt 9 would want 2^10 epochs; the exponent caps at 6.
        assert!(!q.defer(act(0), RepairQueue::MAX_ATTEMPTS, 0));
        assert_eq!(q.dead_letters(), 1);
        assert!(q.defer(act(0), RepairQueue::MAX_ATTEMPTS - 1, 0));
        assert_eq!(q.take_due(64).len(), 1, "last attempt waits 2^6");
    }
}
