//! A fixed-size worker pool for deterministic intra-epoch parallelism.
//!
//! The epoch engine shards its hot loops by partition and runs the
//! shards on this pool. Determinism does not come from the pool — jobs
//! finish in whatever order the scheduler likes — but from the callers'
//! discipline: every job writes only to its own shard-local buffers, and
//! the (serial) merge that follows reads them back in canonical
//! partition order. The pool's only correctness obligations are the ones
//! encoded here: [`run`](WorkerPool::run) returns strictly after every
//! submitted job has finished, and a panicking job resurfaces its panic
//! on the caller's thread once the batch has drained.
//!
//! Built on the vendored `crossbeam` channel (no new dependencies).
//! That channel's receiver is single-consumer, so the pool gives each
//! worker a private job queue and deals jobs round-robin; completions
//! funnel back over one shared channel.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// A job once its borrows have been erased to `'static` (see the safety
/// argument in [`WorkerPool::run`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// What a worker reports when a job ends.
enum Done {
    Ok,
    Panicked(Box<dyn std::any::Any + Send>),
}

/// Fixed set of worker threads executing borrowed jobs to completion.
///
/// The pool is created once and reused every epoch; `run` blocks until
/// the whole batch is done, so jobs may borrow from the caller's stack.
/// Wrapped in `Arc`, one pool can serve several engine stages (traffic
/// pass, decision pass) of the same run.
pub struct WorkerPool {
    /// One private queue per worker: jobs are dealt round-robin.
    job_txs: Vec<Sender<Job>>,
    /// Shared completion channel. The mutex serializes concurrent
    /// `run` calls (each batch must observe exactly its own
    /// completions) and makes the pool `Sync`.
    done_rx: Mutex<Receiver<Done>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("size", &self.size()).finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `size` workers (clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (done_tx, done_rx) = unbounded::<Done>();
        let mut job_txs = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for i in 0..size {
            let (job_tx, job_rx) = unbounded::<Job>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("rfh-pool-{i}"))
                .spawn(move || worker_loop(job_rx, done))
                .expect("spawn pool worker");
            job_txs.push(job_tx);
            handles.push(handle);
        }
        WorkerPool { job_txs, done_rx: Mutex::new(done_rx), handles }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.job_txs.len()
    }

    /// Execute a batch of jobs and block until all of them finish.
    ///
    /// Jobs may borrow from the caller's environment (`'env`): the
    /// blocking wait is what makes that sound. If any job panicked, the
    /// first observed panic is resumed on this thread — after the whole
    /// batch has drained, so no job is left running with dangling
    /// borrows.
    pub fn run<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        // Take the completion channel first: a second concurrent `run`
        // parks here until this batch has consumed exactly its own
        // completion messages.
        let done_rx = self.done_rx.lock().unwrap_or_else(|e| e.into_inner());
        let batch = jobs.len();
        for (i, job) in jobs.into_iter().enumerate() {
            // SAFETY: the job's true lifetime is 'env, which outlives
            // this call frame; we erase it to 'static only to cross the
            // channel. The loop below blocks until every job in the
            // batch has reported completion, so no erased borrow is
            // used after 'env ends. Workers never stash jobs: each is
            // consumed by exactly one `FnOnce` call inside this batch.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            self.job_txs[i % self.job_txs.len()].send(job).expect("pool worker alive");
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..batch {
            match done_rx.recv().expect("pool worker alive") {
                Done::Ok => {}
                Done::Panicked(payload) => panic = panic.or(Some(payload)),
            }
        }
        drop(done_rx);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job queues ends each worker's recv loop.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(jobs: Receiver<Job>, done: Sender<Done>) {
    while let Ok(job) = jobs.recv() {
        let outcome = match catch_unwind(AssertUnwindSafe(job)) {
            Ok(()) => Done::Ok,
            Err(payload) => Done::Panicked(payload),
        };
        if done.send(outcome).is_err() {
            return;
        }
    }
}

/// Contiguous balanced split of `n_items` into `n_shards` ranges:
/// shard `k` gets `[lo, hi)`. The first `n_items % n_shards` shards
/// take one extra item; shards beyond `n_items` come out empty
/// (`lo == hi`). Every caller that fans work out over the pool uses
/// this split, so "canonical partition order" (ascending ids, shard 0
/// first) is the same order serial code iterates in.
pub fn shard_bounds(n_items: usize, n_shards: usize, shard: usize) -> (usize, usize) {
    assert!(shard < n_shards, "shard index out of range");
    let base = n_items / n_shards;
    let extra = n_items % n_shards;
    let lo = shard * base + shard.min(extra);
    let hi = lo + base + usize::from(shard < extra);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_borrowed_jobs_to_completion() {
        let pool = WorkerPool::new(4);
        let mut cells = vec![0usize; 37];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = cells
            .iter_mut()
            .enumerate()
            .map(|(i, cell)| Box::new(move || *cell = i + 1) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool.run(jobs);
        for (i, &v) in cells.iter().enumerate() {
            assert_eq!(v, i + 1, "job {i} must have run before run() returned");
        }
    }

    #[test]
    fn more_jobs_than_workers_all_run() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..3 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..25)
                .map(|_| {
                    let c = &counter;
                    Box::new(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 75, "pool is reusable across batches");
    }

    #[test]
    fn job_panic_resurfaces_after_the_batch_drains() {
        let pool = WorkerPool::new(3);
        let finished = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..9)
                .map(|i| {
                    let f = &finished;
                    Box::new(move || {
                        if i == 4 {
                            panic!("boom {i}");
                        }
                        f.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(jobs);
        }));
        assert!(caught.is_err(), "the job's panic must resurface on the caller");
        assert_eq!(finished.load(Ordering::Relaxed), 8, "the rest of the batch still ran");
        // The pool survives a panicked batch.
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..5)
            .map(|_| {
                let f = &finished;
                Box::new(move || {
                    f.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(finished.load(Ordering::Relaxed), 13);
    }

    #[test]
    fn zero_sized_pool_clamps_to_one_worker() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
        let mut hit = false;
        pool.run(vec![Box::new(|| hit = true) as Box<dyn FnOnce() + Send + '_>]);
        assert!(hit);
    }

    #[test]
    fn shard_bounds_cover_exactly_once_in_order() {
        for n_items in 0..40 {
            for n_shards in 1..12 {
                let mut next = 0;
                for k in 0..n_shards {
                    let (lo, hi) = shard_bounds(n_items, n_shards, k);
                    assert_eq!(lo, next, "{n_items} items / {n_shards} shards, shard {k}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, n_items, "ranges must cover all items");
            }
        }
        // Balanced: sizes differ by at most one.
        let sizes: Vec<usize> = (0..7)
            .map(|k| {
                let (lo, hi) = shard_bounds(16, 7, k);
                hi - lo
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 16);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "{sizes:?}");
        // More shards than items: the tail shards are empty, not absent.
        let empties = (0..8)
            .filter(|&k| {
                let (lo, hi) = shard_bounds(3, 8, k);
                lo == hi
            })
            .count();
        assert_eq!(empties, 5);
    }
}
