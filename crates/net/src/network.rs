//! The WAN transport: tick-driven, hop-by-hop delivery.
//!
//! Messages are source-routed along the datacenter paths the topology
//! computed; every *tick* each in-flight message advances one hop.
//! An epoch grants `ticks_per_epoch` ticks, so with a budget of at
//! least the WAN diameter every message sent at the start of an epoch
//! is delivered within it (the realistic regime for 10-second epochs
//! and ~100 ms routes); a budget of 1 models a control plane an order
//! of magnitude slower than the data plane.

use crate::message::Message;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfh_obs::MetricsRegistry;
use rfh_stats::Histogram;
use rfh_types::DatacenterId;

/// Gray-failure profile for the transport: per-hop probabilistic
/// message loss plus a TTL after which a stalled request times out
/// instead of counting as delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkFaults {
    /// Probability that any single hop silently drops the message.
    pub drop_probability: f64,
    /// Ticks a message may stay in flight before it times out.
    /// `None` = requests never expire (messages stalled on a blocked
    /// link wait for it to heal).
    pub ttl_ticks: Option<u32>,
    /// Seed for the loss process (deterministic given the seed and the
    /// message sequence).
    pub seed: u64,
}

impl NetworkFaults {
    /// A profile that drops nothing and never times out; useful as a
    /// base for blocking links only.
    pub fn lossless(seed: u64) -> Self {
        NetworkFaults { drop_probability: 0.0, ttl_ticks: None, seed }
    }
}

/// Installed fault state: the profile, its RNG, and the set of
/// currently blocked (down) inter-DC links, endpoint-normalized.
#[derive(Debug, Clone)]
struct FaultRuntime {
    profile: NetworkFaults,
    rng: StdRng,
    blocked: Vec<(u32, u32)>,
}

impl FaultRuntime {
    fn new(profile: NetworkFaults) -> Self {
        let rng = StdRng::seed_from_u64(profile.seed);
        FaultRuntime { profile, rng, blocked: Vec::new() }
    }

    fn is_blocked(&self, a: DatacenterId, b: DatacenterId) -> bool {
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.blocked.contains(&key)
    }
}

/// Runtime equality ignores RNG internals: two transports with the
/// same profile and blocked set are interchangeable for assertions.
impl PartialEq for FaultRuntime {
    fn eq(&self, other: &Self) -> bool {
        self.profile == other.profile && self.blocked == other.blocked
    }
}

/// The tick-driven message transport.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    ticks_per_epoch: usize,
    in_flight: Vec<Message>,
    /// Delivered messages, keyed by destination datacenter index.
    inboxes: Vec<Vec<Message>>,
    /// Totals for reporting.
    sent: u64,
    delivered: u64,
    hops_travelled: u64,
    /// Sends by payload kind (`MessagePayload::kind`), first-seen order.
    sent_by_kind: Vec<(&'static str, u64)>,
    /// Deepest the in-flight queue has ever been.
    max_in_flight: usize,
    /// Route length (hops) of each delivered message — the transport's
    /// delivery-latency distribution in ticks.
    delivery_hops: Histogram,
    /// Tick scratch: swapped with `in_flight` each tick so survivors
    /// are re-collected without allocating. Empty between ticks.
    scratch: Vec<Message>,
    /// Gray-failure state; `None` (the default) keeps the transport
    /// perfectly reliable and adds no per-tick work.
    faults: Option<FaultRuntime>,
    /// Messages lost to probabilistic per-hop drops.
    dropped: u64,
    /// Messages that exceeded their TTL before delivery.
    timed_out: u64,
}

/// Histogram range for delivery hops: the paper WAN's diameter is 5;
/// 16 leaves headroom for custom topologies before overflow counting.
const MAX_TRACKED_HOPS: f64 = 16.0;

impl Network {
    /// Create a transport over `dcs` datacenters granting
    /// `ticks_per_epoch` hops of progress per epoch (≥ 1).
    pub fn new(dcs: usize, ticks_per_epoch: usize) -> Self {
        assert!(ticks_per_epoch >= 1, "at least one tick per epoch");
        Network {
            ticks_per_epoch,
            in_flight: Vec::new(),
            inboxes: vec![Vec::new(); dcs],
            sent: 0,
            delivered: 0,
            hops_travelled: 0,
            sent_by_kind: Vec::new(),
            max_in_flight: 0,
            delivery_hops: Histogram::new(0.0, MAX_TRACKED_HOPS, MAX_TRACKED_HOPS as usize),
            scratch: Vec::new(),
            faults: None,
            dropped: 0,
            timed_out: 0,
        }
    }

    /// Install (or clear) a gray-failure profile. Installing resets the
    /// loss RNG to the profile's seed; clearing also unblocks every
    /// link.
    pub fn set_faults(&mut self, profile: Option<NetworkFaults>) {
        self.faults = profile.map(FaultRuntime::new);
    }

    /// Block or unblock the link between two datacenters: in-flight
    /// messages whose next hop crosses a blocked link stall (and time
    /// out if a TTL is set). Blocking with no profile installed
    /// installs a lossless one.
    pub fn set_link_blocked(&mut self, a: DatacenterId, b: DatacenterId, blocked: bool) {
        let f = self.faults.get_or_insert_with(|| FaultRuntime::new(NetworkFaults::lossless(0)));
        let key = (a.0.min(b.0), a.0.max(b.0));
        match (blocked, f.blocked.iter().position(|&k| k == key)) {
            (true, None) => f.blocked.push(key),
            (false, Some(i)) => {
                f.blocked.remove(i);
            }
            _ => {}
        }
    }

    /// Hand a message to the transport. Zero-hop messages (destination =
    /// origin) are delivered instantly.
    pub fn send(&mut self, message: Message) {
        self.sent += 1;
        let kind = message.payload.kind();
        match self.sent_by_kind.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => self.sent_by_kind.push((kind, 1)),
        }
        if message.delivered() {
            self.deliver(message);
        } else {
            self.in_flight.push(message);
            self.max_in_flight = self.max_in_flight.max(self.in_flight.len());
        }
    }

    fn deliver(&mut self, message: Message) {
        self.delivered += 1;
        self.delivery_hops.record((message.route.len() - 1) as f64);
        let dst = message.destination().index();
        assert!(dst < self.inboxes.len(), "destination outside the network");
        self.inboxes[dst].push(message);
    }

    /// Advance one tick: every in-flight message moves one hop — unless
    /// a fault profile stalls it on a blocked link, drops it on a lossy
    /// hop, or expires it past its TTL.
    pub fn tick(&mut self) {
        // Swap the queue into the scratch buffer and refill `in_flight`
        // with the survivors: the two vectors trade capacities every
        // tick, so steady-state ticks allocate nothing.
        let mut moving = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut self.in_flight, &mut moving);
        for mut m in moving.drain(..) {
            if let Some(f) = self.faults.as_mut() {
                m.age += 1;
                if f.profile.ttl_ticks.is_some_and(|ttl| m.age > ttl) {
                    self.timed_out += 1;
                    continue;
                }
                let next = m.route[m.position + 1];
                if f.is_blocked(m.current(), next) {
                    // Stalled at the near end of a downed link; waits
                    // for the link (or its own TTL) while aging.
                    self.in_flight.push(m);
                    continue;
                }
                if f.profile.drop_probability > 0.0
                    && f.rng.gen::<f64>() < f.profile.drop_probability
                {
                    self.dropped += 1;
                    continue;
                }
            }
            self.hops_travelled += 1;
            if m.advance() {
                self.deliver(m);
            } else {
                self.in_flight.push(m);
            }
        }
        self.scratch = moving;
    }

    /// Run the epoch's tick budget.
    pub fn run_epoch(&mut self) {
        for _ in 0..self.ticks_per_epoch {
            if self.in_flight.is_empty() {
                break;
            }
            self.tick();
        }
    }

    /// Drain the inbox of one datacenter.
    pub fn drain_inbox(&mut self, dc: DatacenterId) -> Vec<Message> {
        std::mem::take(&mut self.inboxes[dc.index()])
    }

    /// Messages still travelling.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Messages handed to the transport so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total hops travelled by all messages (control-plane overhead).
    pub fn hops_travelled(&self) -> u64 {
        self.hops_travelled
    }

    /// Messages lost to probabilistic per-hop drops.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages that exceeded their TTL before delivery (requests the
    /// sender must treat as timed out, not delivered).
    pub fn timed_out(&self) -> u64 {
        self.timed_out
    }

    /// The configured tick budget.
    pub fn ticks_per_epoch(&self) -> usize {
        self.ticks_per_epoch
    }

    /// Deepest the in-flight queue has ever been.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// The delivery-latency distribution: hops each delivered message
    /// travelled (equal to ticks in flight, as one tick moves one hop).
    pub fn delivery_hops(&self) -> &Histogram {
        &self.delivery_hops
    }

    /// Export the transport's counters into a metrics registry:
    /// messages by type, queue depth, and delivery latency. The counts
    /// are lifetime totals, written set-style so re-collecting into the
    /// same registry is idempotent.
    pub fn collect_metrics(&self, registry: &mut MetricsRegistry) {
        registry.counter_total("net.sent", self.sent);
        for (kind, n) in &self.sent_by_kind {
            registry.counter_total(&format!("net.sent.{kind}"), *n);
        }
        registry.counter_total("net.delivered", self.delivered);
        registry.counter_total("net.dropped", self.dropped);
        registry.counter_total("net.timed_out", self.timed_out);
        registry.counter_total("net.hops_travelled", self.hops_travelled);
        registry.gauge("net.in_flight", self.in_flight.len() as f64);
        registry.gauge("net.max_in_flight", self.max_in_flight as f64);
        registry.histogram("net.delivery_hops", &self.delivery_hops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessagePayload;
    use rfh_types::{Epoch, PartitionId};

    fn dc(i: u32) -> DatacenterId {
        DatacenterId::new(i)
    }

    fn msg(route: Vec<u32>) -> Message {
        Message::new(
            route.into_iter().map(DatacenterId::new).collect(),
            MessagePayload::TrafficReport {
                partition: PartitionId::new(0),
                reporter: dc(0),
                traffic: 1.0,
                outflow: 1.0,
                candidate: None,
                blocking_probability: 1.0,
                observed_at: Epoch(0),
            },
        )
    }

    #[test]
    fn messages_advance_one_hop_per_tick() {
        let mut net = Network::new(5, 10);
        net.send(msg(vec![0, 1, 2, 3]));
        assert_eq!(net.in_flight(), 1);
        net.tick();
        net.tick();
        assert_eq!(net.in_flight(), 1, "two of three hops done");
        net.tick();
        assert_eq!(net.in_flight(), 0);
        let inbox = net.drain_inbox(dc(3));
        assert_eq!(inbox.len(), 1);
        assert_eq!(net.delivered(), 1);
        assert_eq!(net.hops_travelled(), 3);
    }

    #[test]
    fn zero_hop_messages_deliver_instantly() {
        let mut net = Network::new(2, 1);
        net.send(msg(vec![1]));
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.drain_inbox(dc(1)).len(), 1);
    }

    #[test]
    fn epoch_budget_bounds_progress() {
        let mut net = Network::new(6, 2);
        net.send(msg(vec![0, 1, 2, 3, 4, 5]));
        net.run_epoch();
        assert_eq!(net.in_flight(), 1, "5 hops, 2 ticks: still flying");
        net.run_epoch();
        net.run_epoch();
        assert_eq!(net.in_flight(), 0, "delivered by the third epoch");
        assert_eq!(net.drain_inbox(dc(5)).len(), 1);
    }

    #[test]
    fn generous_budget_delivers_within_one_epoch() {
        let mut net = Network::new(6, 8);
        for route in [vec![0, 1, 2], vec![3, 2, 1, 0], vec![5, 4]] {
            net.send(msg(route));
        }
        net.run_epoch();
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.delivered(), 3);
        assert_eq!(net.drain_inbox(dc(2)).len(), 1);
        assert_eq!(net.drain_inbox(dc(0)).len(), 1);
        assert_eq!(net.drain_inbox(dc(4)).len(), 1);
    }

    #[test]
    fn drain_empties_the_inbox() {
        let mut net = Network::new(3, 4);
        net.send(msg(vec![0, 1]));
        net.run_epoch();
        assert_eq!(net.drain_inbox(dc(1)).len(), 1);
        assert_eq!(net.drain_inbox(dc(1)).len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_tick_budget_rejected() {
        let _ = Network::new(3, 0);
    }

    #[test]
    fn blocked_link_stalls_until_it_heals() {
        let mut net = Network::new(5, 10);
        net.set_faults(Some(NetworkFaults::lossless(1)));
        net.set_link_blocked(dc(1), dc(2), true);
        net.send(msg(vec![0, 1, 2, 3]));
        net.run_epoch();
        assert_eq!(net.in_flight(), 1, "stalled at dc 1");
        assert_eq!(net.delivered(), 0);
        net.set_link_blocked(dc(2), dc(1), false); // endpoint order is irrelevant
        net.run_epoch();
        assert_eq!(net.delivered(), 1);
        assert_eq!(net.drain_inbox(dc(3)).len(), 1);
    }

    #[test]
    fn stalled_messages_time_out_instead_of_delivering() {
        let mut net = Network::new(5, 4);
        net.set_faults(Some(NetworkFaults { drop_probability: 0.0, ttl_ticks: Some(3), seed: 1 }));
        net.set_link_blocked(dc(0), dc(1), true);
        net.send(msg(vec![0, 1, 2]));
        net.run_epoch();
        assert_eq!(net.in_flight(), 0, "expired");
        assert_eq!(net.timed_out(), 1);
        assert_eq!(net.delivered(), 0, "timeouts never count as delivered");
    }

    #[test]
    fn per_hop_loss_is_probabilistic_and_deterministic() {
        let run = |seed: u64| {
            let mut net = Network::new(4, 16);
            net.set_faults(Some(NetworkFaults { drop_probability: 0.5, ttl_ticks: None, seed }));
            for _ in 0..64 {
                net.send(msg(vec![0, 1, 2, 3]));
            }
            net.run_epoch();
            (net.delivered(), net.dropped())
        };
        let (d1, l1) = run(42);
        let (d2, l2) = run(42);
        assert_eq!((d1, l1), (d2, l2), "same seed, same losses");
        assert_eq!(d1 + l1, 64, "every message either delivered or dropped");
        assert!(l1 > 0, "a 50% per-hop loss over 3 hops must drop some");
        assert!(d1 > 0, "and deliver some");
        let (d3, _) = run(43);
        assert_ne!(d1, d3, "different seed, different losses");
    }

    #[test]
    fn no_fault_profile_means_perfect_delivery() {
        let mut net = Network::new(4, 8);
        net.set_faults(Some(NetworkFaults::lossless(9)));
        net.set_faults(None); // cleared: blocked set and loss both gone
        net.send(msg(vec![0, 1, 2, 3]));
        net.run_epoch();
        assert_eq!(net.delivered(), 1);
        assert_eq!(net.dropped() + net.timed_out(), 0);
    }

    #[test]
    fn metrics_export_counts_kinds_depth_and_latency() {
        let mut net = Network::new(6, 8);
        net.send(msg(vec![0, 1, 2]));
        net.send(msg(vec![3, 4]));
        net.send(msg(vec![5])); // zero-hop: instant
        assert_eq!(net.max_in_flight(), 2);
        net.run_epoch();
        let mut reg = rfh_obs::MetricsRegistry::new();
        net.collect_metrics(&mut reg);
        use rfh_obs::Metric;
        assert_eq!(reg.get("net.sent"), Some(&Metric::Counter(3)));
        assert_eq!(reg.get("net.sent.traffic_report"), Some(&Metric::Counter(3)));
        assert_eq!(reg.get("net.delivered"), Some(&Metric::Counter(3)));
        assert_eq!(reg.get("net.in_flight"), Some(&Metric::Gauge(0.0)));
        assert_eq!(reg.get("net.max_in_flight"), Some(&Metric::Gauge(2.0)));
        match reg.get("net.delivery_hops") {
            Some(Metric::Summary { count, mean, .. }) => {
                assert_eq!(*count, 3);
                assert!((mean - 1.0).abs() < 1e-9, "hops 2+1+0 over 3 deliveries");
            }
            other => panic!("expected summary, got {other:?}"),
        }
    }
}
