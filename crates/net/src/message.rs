//! Protocol messages.
//!
//! Control information in RFH rides along the same WAN routes as the
//! queries (§II-B piggybacks requests onto forwarded queries). We model
//! each piggybacked unit as a source-routed [`Message`] whose route is
//! the datacenter path the enclosing query batch travels.

use rfh_types::{DatacenterId, Epoch, PartitionId, ServerId};

/// What a message carries.
#[derive(Debug, Clone, PartialEq)]
pub enum MessagePayload {
    /// A forwarding node's per-epoch traffic report for one partition,
    /// piggybacked toward the partition holder. Doubles as the
    /// *replication request* of §II-B when the reporter clears the hub
    /// bar — the holder applies eq. 13 on arrival.
    TrafficReport {
        /// The partition the traffic belongs to.
        partition: PartitionId,
        /// The reporting datacenter.
        reporter: DatacenterId,
        /// Smoothed arrival traffic `t̄r_ikt` at the reporter (eq. 11).
        traffic: f64,
        /// Smoothed *forwarding* traffic (residual passed onward) — the
        /// quantity hubs are ranked by.
        outflow: f64,
        /// The reporter's best replica host: its least-blocked server
        /// with room under the storage cap, if any.
        candidate: Option<ServerId>,
        /// Erlang-B blocking probability of `candidate` (§II-E: "the
        /// value of BP_i will be piggybacked into a replication
        /// request"). 1.0 when there is no candidate.
        blocking_probability: f64,
        /// Epoch the observation was made in (stale reports lose to
        /// fresher ones at the holder).
        observed_at: Epoch,
    },
}

impl MessagePayload {
    /// The partition this payload concerns.
    pub fn partition(&self) -> PartitionId {
        match self {
            MessagePayload::TrafficReport { partition, .. } => *partition,
        }
    }

    /// Metric label for this payload variant (`net.sent.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            MessagePayload::TrafficReport { .. } => "traffic_report",
        }
    }
}

/// A source-routed message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// The datacenter route, requester first, destination last
    /// (the same WAN path the piggybacking queries travel).
    pub route: Vec<DatacenterId>,
    /// Index into `route` of the message's current position.
    pub position: usize,
    /// Ticks spent in flight (drives TTL timeouts under faults).
    pub age: u32,
    /// The payload.
    pub payload: MessagePayload,
}

impl Message {
    /// Build a message at the start of its route.
    ///
    /// # Panics
    /// Panics on an empty route — every message needs at least the
    /// destination.
    pub fn new(route: Vec<DatacenterId>, payload: MessagePayload) -> Self {
        assert!(!route.is_empty(), "messages need a route");
        Message { route, position: 0, age: 0, payload }
    }

    /// The datacenter the message currently sits in.
    pub fn current(&self) -> DatacenterId {
        self.route[self.position]
    }

    /// The final destination.
    pub fn destination(&self) -> DatacenterId {
        *self.route.last().expect("route is non-empty")
    }

    /// Whether the message has arrived.
    pub fn delivered(&self) -> bool {
        self.position + 1 == self.route.len()
    }

    /// Advance one hop. Returns `true` if the message is now delivered.
    pub fn advance(&mut self) -> bool {
        if !self.delivered() {
            self.position += 1;
        }
        self.delivered()
    }

    /// Hops still ahead of the message.
    pub fn remaining_hops(&self) -> usize {
        self.route.len() - 1 - self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(i: u32) -> DatacenterId {
        DatacenterId::new(i)
    }

    fn report() -> MessagePayload {
        MessagePayload::TrafficReport {
            partition: PartitionId::new(3),
            reporter: dc(7),
            traffic: 12.0,
            outflow: 9.0,
            candidate: Some(ServerId::new(70)),
            blocking_probability: 0.05,
            observed_at: Epoch(4),
        }
    }

    #[test]
    fn advances_along_route() {
        let mut m = Message::new(vec![dc(7), dc(8), dc(4), dc(0)], report());
        assert_eq!(m.current(), dc(7));
        assert_eq!(m.destination(), dc(0));
        assert_eq!(m.remaining_hops(), 3);
        assert!(!m.delivered());
        assert!(!m.advance());
        assert_eq!(m.current(), dc(8));
        assert!(!m.advance());
        assert!(m.advance(), "third hop delivers");
        assert!(m.delivered());
        assert_eq!(m.remaining_hops(), 0);
        // Advancing a delivered message is a no-op.
        assert!(m.advance());
        assert_eq!(m.current(), dc(0));
    }

    #[test]
    fn single_hop_route_is_immediately_delivered() {
        let m = Message::new(vec![dc(0)], report());
        assert!(m.delivered());
        assert_eq!(m.current(), dc(0));
        assert_eq!(m.destination(), dc(0));
    }

    #[test]
    fn payload_partition_accessor() {
        assert_eq!(report().partition(), PartitionId::new(3));
    }

    #[test]
    #[should_panic(expected = "route")]
    fn empty_route_rejected() {
        let _ = Message::new(vec![], report());
    }
}
