//! # rfh-net
//!
//! The message-level protocol layer of §II-B, made concrete. The paper
//! describes RFH's control plane as piggybacked routing-protocol
//! messages:
//!
//! > "A virtual node periodically calculates its traffic load,
//! > replication storage capacity and bandwidth for a replica. If it's
//! > overloaded by its traffic and has enough storage and bandwidth
//! > capacity, it will add its replication request and other
//! > information, such as its ID, holder ID and IP address, to the tail
//! > of the received query, and forward it to the next hop."
//!
//! and §II-E adds that the Erlang-B blocking probability "will be
//! piggybacked into a replication request if there's any".
//!
//! This crate implements that control plane:
//!
//! * [`message`] — the protocol messages: per-epoch traffic reports /
//!   replication requests travelling hop-by-hop toward partition
//!   holders, carrying the reporter's traffic values, its best local
//!   server, and that server's blocking probability.
//! * [`network`] — the WAN transport: source-routed messages advance
//!   one datacenter hop per *tick*, with a configurable number of ticks
//!   per epoch (at the paper's 10-second epochs every WAN round trip
//!   completes within one epoch; lowering the tick budget simulates
//!   slower control planes).
//! * [`agent`] — [`agent::DistributedRfhPolicy`]: the RFH decision tree
//!   re-implemented over *node-local knowledge plus received messages*
//!   instead of the omniscient epoch context. When the network delivers
//!   within the epoch, its decisions are **identical** to the
//!   centralized [`rfh_core::RfhPolicy`] — an equivalence the
//!   integration tests assert — and under a starved tick budget its
//!   decisions lag but converge, quantifying what decision latency
//!   costs.

#![warn(missing_docs)]

pub mod agent;
pub mod message;
pub mod network;

pub use agent::{ControlPlaneStats, DistributedRfhPolicy};
pub use message::{Message, MessagePayload};
pub use network::{Network, NetworkFaults};
