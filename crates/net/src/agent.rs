//! The distributed RFH decision agent.
//!
//! [`DistributedRfhPolicy`] runs the same decision tree as
//! `rfh_core::RfhPolicy` (they share `RfhDecisionCore`), but the
//! information the holder decides on arrives the way §II-B says it
//! does: every datacenter that carried traffic for a partition
//! piggybacks a [`MessagePayload::TrafficReport`] — its smoothed
//! arrival and forwarding traffic, its best replica host, and that
//! host's blocking probability (§II-E) — onto the query stream toward
//! the partition holder, hop by hop over the WAN.
//!
//! The holder then evaluates eqs. 12–16 against its *report table*
//! instead of an omniscient traffic grid. Locality discipline:
//!
//! * the holder reads its **own** datacenter's traffic and candidate
//!   live (node-local state);
//! * every **remote** value comes from the last delivered report;
//! * `q̄` (eq. 10) is system-wide knowledge in the paper (it only needs
//!   the global query count) and is read from the shared smoother;
//! * the unserved residual is observed at the holder itself — those are
//!   exactly the queries that reached it unserved.
//!
//! With a tick budget covering the WAN diameter every report lands in
//! the epoch it was generated, and the distributed agent's decisions
//! are **identical** to the centralized agent's (integration-tested).
//! With a starved budget (e.g. one hop per epoch) reports arrive stale,
//! decisions lag the workload, and the cost of a slow control plane
//! becomes measurable.

use crate::message::{Message, MessagePayload};
use crate::network::{Network, NetworkFaults};
use rfh_core::{
    best_candidate_in_dc, rfh::bootstrap_candidate_near, Action, EpochContext, ReplicaManager,
    ReplicationPolicy, RfhDecisionCore, TrafficView,
};
use rfh_obs::{ProfileReport, Profiler, PHASE_DECIDE, PHASE_NETWORK};
use rfh_stats::min_replica_count;
use rfh_types::{DatacenterId, Epoch, PartitionId, ServerId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe handle onto the agent's control-plane
/// counters. Take one with [`DistributedRfhPolicy::stats`] *before*
/// boxing the agent into a simulation; the handle keeps reporting while
/// the simulation runs.
#[derive(Debug, Clone, Default)]
pub struct ControlPlaneStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    reports_sent: AtomicU64,
    control_hops: AtomicU64,
    in_flight: AtomicU64,
}

impl ControlPlaneStats {
    /// Traffic reports emitted so far.
    pub fn reports_sent(&self) -> u64 {
        self.inner.reports_sent.load(Ordering::Relaxed)
    }

    /// WAN hops travelled by the control plane so far.
    pub fn control_hops(&self) -> u64 {
        self.inner.control_hops.load(Ordering::Relaxed)
    }

    /// Reports still in flight after the last epoch.
    pub fn reports_in_flight(&self) -> u64 {
        self.inner.in_flight.load(Ordering::Relaxed)
    }
}

/// A remote datacenter's last delivered report for one partition.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ReportEntry {
    traffic: f64,
    outflow: f64,
    candidate: Option<ServerId>,
    observed_at: Epoch,
}

/// The message-passing RFH agent.
#[derive(Debug, Clone)]
pub struct DistributedRfhPolicy {
    core: RfhDecisionCore,
    use_blocking: bool,
    ticks_per_epoch: usize,
    network: Option<Network>,
    /// `tables[partition][reporter dc] → last delivered report`.
    tables: Vec<HashMap<u32, ReportEntry>>,
    /// Gray-failure profile for the control plane; installed on the
    /// network as soon as it exists.
    fault_profile: Option<NetworkFaults>,
    reports_sent: u64,
    stats: ControlPlaneStats,
    /// Times the control-plane tick vs the decision pass (disabled by
    /// default; see [`DistributedRfhPolicy::enable_profiling`]).
    profiler: Profiler,
}

impl DistributedRfhPolicy {
    /// Agent whose control plane advances `ticks_per_epoch` WAN hops per
    /// epoch. A budget of at least the WAN diameter (5 for the paper
    /// topology) reproduces the centralized agent exactly; 1 models a
    /// control plane an order of magnitude slower than the epochs.
    pub fn new(ticks_per_epoch: usize) -> Self {
        DistributedRfhPolicy {
            core: RfhDecisionCore::new(5),
            use_blocking: true,
            ticks_per_epoch,
            network: None,
            tables: Vec::new(),
            fault_profile: None,
            reports_sent: 0,
            stats: ControlPlaneStats::default(),
            profiler: Profiler::new(false),
        }
    }

    /// Turn per-phase timing of the agent on or off: the WAN tick
    /// (report emission, delivery, absorption) vs the decision pass.
    pub fn enable_profiling(&mut self, enabled: bool) {
        self.profiler = Profiler::new(enabled);
    }

    /// Subject the control plane to gray failures: per-hop report loss
    /// and a TTL after which a stalled report times out instead of
    /// counting as delivered. `None` restores a perfect transport.
    pub fn set_network_faults(&mut self, profile: Option<NetworkFaults>) {
        self.fault_profile = profile.clone();
        if let Some(network) = self.network.as_mut() {
            network.set_faults(profile);
        }
    }

    /// The accumulated phase timings (empty unless profiling is on).
    pub fn profile(&self) -> ProfileReport {
        self.profiler.report()
    }

    /// Export the agent's control-plane metrics (report volume plus the
    /// underlying network's counters) into a registry.
    pub fn collect_metrics(&self, registry: &mut rfh_obs::MetricsRegistry) {
        registry.counter_total("net.reports_sent", self.reports_sent);
        if let Some(network) = &self.network {
            network.collect_metrics(registry);
        }
    }

    /// A cloneable handle onto the control-plane counters; keeps
    /// working after the agent is boxed into a simulation.
    pub fn stats(&self) -> ControlPlaneStats {
        self.stats.clone()
    }

    /// Total traffic reports emitted so far (control-plane volume).
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// Total WAN hops travelled by the control plane so far.
    pub fn control_hops(&self) -> u64 {
        self.network.as_ref().map(|n| n.hops_travelled()).unwrap_or(0)
    }

    /// Reports still in flight (non-zero only under starved budgets).
    pub fn reports_in_flight(&self) -> usize {
        self.network.as_ref().map(|n| n.in_flight()).unwrap_or(0)
    }

    fn ensure_shapes(&mut self, partitions: u32, dcs: usize) {
        if self.network.is_none() {
            let mut network = Network::new(dcs, self.ticks_per_epoch);
            network.set_faults(self.fault_profile.clone());
            self.network = Some(network);
        }
        if self.tables.len() < partitions as usize {
            self.tables.resize_with(partitions as usize, HashMap::new);
        }
    }

    /// Reporter side: every datacenter that has (smoothed) traffic or
    /// forwarding traffic for a partition piggybacks a report toward the
    /// partition holder.
    fn emit_reports(&mut self, ctx: &EpochContext<'_>, manager: &ReplicaManager) {
        let dcs = ctx.topo.datacenters().len() as u32;
        let network = self.network.as_mut().expect("shapes ensured");
        for p_idx in 0..manager.partitions() {
            let p = PartitionId::new(p_idx);
            let holder_dc = ctx.topo.servers()[manager.holder(p).index()].datacenter;
            for dc_idx in 0..dcs {
                let dc = DatacenterId::new(dc_idx);
                if dc == holder_dc {
                    continue; // holder reads its own state live
                }
                let traffic = ctx.smoother.traffic(dc, p);
                let outflow = ctx.smoother.outflow(dc, p);
                if traffic <= 0.0 && outflow <= 0.0 {
                    continue; // nothing to piggyback on
                }
                // The reporter evaluates its own datacenter's capacity —
                // node-local knowledge (§II-B: "calculates its …
                // replication storage capacity"; §II-E: BP piggybacked).
                let candidate =
                    best_candidate_in_dc(ctx.topo, manager, ctx.blocking, self.use_blocking, p, dc);
                let blocking_probability =
                    candidate.map(|s| ctx.blocking[s.index()]).unwrap_or(1.0);
                let Some(route) = ctx.topo.path(dc, holder_dc) else {
                    continue; // partitioned WAN: the report is lost
                };
                self.reports_sent += 1;
                network.send(Message::new(
                    route,
                    MessagePayload::TrafficReport {
                        partition: p,
                        reporter: dc,
                        traffic,
                        outflow,
                        candidate,
                        blocking_probability,
                        observed_at: ctx.epoch,
                    },
                ));
            }
        }
    }

    /// Holder side: fold every delivered report into the tables.
    fn absorb_deliveries(&mut self, dcs: usize) {
        let network = self.network.as_mut().expect("shapes ensured");
        for dc_idx in 0..dcs {
            for message in network.drain_inbox(DatacenterId::new(dc_idx as u32)) {
                let MessagePayload::TrafficReport {
                    partition,
                    reporter,
                    traffic,
                    outflow,
                    candidate,
                    observed_at,
                    ..
                } = message.payload;
                let table = &mut self.tables[partition.index()];
                let stale = table.get(&reporter.0).is_some_and(|e| e.observed_at > observed_at);
                if !stale {
                    table.insert(
                        reporter.0,
                        ReportEntry { traffic, outflow, candidate, observed_at },
                    );
                }
            }
        }
    }
}

/// The holder's view: own datacenter live, remote datacenters from the
/// report table.
struct ReportView<'a> {
    ctx: &'a EpochContext<'a>,
    manager: &'a ReplicaManager,
    tables: &'a [HashMap<u32, ReportEntry>],
    use_blocking: bool,
}

impl ReportView<'_> {
    fn holder_dc(&self, p: PartitionId) -> DatacenterId {
        self.ctx.topo.servers()[self.manager.holder(p).index()].datacenter
    }

    fn entry(&self, p: PartitionId, dc: DatacenterId) -> Option<&ReportEntry> {
        self.tables[p.index()].get(&dc.0)
    }
}

impl TrafficView for ReportView<'_> {
    fn datacenters(&self) -> u32 {
        self.ctx.topo.datacenters().len() as u32
    }
    fn q_avg(&self, p: PartitionId) -> f64 {
        self.ctx.smoother.q_avg(p)
    }
    fn traffic(&self, dc: DatacenterId, p: PartitionId) -> f64 {
        if dc == self.holder_dc(p) {
            self.ctx.smoother.traffic(dc, p)
        } else {
            self.entry(p, dc).map(|e| e.traffic).unwrap_or(0.0)
        }
    }
    fn outflow(&self, dc: DatacenterId, p: PartitionId) -> f64 {
        if dc == self.holder_dc(p) {
            self.ctx.smoother.outflow(dc, p)
        } else {
            self.entry(p, dc).map(|e| e.outflow).unwrap_or(0.0)
        }
    }
    fn unserved(&self, p: PartitionId) -> f64 {
        self.ctx.accounts.unserved[p.index()]
    }
    fn candidate(&self, p: PartitionId, dc: DatacenterId) -> Option<ServerId> {
        if dc == self.holder_dc(p) {
            best_candidate_in_dc(
                self.ctx.topo,
                self.manager,
                self.ctx.blocking,
                self.use_blocking,
                p,
                dc,
            )
        } else {
            // Trust the reporter's piggybacked candidate, but re-check
            // acceptance against the holder's current replica map so a
            // same-epoch earlier action cannot double-place.
            self.entry(p, dc).and_then(|e| e.candidate).filter(|&s| self.manager.can_accept(p, s))
        }
    }
    fn bootstrap_candidate(&self, p: PartitionId, holder_dc: DatacenterId) -> Option<ServerId> {
        // A one-hop capacity probe of the holder's WAN neighbours —
        // node-local routing knowledge plus a direct exchange with
        // adjacent datacenters (sub-epoch round trip).
        bootstrap_candidate_near(
            self.ctx.topo,
            self.manager,
            self.ctx.blocking,
            self.use_blocking,
            p,
            holder_dc,
        )
    }
    fn blocking_of(&self, s: ServerId) -> f64 {
        // Trace annotation only, never a decision input — so reading the
        // simulator's blocking vector does not break locality.
        self.ctx.blocking.get(s.index()).copied().unwrap_or(f64::NAN)
    }
}

impl ReplicationPolicy for DistributedRfhPolicy {
    fn name(&self) -> &'static str {
        "RFH-dist"
    }

    fn decide(&mut self, ctx: &EpochContext<'_>, manager: &ReplicaManager) -> Vec<Action> {
        let dcs = ctx.topo.datacenters().len();
        self.ensure_shapes(manager.partitions(), dcs);

        let net_t0 = self.profiler.start();
        // 1. Reporters piggyback this epoch's observations.
        self.emit_reports(ctx, manager);
        // 2. The WAN carries them for this epoch's tick budget.
        self.network.as_mut().expect("shapes ensured").run_epoch();
        // 3. Holders fold delivered reports into their tables.
        self.absorb_deliveries(dcs);
        self.profiler.stop(PHASE_NETWORK, net_t0);
        // Publish control-plane counters to any stats handles.
        let net = self.network.as_ref().expect("shapes ensured");
        self.stats.inner.reports_sent.store(self.reports_sent, Ordering::Relaxed);
        self.stats.inner.control_hops.store(net.hops_travelled(), Ordering::Relaxed);
        self.stats.inner.in_flight.store(net.in_flight() as u64, Ordering::Relaxed);
        // 4. The shared decision tree runs over the report view.
        let r_min =
            min_replica_count(ctx.config.failure_rate, ctx.config.min_availability) as usize;
        let view =
            ReportView { ctx, manager, tables: &self.tables, use_blocking: self.use_blocking };
        let decide_t0 = self.profiler.start();
        let actions = self.core.decide_all(
            ctx.epoch,
            &ctx.config.thresholds,
            r_min,
            ctx.topo,
            manager,
            ctx.view,
            &view,
            ctx.recorder,
            "RFH-dist",
        );
        self.profiler.stop(PHASE_DECIDE, decide_t0);
        actions
    }

    fn set_message_loss(&mut self, probability: f64) {
        // TTL of two epochs' worth of ticks: a report that lossy links
        // stalled for that long is stale anyway.
        let ttl = (self.ticks_per_epoch as u32).saturating_mul(2).max(1);
        let profile = (probability > 0.0).then(|| NetworkFaults {
            drop_probability: probability,
            ttl_ticks: Some(ttl),
            // Derived, not random: the same loss level always corrupts
            // the transport the same way, keeping runs replayable.
            seed: probability.to_bits(),
        });
        self.set_network_faults(profile);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counters_start_empty() {
        let agent = DistributedRfhPolicy::new(8);
        assert_eq!(agent.reports_sent(), 0);
        assert_eq!(agent.control_hops(), 0);
        assert_eq!(agent.reports_in_flight(), 0);
        assert_eq!(agent.name(), "RFH-dist");
    }
}
