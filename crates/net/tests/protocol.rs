//! Protocol-level integration: drive the distributed agent epoch by
//! epoch against a hand-built cluster and observe the control plane.

use rfh_core::{server_blocking_probabilities, EpochContext, ReplicaManager, ReplicationPolicy};
use rfh_net::{DistributedRfhPolicy, NetworkFaults};
use rfh_ring::ConsistentHashRing;
use rfh_topology::{paper_topology, Topology};
use rfh_traffic::{compute_traffic, TrafficSmoother};
use rfh_types::{DatacenterId, Epoch, PartitionId, SimConfig};
use rfh_workload::QueryLoad;

struct Cluster {
    cfg: SimConfig,
    topo: Topology,
    manager: ReplicaManager,
    smoother: TrafficSmoother,
    epoch: u64,
}

impl Cluster {
    fn new(partitions: u32) -> Self {
        let cfg = SimConfig { partitions, ..SimConfig::default() };
        let topo = paper_topology(0.0, 1).unwrap();
        let mut ring = ConsistentHashRing::new(32);
        for s in topo.servers() {
            ring.join(s.id);
        }
        let holders = (0..partitions).map(|p| ring.primary(PartitionId::new(p)).unwrap()).collect();
        let manager = ReplicaManager::new(&cfg, topo.server_count(), holders).unwrap();
        let smoother = TrafficSmoother::new(partitions, 10, cfg.thresholds.alpha);
        Cluster { cfg, topo, manager, smoother, epoch: 0 }
    }

    /// One epoch: given a load, run traffic + policy, apply actions.
    fn step(&mut self, policy: &mut DistributedRfhPolicy, load: QueryLoad) {
        self.manager.begin_epoch();
        let view = self.manager.placement_view(&self.topo, self.cfg.replica_capacity_mean);
        let accounts = compute_traffic(&self.topo, &load, &view);
        self.smoother.update(&load, &accounts);
        let blocking =
            server_blocking_probabilities(&self.topo, &accounts, self.cfg.replica_capacity_mean);
        let ctx = EpochContext {
            epoch: Epoch(self.epoch),
            topo: &self.topo,
            load: &load,
            accounts: &accounts,
            smoother: &self.smoother,
            blocking: &blocking,
            view: &view,
            config: &self.cfg,
            recorder: &rfh_obs::NullRecorder,
            active: None,
        };
        let actions = policy.decide(&ctx, &self.manager);
        for a in actions {
            let _ = self.manager.apply(&self.topo, a);
        }
        self.epoch += 1;
    }

    fn load_from(&self, p: u32, dc: u32, n: u32) -> QueryLoad {
        let mut l = QueryLoad::zeros(self.cfg.partitions, 10);
        l.add(PartitionId::new(p), DatacenterId::new(dc), n);
        l
    }
}

#[test]
fn reports_flow_toward_holders_and_counters_track() {
    let mut cluster = Cluster::new(4);
    let mut agent = DistributedRfhPolicy::new(8);
    // Demand from DC 8 for partition 0 lights up the I→…→holder chain.
    for _ in 0..5 {
        let load = cluster.load_from(0, 8, 40);
        cluster.step(&mut agent, load);
    }
    assert!(agent.reports_sent() > 0, "traffic must generate reports");
    assert!(agent.control_hops() > 0, "reports travel real WAN hops");
    assert_eq!(
        agent.reports_in_flight(),
        0,
        "a full tick budget delivers everything within the epoch"
    );
    // The agent actually replicated toward the traffic.
    assert!(
        cluster.manager.replica_count(PartitionId::new(0)) >= 2,
        "availability floor + hub relief acted on delivered reports"
    );
}

#[test]
fn starved_budget_leaves_reports_in_flight() {
    let mut cluster = Cluster::new(4);
    let mut agent = DistributedRfhPolicy::new(1);
    // Demand from every datacenter: whatever DC holds a partition, some
    // reporter is ≥ 2 WAN hops away (the topology's degree is well below
    // 9), so with one tick per epoch reports must still be flying after
    // the step.
    let mut load = QueryLoad::zeros(4, 10);
    for p in 0..4 {
        for dc in 0..10 {
            load.add(PartitionId::new(p), DatacenterId::new(dc), 10);
        }
    }
    cluster.step(&mut agent, load);
    assert!(
        agent.reports_in_flight() > 0,
        "1 tick/epoch cannot deliver multi-hop reports immediately"
    );
}

#[test]
fn lossy_control_plane_degrades_but_still_replicates() {
    // A heavily lossy control plane (40% per-hop drop, tight TTL) must
    // not stop the agent: enough reports eventually land for the
    // availability floor to act, and losses are properly accounted as
    // drops/timeouts rather than deliveries.
    let mut cluster = Cluster::new(4);
    let mut agent = DistributedRfhPolicy::new(8);
    agent.set_network_faults(Some(NetworkFaults {
        drop_probability: 0.4,
        ttl_ticks: Some(6),
        seed: 11,
    }));
    for _ in 0..10 {
        let load = cluster.load_from(0, 8, 40);
        cluster.step(&mut agent, load);
    }
    assert!(agent.reports_sent() > 0);
    let mut reg = rfh_obs::MetricsRegistry::new();
    agent.collect_metrics(&mut reg);
    let dropped = match reg.get("net.dropped") {
        Some(rfh_obs::Metric::Counter(n)) => *n,
        other => panic!("expected drop counter, got {other:?}"),
    };
    assert!(dropped > 0, "a 40% loss rate over 10 epochs must drop reports");
    assert!(
        cluster.manager.replica_count(PartitionId::new(0)) >= 2,
        "replication must still converge under gray failure"
    );
}

#[test]
fn quiet_cluster_sends_nothing() {
    let mut cluster = Cluster::new(4);
    let mut agent = DistributedRfhPolicy::new(8);
    let quiet = QueryLoad::zeros(4, 10);
    cluster.step(&mut agent, quiet);
    assert_eq!(agent.reports_sent(), 0, "no traffic, nothing to piggyback on");
}

#[test]
fn report_volume_scales_with_active_datacenters() {
    let mut cluster = Cluster::new(4);
    let mut agent = DistributedRfhPolicy::new(8);
    // One requester DC: only the DCs on that one path carry traffic.
    let load = cluster.load_from(0, 8, 40);
    cluster.step(&mut agent, load);
    let narrow = agent.reports_sent();
    // All ten DCs request all four partitions: far more reporters.
    let mut broad_cluster = Cluster::new(4);
    let mut broad_agent = DistributedRfhPolicy::new(8);
    let mut load = QueryLoad::zeros(4, 10);
    for p in 0..4 {
        for dc in 0..10 {
            load.add(PartitionId::new(p), DatacenterId::new(dc), 10);
        }
    }
    broad_cluster.step(&mut broad_agent, load);
    assert!(
        broad_agent.reports_sent() > narrow * 3,
        "broad demand must multiply control traffic: {} vs {narrow}",
        broad_agent.reports_sent()
    );
}
