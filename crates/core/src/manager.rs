//! The replica manager: the authoritative replica map plus the resource
//! limits and cost model every policy operates under.
//!
//! Invariants maintained:
//! * every partition has at least one replica; the first entry of its
//!   replica set is the primary holder;
//! * at most one replica of a partition per server;
//! * a server's storage occupancy never exceeds `φ` of its capacity
//!   (eq. 19) — replication and migration *into* a full server are
//!   rejected;
//! * per-epoch outgoing transfers per server are bounded by the
//!   replication / migration bandwidths of Table I.
//!
//! Costs follow eq. (1): `c = d·f·s / b` with `d` the great-circle
//! distance between source and destination sites (floored at 1 km so
//! intra-datacenter copies cost a little, not nothing), `f` the failure
//! rate, `s` the partition size and `b` the relevant bandwidth.

use crate::policy::Action;
use rfh_obs::Recorder;
use rfh_topology::Topology;
use rfh_traffic::PlacementView;
use rfh_types::{Bytes, PartitionId, Result, RfhError, ServerId, SimConfig};

/// Minimum distance used in the cost model (km): an intra-datacenter
/// copy still crosses a switch fabric.
const MIN_COST_DISTANCE_KM: f64 = 1.0;

/// What a dead-server prune pass found and did.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PruneOutcome {
    /// Every replica that was on a dead server, as `(partition, server)`.
    pub lost_replicas: Vec<(PartitionId, ServerId)>,
    /// Partitions that lost *every* replica and were restored from cold
    /// archive onto the fallback server — the data-loss events a
    /// replication scheme exists to prevent.
    pub restored_partitions: Vec<PartitionId>,
    /// Partitions that lost every replica while *no* fallback server was
    /// available (the fallback closure returned `None`, e.g. the whole
    /// cluster is down). They stay pinned to their dead primary, serve
    /// nothing, and await [`ReplicaManager::restore_partition`] once
    /// capacity returns.
    pub unrestored_partitions: Vec<PartitionId>,
}

/// The outcome of one successfully executed action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedAction {
    /// The action that was executed.
    pub action: Action,
    /// Cost per eq. (1); zero for suicides.
    pub cost: f64,
    /// Source→destination distance in km (0 for suicides).
    pub distance_km: f64,
}

/// Authoritative replica map + resource accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaManager {
    /// Replica servers per partition; element 0 is the primary holder.
    replica_sets: Vec<Vec<ServerId>>,
    /// Storage used per server.
    storage_used: Vec<Bytes>,
    /// Outgoing replication bytes per server, this epoch.
    repl_out: Vec<u64>,
    /// Outgoing migration bytes per server, this epoch.
    migr_out: Vec<u64>,
    partition_size: Bytes,
    max_storage: Bytes,
    phi: f64,
    repl_bw: u64,
    migr_bw: u64,
    /// WAN bandwidth-cut factors in (0, 1]: effective transfer budgets
    /// are `bw × factor`. 1.0 (the default) is a healthy backbone.
    repl_bw_factor: f64,
    migr_bw_factor: f64,
    /// eq. (1)'s `f`, from Table I.
    failure_rate: f64,
    /// Cached `Σ replica_sets[p].len()` so the per-epoch
    /// [`total_replicas`](Self::total_replicas) read is O(1) instead of
    /// O(partitions) — at a million partitions the sum itself would
    /// dominate a sparse epoch.
    total: usize,
}

impl ReplicaManager {
    /// Create a manager with every partition placed on its initial
    /// holder (one replica each).
    ///
    /// # Errors
    /// Fails if `initial_holders` length mismatches `cfg.partitions` or
    /// initial placement already violates storage limits.
    pub fn new(cfg: &SimConfig, servers: usize, initial_holders: Vec<ServerId>) -> Result<Self> {
        if initial_holders.len() != cfg.partitions as usize {
            return Err(RfhError::InvalidConfig {
                parameter: "partitions",
                reason: format!(
                    "{} initial holders for {} partitions",
                    initial_holders.len(),
                    cfg.partitions
                ),
            });
        }
        let mut m = ReplicaManager {
            replica_sets: initial_holders.iter().map(|&h| vec![h]).collect(),
            storage_used: vec![Bytes::ZERO; servers],
            repl_out: vec![0; servers],
            migr_out: vec![0; servers],
            partition_size: cfg.partition_size,
            max_storage: cfg.max_server_storage,
            phi: cfg.thresholds.phi,
            repl_bw: cfg.replication_bandwidth.0,
            migr_bw: cfg.migration_bandwidth.0,
            repl_bw_factor: 1.0,
            migr_bw_factor: 1.0,
            failure_rate: cfg.failure_rate,
            total: initial_holders.len(),
        };
        for &h in &initial_holders {
            if h.index() >= servers {
                return Err(RfhError::UnknownEntity { kind: "server", id: h.0 as u64 });
            }
            m.storage_used[h.index()] += cfg.partition_size;
        }
        for (s, &used) in m.storage_used.iter().enumerate() {
            if !m.fits(used) {
                return Err(RfhError::Simulation(format!(
                    "initial placement overfills server {s}"
                )));
            }
        }
        Ok(m)
    }

    fn fits(&self, used_after: Bytes) -> bool {
        used_after.fraction_of(self.max_storage) <= self.phi
    }

    /// Reset the per-epoch transfer budgets. Call at every epoch start.
    pub fn begin_epoch(&mut self) {
        self.repl_out.fill(0);
        self.migr_out.fill(0);
    }

    /// Apply a WAN bandwidth cut: scale the per-epoch replication and
    /// migration budgets by factors in (0, 1]. `(1.0, 1.0)` restores
    /// the healthy backbone. Values outside (0, 1] are clamped.
    pub fn set_bandwidth_factors(&mut self, replication: f64, migration: f64) {
        let clamp = |f: f64| if f.is_finite() { f.clamp(f64::MIN_POSITIVE, 1.0) } else { 1.0 };
        self.repl_bw_factor = clamp(replication);
        self.migr_bw_factor = clamp(migration);
    }

    /// The current `(replication, migration)` bandwidth-cut factors set
    /// by [`set_bandwidth_factors`](Self::set_bandwidth_factors) —
    /// `(1.0, 1.0)` on a healthy backbone. The transfer planner derives
    /// its per-link budgets from these.
    pub fn bandwidth_factors(&self) -> (f64, f64) {
        (self.repl_bw_factor, self.migr_bw_factor)
    }

    /// Effective per-epoch replication budget under any bandwidth cut.
    fn effective_repl_bw(&self) -> u64 {
        (self.repl_bw as f64 * self.repl_bw_factor) as u64
    }

    /// Effective per-epoch migration budget under any bandwidth cut.
    fn effective_migr_bw(&self) -> u64 {
        (self.migr_bw as f64 * self.migr_bw_factor) as u64
    }

    /// Number of partitions managed.
    pub fn partitions(&self) -> u32 {
        self.replica_sets.len() as u32
    }

    /// Number of servers known.
    pub fn servers(&self) -> usize {
        self.storage_used.len()
    }

    /// Grow the server tables after a node join.
    pub fn add_server_slot(&mut self) {
        self.storage_used.push(Bytes::ZERO);
        self.repl_out.push(0);
        self.migr_out.push(0);
    }

    /// The primary holder of a partition.
    pub fn holder(&self, p: PartitionId) -> ServerId {
        self.replica_sets[p.index()][0]
    }

    /// All replica servers of a partition (holder first).
    pub fn replicas(&self, p: PartitionId) -> &[ServerId] {
        &self.replica_sets[p.index()]
    }

    /// Replica count of a partition.
    pub fn replica_count(&self, p: PartitionId) -> usize {
        self.replica_sets[p.index()].len()
    }

    /// Total replicas across all partitions (the Fig. 4 series). O(1):
    /// maintained incrementally by every mutation.
    pub fn total_replicas(&self) -> usize {
        debug_assert_eq!(self.total, self.replica_sets.iter().map(|s| s.len()).sum::<usize>());
        self.total
    }

    /// Whether `server` hosts a replica of `p`.
    pub fn hosts(&self, p: PartitionId, server: ServerId) -> bool {
        self.replica_sets[p.index()].contains(&server)
    }

    /// Storage occupancy fraction of a server (the `S_i` of eq. 19).
    pub fn storage_fraction(&self, server: ServerId) -> f64 {
        self.storage_used[server.index()].fraction_of(self.max_storage)
    }

    /// Whether a server can accept one more replica under eq. 19 and has
    /// a free replica slot for the partition.
    pub fn can_accept(&self, p: PartitionId, server: ServerId) -> bool {
        !self.hosts(p, server)
            && (self.storage_used[server.index()] + self.partition_size)
                .fraction_of(self.max_storage)
                <= self.phi
    }

    /// Execute an action.
    ///
    /// # Errors
    /// Rejects actions that would violate an invariant: unknown servers,
    /// duplicate replicas, storage over `φ`, exhausted transfer budget,
    /// suicide of the last replica, or migration of a non-existent
    /// replica. The caller decides whether a rejection is a bug (tests)
    /// or simply a decision that could not be honoured this epoch
    /// (simulation, e.g. bandwidth exhausted).
    pub fn apply(&mut self, topo: &Topology, action: Action) -> Result<AppliedAction> {
        match action {
            Action::Replicate { partition, target } => {
                self.check_server(target)?;
                if self.hosts(partition, target) {
                    return Err(RfhError::Simulation(format!(
                        "{partition} already has a replica on {target}"
                    )));
                }
                if !topo.servers()[target.index()].alive {
                    return Err(RfhError::Simulation(format!("{target} is not alive")));
                }
                if !self.can_accept(partition, target) {
                    return Err(RfhError::Simulation(format!("{target} storage would exceed φ")));
                }
                let source = self.holder(partition);
                if self.repl_out[source.index()] + self.partition_size.as_u64()
                    > self.effective_repl_bw()
                {
                    return Err(RfhError::Simulation(format!(
                        "replication bandwidth of {source} exhausted this epoch"
                    )));
                }
                self.repl_out[source.index()] += self.partition_size.as_u64();
                self.storage_used[target.index()] += self.partition_size;
                self.replica_sets[partition.index()].push(target);
                self.total += 1;
                let distance_km =
                    topo.server_distance_km(source, target)?.max(MIN_COST_DISTANCE_KM);
                Ok(AppliedAction {
                    action,
                    cost: self.transfer_cost(distance_km, self.repl_bw, topo),
                    distance_km,
                })
            }
            Action::Migrate { partition, from, to } => {
                self.check_server(from)?;
                self.check_server(to)?;
                if !self.hosts(partition, from) {
                    return Err(RfhError::Simulation(format!(
                        "{partition} has no replica on {from} to migrate"
                    )));
                }
                if self.hosts(partition, to) {
                    return Err(RfhError::Simulation(format!(
                        "{partition} already has a replica on {to}"
                    )));
                }
                if !topo.servers()[to.index()].alive {
                    return Err(RfhError::Simulation(format!("{to} is not alive")));
                }
                if !self.can_accept(partition, to) {
                    return Err(RfhError::Simulation(format!("{to} storage would exceed φ")));
                }
                if self.migr_out[from.index()] + self.partition_size.as_u64()
                    > self.effective_migr_bw()
                {
                    return Err(RfhError::Simulation(format!(
                        "migration bandwidth of {from} exhausted this epoch"
                    )));
                }
                self.migr_out[from.index()] += self.partition_size.as_u64();
                self.storage_used[from.index()] -= self.partition_size;
                self.storage_used[to.index()] += self.partition_size;
                let set = &mut self.replica_sets[partition.index()];
                let idx = set.iter().position(|&s| s == from).expect("checked above");
                set[idx] = to;
                let distance_km = topo.server_distance_km(from, to)?.max(MIN_COST_DISTANCE_KM);
                Ok(AppliedAction {
                    action,
                    cost: self.transfer_cost(distance_km, self.migr_bw, topo),
                    distance_km,
                })
            }
            Action::Suicide { partition, server } => {
                self.check_server(server)?;
                let set = &mut self.replica_sets[partition.index()];
                if set.len() <= 1 {
                    return Err(RfhError::Simulation(format!(
                        "refusing to remove the last replica of {partition}"
                    )));
                }
                let Some(idx) = set.iter().position(|&s| s == server) else {
                    return Err(RfhError::Simulation(format!(
                        "{partition} has no replica on {server}"
                    )));
                };
                if idx == 0 {
                    return Err(RfhError::Simulation(format!(
                        "the primary holder of {partition} cannot suicide"
                    )));
                }
                set.remove(idx);
                self.total -= 1;
                self.storage_used[server.index()] -= self.partition_size;
                Ok(AppliedAction { action, cost: 0.0, distance_km: 0.0 })
            }
        }
    }

    /// [`ReplicaManager::apply`], mirroring the executor's verdict to a
    /// trace recorder: the pending decision event for the partition gets
    /// its `applied` flag and eq. (1) cost filled in (0 on rejection).
    /// `policy` must be the label the deciding policy stamped into its
    /// events ([`crate::ReplicationPolicy::name`]) — the recorder may be
    /// shared across concurrently running policies and matches outcomes
    /// by (policy, partition). The recorder observes only — the action's
    /// outcome is identical to a plain `apply`.
    pub fn apply_recorded(
        &mut self,
        topo: &Topology,
        action: Action,
        recorder: &dyn Recorder,
        policy: &'static str,
    ) -> Result<AppliedAction> {
        let outcome = self.apply(topo, action);
        if recorder.enabled() {
            let partition = match action {
                Action::Replicate { partition, .. }
                | Action::Migrate { partition, .. }
                | Action::Suicide { partition, .. } => partition,
            };
            match &outcome {
                Ok(applied) => recorder.outcome(policy, partition.0, true, applied.cost),
                Err(_) => recorder.outcome(policy, partition.0, false, 0.0),
            }
        }
        outcome
    }

    fn check_server(&self, s: ServerId) -> Result<()> {
        if s.index() >= self.storage_used.len() {
            return Err(RfhError::UnknownEntity { kind: "server", id: s.0 as u64 });
        }
        Ok(())
    }

    /// eq. (1): `c = d·f·s/b`. The failure rate comes from the topology
    /// config indirectly; it is passed down at construction via the cost
    /// closure — here we read it from the simulation config snapshot the
    /// manager was built with (same value for all servers, per Table I).
    fn transfer_cost(&self, distance_km: f64, bandwidth: u64, _topo: &Topology) -> f64 {
        // f is injected via `cost_failure_rate`; see `set_failure_rate`.
        distance_km * self.failure_rate * self.partition_size.as_u64() as f64 / bandwidth as f64
    }

    /// Remove replicas hosted on dead servers and promote primaries.
    ///
    /// If a partition loses *all* replicas, it is restored on
    /// `fallback(p)` (modelling recovery from cold archive) and recorded
    /// as a data-loss event in the outcome. When the fallback closure
    /// returns `None` (no live server anywhere), the partition stays
    /// pinned to its dead primary — serving nothing — and is reported in
    /// [`PruneOutcome::unrestored_partitions`] so the caller can retry
    /// the restore once servers recover.
    pub fn prune_dead(
        &mut self,
        topo: &Topology,
        mut fallback: impl FnMut(PartitionId) -> Option<ServerId>,
    ) -> PruneOutcome {
        let mut outcome = PruneOutcome::default();
        for p_idx in 0..self.replica_sets.len() {
            let p = PartitionId::new(p_idx as u32);
            let set = &mut self.replica_sets[p_idx];
            let primary = set[0];
            let mut i = 0;
            while i < set.len() {
                let s = set[i];
                if !topo.servers()[s.index()].alive {
                    outcome.lost_replicas.push((p, s));
                    self.storage_used[s.index()] -= self.partition_size;
                    set.remove(i);
                    self.total -= 1;
                } else {
                    i += 1;
                }
            }
            if set.is_empty() {
                match fallback(p) {
                    Some(fb) => {
                        debug_assert!(topo.servers()[fb.index()].alive, "fallback must be alive");
                        set.push(fb);
                        self.total += 1;
                        self.storage_used[fb.index()] += self.partition_size;
                        outcome.restored_partitions.push(p);
                    }
                    None => {
                        set.push(primary);
                        self.total += 1;
                        self.storage_used[primary.index()] += self.partition_size;
                        outcome.unrestored_partitions.push(p);
                    }
                }
            }
        }
        outcome
    }

    /// Restore a partition whose every replica is on a dead server
    /// (the deferred branch of [`ReplicaManager::prune_dead`]): drop the
    /// dead pins and place a single fresh copy from cold archive on
    /// `to`. Counts as a data-loss restore for the caller's accounting.
    ///
    /// # Errors
    /// Fails when `to` is unknown or dead, when some replica of the
    /// partition is still alive (nothing to restore), or when `to`
    /// cannot take the copy under the storage cap.
    pub fn restore_partition(
        &mut self,
        topo: &Topology,
        p: PartitionId,
        to: ServerId,
    ) -> Result<()> {
        self.check_server(to)?;
        if !topo.servers()[to.index()].alive {
            return Err(RfhError::Simulation(format!("{to} is not alive")));
        }
        if self.replica_sets[p.index()].iter().any(|&s| topo.servers()[s.index()].alive) {
            return Err(RfhError::Simulation(format!("{p} still has a live replica")));
        }
        if !self.fits(self.storage_used[to.index()] + self.partition_size) {
            return Err(RfhError::Simulation(format!("{to} storage would exceed φ")));
        }
        let dead: Vec<ServerId> = self.replica_sets[p.index()].drain(..).collect();
        self.total -= dead.len();
        for s in dead {
            self.storage_used[s.index()] -= self.partition_size;
        }
        self.replica_sets[p.index()].push(to);
        self.total += 1;
        self.storage_used[to.index()] += self.partition_size;
        Ok(())
    }

    /// Render the placement view for the traffic pass: each replica of a
    /// partition on a server offers `capacity_mean × capacity_factor`
    /// queries/epoch.
    ///
    /// One-shot convenience around [`render_view`](Self::render_view);
    /// epoch loops keep a view alive and re-render only what changed
    /// (see [`render_partition`](Self::render_partition)).
    pub fn placement_view(&self, topo: &Topology, capacity_mean: f64) -> PlacementView {
        let mut view = PlacementView::new(0, 0, Vec::new());
        self.render_view(topo, capacity_mean, &mut view);
        view
    }

    /// Rebuild `view` in place from the full replica map, reusing its
    /// allocations. Use after shape changes (server join, prune) or to
    /// initialise a fresh view.
    pub fn render_view(&self, topo: &Topology, capacity_mean: f64, view: &mut PlacementView) {
        view.reset(self.replica_sets.len() as u32, self.storage_used.len() as u32);
        for p_idx in 0..self.replica_sets.len() {
            self.render_partition(topo, capacity_mean, PartitionId::new(p_idx as u32), view);
        }
    }

    /// Re-render one partition's row of `view` in place — the delta
    /// update for a partition whose replica set (or holder) changed.
    /// Produces exactly what a full rebuild would for that row.
    pub fn render_partition(
        &self,
        topo: &Topology,
        capacity_mean: f64,
        p: PartitionId,
        view: &mut PlacementView,
    ) {
        let set = &self.replica_sets[p.index()];
        view.clear_partition(p);
        view.set_holder(p, set[0]);
        for &server in set {
            let factor = topo.servers()[server.index()].capacity_factor;
            view.add_capacity(p, server, capacity_mean * factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_topology::{Topology, TopologyBuilder};
    use rfh_types::{Bandwidth, Continent, GeoPoint};

    /// Two datacenters, two servers each (ids 0,1 in A; 2,3 in B).
    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let a = b
            .datacenter("A", Continent::NorthAmerica, "USA", "A1", GeoPoint::new(0.0, 0.0), 1, 1, 2)
            .unwrap();
        let c = b
            .datacenter("B", Continent::Asia, "CHN", "B1", GeoPoint::new(0.0, 90.0), 1, 1, 2)
            .unwrap();
        b.link(a, c, 50.0).unwrap();
        b.build(0.0, 0).unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig { partitions: 2, ..SimConfig::default() }
    }

    fn p(i: u32) -> PartitionId {
        PartitionId::new(i)
    }
    fn s(i: u32) -> ServerId {
        ServerId::new(i)
    }

    fn manager() -> ReplicaManager {
        ReplicaManager::new(&cfg(), 4, vec![s(0), s(2)]).unwrap()
    }

    #[test]
    fn initial_state() {
        let m = manager();
        assert_eq!(m.partitions(), 2);
        assert_eq!(m.servers(), 4);
        assert_eq!(m.holder(p(0)), s(0));
        assert_eq!(m.holder(p(1)), s(2));
        assert_eq!(m.total_replicas(), 2);
        assert!(m.hosts(p(0), s(0)));
        assert!(!m.hosts(p(0), s(1)));
        assert!(m.storage_fraction(s(0)) > 0.0);
        assert_eq!(m.storage_fraction(s(1)), 0.0);
    }

    #[test]
    fn constructor_validates() {
        assert!(ReplicaManager::new(&cfg(), 4, vec![s(0)]).is_err(), "holder count");
        assert!(ReplicaManager::new(&cfg(), 4, vec![s(0), s(9)]).is_err(), "unknown server");
    }

    #[test]
    fn replicate_moves_data_and_charges_cost() {
        let t = topo();
        let mut m = manager();
        let applied = m.apply(&t, Action::Replicate { partition: p(0), target: s(3) }).unwrap();
        assert!(m.hosts(p(0), s(3)));
        assert_eq!(m.replica_count(p(0)), 2);
        // Cross-continent distance → meaningful cost.
        assert!(applied.distance_km > 9000.0, "quarter circumference ≈ 10,000 km");
        let expect = applied.distance_km * 0.1 * (512.0 * 1024.0) / (300.0 * 1024.0 * 1024.0);
        assert!((applied.cost - expect).abs() < 1e-9);
        // Intra-DC replication is much cheaper but not free.
        let local = m.apply(&t, Action::Replicate { partition: p(0), target: s(1) }).unwrap();
        assert_eq!(local.distance_km, 1.0);
        assert!(local.cost > 0.0 && local.cost < applied.cost / 1000.0);
    }

    #[test]
    fn replicate_rejects_duplicates_and_dead_targets() {
        let mut t = topo();
        let mut m = manager();
        assert!(m.apply(&t, Action::Replicate { partition: p(0), target: s(0) }).is_err());
        t.fail_server(s(3)).unwrap();
        assert!(m.apply(&t, Action::Replicate { partition: p(0), target: s(3) }).is_err());
        assert_eq!(m.total_replicas(), 2, "rejected actions change nothing");
    }

    #[test]
    fn storage_cap_phi_is_enforced() {
        // A server that fits exactly one partition under φ.
        let small = SimConfig {
            partitions: 2,
            max_server_storage: Bytes::mib(1),
            partition_size: Bytes::kib(512),
            ..SimConfig::default()
        };
        // φ = 0.7: one 512 KiB partition is 0.5 ≤ 0.7, two would be 1.0.
        let t = topo();
        let mut m = ReplicaManager::new(&small, 4, vec![s(0), s(2)]).unwrap();
        assert!(m.can_accept(p(0), s(1)));
        m.apply(&t, Action::Replicate { partition: p(0), target: s(1) }).unwrap();
        assert!(!m.can_accept(p(1), s(1)), "second copy would exceed φ");
        assert!(m.apply(&t, Action::Replicate { partition: p(1), target: s(1) }).is_err());
    }

    #[test]
    fn replication_bandwidth_budget_per_epoch() {
        let tight = SimConfig {
            partitions: 2,
            replication_bandwidth: Bandwidth(Bytes::kib(512).as_u64()), // one transfer
            ..SimConfig::default()
        };
        let t = topo();
        let mut m = ReplicaManager::new(&tight, 4, vec![s(0), s(0)]).unwrap();
        m.apply(&t, Action::Replicate { partition: p(0), target: s(1) }).unwrap();
        // Same source (holder s0): second transfer this epoch is denied.
        let denied = m.apply(&t, Action::Replicate { partition: p(1), target: s(2) });
        assert!(denied.is_err());
        // Next epoch the budget resets.
        m.begin_epoch();
        m.apply(&t, Action::Replicate { partition: p(1), target: s(2) }).unwrap();
    }

    #[test]
    fn migrate_moves_replica_between_servers() {
        let t = topo();
        let mut m = manager();
        m.apply(&t, Action::Replicate { partition: p(0), target: s(2) }).unwrap();
        let before_frac = m.storage_fraction(s(2));
        let applied =
            m.apply(&t, Action::Migrate { partition: p(0), from: s(2), to: s(3) }).unwrap();
        assert!(!m.hosts(p(0), s(2)));
        assert!(m.hosts(p(0), s(3)));
        assert!(m.storage_fraction(s(2)) < before_frac);
        // Intra-DC migration: floor distance, migration bandwidth in the
        // denominator (100 MB/epoch → pricier per byte than replication).
        assert_eq!(applied.distance_km, 1.0);
        let expect = 1.0 * 0.1 * (512.0 * 1024.0) / (100.0 * 1024.0 * 1024.0);
        assert!((applied.cost - expect).abs() < 1e-12);
        // Holder is unaffected.
        assert_eq!(m.holder(p(0)), s(0));
    }

    #[test]
    fn migrate_rejects_bad_moves() {
        let t = topo();
        let mut m = manager();
        assert!(
            m.apply(&t, Action::Migrate { partition: p(0), from: s(1), to: s(2) }).is_err(),
            "no replica on from"
        );
        m.apply(&t, Action::Replicate { partition: p(0), target: s(1) }).unwrap();
        assert!(
            m.apply(&t, Action::Migrate { partition: p(0), from: s(1), to: s(0) }).is_err(),
            "target already hosts"
        );
    }

    #[test]
    fn suicide_protects_the_last_copy_and_the_primary() {
        let t = topo();
        let mut m = manager();
        assert!(
            m.apply(&t, Action::Suicide { partition: p(0), server: s(0) }).is_err(),
            "last replica"
        );
        m.apply(&t, Action::Replicate { partition: p(0), target: s(1) }).unwrap();
        assert!(
            m.apply(&t, Action::Suicide { partition: p(0), server: s(0) }).is_err(),
            "primary cannot suicide"
        );
        let applied = m.apply(&t, Action::Suicide { partition: p(0), server: s(1) }).unwrap();
        assert_eq!(applied.cost, 0.0);
        assert_eq!(m.replica_count(p(0)), 1);
        assert_eq!(m.storage_fraction(s(1)), 0.0);
    }

    #[test]
    fn prune_dead_promotes_and_restores() {
        let mut t = topo();
        let mut m = manager();
        m.apply(&t, Action::Replicate { partition: p(0), target: s(3) }).unwrap();
        // Kill the primary of partition 0.
        t.fail_server(s(0)).unwrap();
        let outcome = m.prune_dead(&t, |_| Some(s(1)));
        assert_eq!(outcome.lost_replicas, vec![(p(0), s(0))]);
        assert!(outcome.restored_partitions.is_empty(), "a copy survived");
        assert_eq!(m.holder(p(0)), s(3), "surviving replica promoted to primary");
        assert_eq!(m.replica_count(p(0)), 1);
        // Kill everything holding partition 1 → fallback restore, which
        // counts as a data-loss event.
        t.fail_server(s(2)).unwrap();
        let outcome = m.prune_dead(&t, |_| Some(s(1)));
        assert_eq!(outcome.lost_replicas, vec![(p(1), s(2))]);
        assert_eq!(outcome.restored_partitions, vec![p(1)]);
        assert_eq!(m.holder(p(1)), s(1));
        assert!(m.storage_fraction(s(1)) > 0.0);
    }

    #[test]
    fn prune_without_fallback_pins_to_dead_primary_until_restore() {
        let mut t = topo();
        let mut m = manager();
        // Kill the whole cluster: no fallback exists anywhere.
        for i in 0..4 {
            t.fail_server(s(i)).unwrap();
        }
        let outcome = m.prune_dead(&t, |_| None);
        assert_eq!(outcome.lost_replicas, vec![(p(0), s(0)), (p(1), s(2))]);
        assert!(outcome.restored_partitions.is_empty());
        assert_eq!(outcome.unrestored_partitions, vec![p(0), p(1)]);
        // Pinned to the dead primaries — the map stays total.
        assert_eq!(m.holder(p(0)), s(0));
        assert_eq!(m.holder(p(1)), s(2));
        assert!(m.storage_fraction(s(0)) > 0.0, "pin keeps the dead ledger consistent");

        // Restore is refused while no target is alive…
        assert!(m.restore_partition(&t, p(0), s(1)).is_err());
        // …and succeeds once one recovers, moving storage off the pin.
        t.recover_server(s(1)).unwrap();
        m.restore_partition(&t, p(0), s(1)).unwrap();
        assert_eq!(m.holder(p(0)), s(1));
        assert_eq!(m.replica_count(p(0)), 1);
        assert_eq!(m.storage_fraction(s(0)), 0.0);
        // A second restore of the same partition is a no-op error: a
        // live replica exists now.
        assert!(m.restore_partition(&t, p(0), s(1)).is_err());
    }

    #[test]
    fn restore_partition_validates_target() {
        let mut t = topo();
        let mut m = manager();
        t.fail_server(s(0)).unwrap();
        m.prune_dead(&t, |_| None);
        assert!(m.restore_partition(&t, p(0), s(9)).is_err(), "unknown server");
        // A target already full under φ is refused.
        let small = SimConfig {
            partitions: 2,
            max_server_storage: Bytes::mib(1),
            partition_size: Bytes::kib(512),
            ..SimConfig::default()
        };
        let mut m = ReplicaManager::new(&small, 4, vec![s(0), s(2)]).unwrap();
        m.apply(&t, Action::Replicate { partition: p(1), target: s(1) }).unwrap();
        m.prune_dead(&t, |_| None);
        assert!(m.restore_partition(&t, p(0), s(1)).is_err(), "φ exceeded");
        m.restore_partition(&t, p(0), s(3)).unwrap();
    }

    #[test]
    fn bandwidth_factors_scale_the_per_epoch_budgets() {
        let t = topo();
        let mut m = manager();
        // Cut replication bandwidth to a sliver: one 512 KiB transfer no
        // longer fits in 300 MiB × 1e-6.
        m.set_bandwidth_factors(1e-6, 1.0);
        assert!(m.apply(&t, Action::Replicate { partition: p(0), target: s(3) }).is_err());
        // Migration budget is independent and still whole.
        m.apply(&t, Action::Migrate { partition: p(1), from: s(2), to: s(3) }).unwrap();
        // Restoring the factor restores the budget (same epoch: the
        // failed attempt consumed nothing).
        m.set_bandwidth_factors(1.0, 1.0);
        m.apply(&t, Action::Replicate { partition: p(0), target: s(1) }).unwrap();
        // Degenerate inputs clamp instead of poisoning the budget.
        m.set_bandwidth_factors(f64::NAN, -3.0);
        m.begin_epoch();
        m.apply(&t, Action::Replicate { partition: p(0), target: s(3) })
            .expect("NaN clamps to 1.0, a full budget");
    }

    #[test]
    fn placement_view_reflects_replicas_and_factors() {
        let t = topo();
        let mut m = manager();
        m.apply(&t, Action::Replicate { partition: p(0), target: s(3) }).unwrap();
        let view = m.placement_view(&t, 20.0);
        assert_eq!(view.holder(p(0)), s(0));
        assert_eq!(view.capacity(p(0), s(0)), 20.0, "factor 1.0 with zero spread");
        assert_eq!(view.capacity(p(0), s(3)), 20.0);
        assert_eq!(view.capacity(p(0), s(1)), 0.0);
        assert_eq!(view.capacity(p(1), s(2)), 20.0);
        assert_eq!(view.partition_capacity_total(p(0)), 40.0);
    }

    #[test]
    fn partition_delta_render_matches_full_rebuild() {
        let t = topo();
        let mut m = manager();
        let mut view = m.placement_view(&t, 20.0);

        // Mutate two partitions, delta-render only those rows.
        m.apply(&t, Action::Replicate { partition: p(0), target: s(3) }).unwrap();
        m.apply(&t, Action::Migrate { partition: p(1), from: s(2), to: s(1) }).unwrap();
        m.render_partition(&t, 20.0, p(0), &mut view);
        m.render_partition(&t, 20.0, p(1), &mut view);
        assert_eq!(view, m.placement_view(&t, 20.0));
        assert_eq!(view.holder(p(1)), s(1), "migration re-points the holder");

        // Shape change: a join grows the server axis; full re-render
        // in place matches a fresh build.
        m.add_server_slot();
        m.render_view(&t, 20.0, &mut view);
        assert_eq!(view, m.placement_view(&t, 20.0));
        assert_eq!(view.servers(), 5);
    }

    #[test]
    fn add_server_slot_extends_tables() {
        let t = topo();
        let mut m = manager();
        assert_eq!(m.servers(), 4);
        m.add_server_slot();
        assert_eq!(m.servers(), 5);
        assert_eq!(m.storage_fraction(s(4)), 0.0);
        // The new slot is unusable until the topology knows it, but the
        // manager accepts it once both agree; here we only check the
        // accounting grows.
        let _ = t;
    }
}
