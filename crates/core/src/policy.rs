//! The replication-policy interface.
//!
//! Once per epoch, after the traffic pass, each policy inspects the
//! epoch context and emits actions; the replica manager executes them
//! (enforcing storage and bandwidth limits) and the simulator accounts
//! the costs. Keeping policies pure over a read-only context makes the
//! four algorithms trivially comparable — they see byte-identical
//! inputs.

use crate::manager::ReplicaManager;
use rfh_obs::Recorder;
use rfh_topology::Topology;
use rfh_traffic::{PlacementView, TrafficAccounts, TrafficSmoother};
use rfh_types::{Epoch, PartitionId, ServerId, SimConfig};
use rfh_workload::QueryLoad;

/// Everything a policy may read when deciding.
pub struct EpochContext<'a> {
    /// Current epoch.
    pub epoch: Epoch,
    /// Cluster structure and liveness.
    pub topo: &'a Topology,
    /// This epoch's raw query matrix `q_ijt`.
    pub load: &'a QueryLoad,
    /// This epoch's traffic pass results.
    pub accounts: &'a TrafficAccounts,
    /// Smoothed query averages and traffic (eqs. 9–11).
    pub smoother: &'a TrafficSmoother,
    /// Per-server blocking probabilities (eq. 18), indexed by server.
    pub blocking: &'a [f64],
    /// The frozen placement snapshot the traffic pass ran against —
    /// consistent with `manager` at decide time (no mutation happens
    /// between render and decide), and what the parallel decision pass
    /// evaluates partitions against.
    pub view: &'a PlacementView,
    /// Simulation parameters (Table I).
    pub config: &'a SimConfig,
    /// Decision-event sink (observation-only; `&NullRecorder` when the
    /// run is untraced).
    pub recorder: &'a dyn Recorder,
    /// Sparse-engine active set: the partitions this epoch's traffic
    /// pass touched, sorted ascending. `Some` asks the policy to
    /// evaluate only these partitions (everything outside is frozen —
    /// the policy's own [`ReplicationPolicy::keeps_live`] vouched that
    /// skipping them changes nothing); `None` is the dense full sweep.
    pub active: Option<&'a [u32]>,
}

/// One decision a policy can make.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Create a new replica of `partition` on `target`.
    Replicate {
        /// Partition to replicate.
        partition: PartitionId,
        /// Destination server.
        target: ServerId,
    },
    /// Move the replica of `partition` on `from` to `to`.
    Migrate {
        /// Partition whose replica moves.
        partition: PartitionId,
        /// Current replica server.
        from: ServerId,
        /// Destination server.
        to: ServerId,
    },
    /// Remove the replica of `partition` on `server` (the paper's
    /// "suicide": the virtual node reclaims its own resources).
    Suicide {
        /// Partition whose replica is removed.
        partition: PartitionId,
        /// Server hosting the doomed replica.
        server: ServerId,
    },
}

/// A replication algorithm under evaluation.
pub trait ReplicationPolicy {
    /// Short name used in reports and figure legends.
    fn name(&self) -> &'static str;

    /// Decide this epoch's actions. `manager` is the *current* replica
    /// map (read-only); actions are applied by the caller afterwards, so
    /// decisions within one epoch see a consistent snapshot.
    fn decide(&mut self, ctx: &EpochContext<'_>, manager: &ReplicaManager) -> Vec<Action>;

    /// Gray-failure hook: set the per-hop drop probability of the
    /// policy's control plane (`0.0` heals). Centralized policies have
    /// no message plane, so the default ignores it; the distributed
    /// agent overrides it to corrupt its WAN transport.
    fn set_message_loss(&mut self, _probability: f64) {}

    /// Whether partition `p` must stay in the sparse engine's active set
    /// next epoch even if nobody queries it.
    ///
    /// The sparse epoch engine carries a partition from one epoch's
    /// active set to the next only while this returns `true`; once it
    /// returns `false` the partition is frozen until new demand (or a
    /// fault) dirties it. An implementation may return `false` only when
    /// evaluating the partition under a dense sweep would provably
    /// produce no action *and no internal state change* this epoch and
    /// every following epoch until the partition is dirtied again —
    /// that is what makes sparse runs byte-identical to dense ones.
    /// `smoother` cells for frozen partitions are lazily decayed, i.e.
    /// possibly stale upper bounds of the dense values; treat any
    /// nonzero read as "still live" and the conservative direction is
    /// preserved. The default keeps everything live — always correct,
    /// never sparse.
    fn keeps_live(
        &self,
        topo: &Topology,
        smoother: &TrafficSmoother,
        manager: &ReplicaManager,
        r_min: usize,
        p: PartitionId,
    ) -> bool {
        let _ = (topo, smoother, manager, r_min, p);
        true
    }
}

/// The four algorithms of the paper's evaluation — plus the
/// failure-domain-aware RFH variant added on top — as a value, handy
/// for CLI flags and experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// The RFH algorithm (traffic-oriented).
    Rfh,
    /// The random baseline.
    Random,
    /// The owner-oriented baseline.
    OwnerOriented,
    /// The request-oriented baseline.
    RequestOriented,
    /// RFH with failure-domain-aware placement: candidate targets are
    /// scored by rack/room/datacenter spread before traffic, so
    /// replica sets survive correlated outages. Not a paper policy —
    /// [`PolicyKind::ALL`] (the figure sweeps) excludes it.
    DomainSpread,
}

impl PolicyKind {
    /// The paper's four, in its presentation order. Figure sweeps and
    /// the comparison runner iterate exactly these; the domain-spread
    /// variant joins via [`PolicyKind::WITH_SPREAD`] where the wider
    /// matrix is wanted.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::RequestOriented,
        PolicyKind::OwnerOriented,
        PolicyKind::Random,
        PolicyKind::Rfh,
    ];

    /// [`PolicyKind::ALL`] plus the domain-spread variant — the full
    /// differential-test and chaos-experiment matrix.
    pub const WITH_SPREAD: [PolicyKind; 5] = [
        PolicyKind::RequestOriented,
        PolicyKind::OwnerOriented,
        PolicyKind::Random,
        PolicyKind::Rfh,
        PolicyKind::DomainSpread,
    ];

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Rfh => "RFH",
            PolicyKind::Random => "Random",
            PolicyKind::OwnerOriented => "Owner",
            PolicyKind::RequestOriented => "Request",
            PolicyKind::DomainSpread => "Spread",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_the_paper() {
        assert_eq!(PolicyKind::ALL.len(), 4);
        let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["Request", "Owner", "Random", "RFH"]);
        assert_eq!(PolicyKind::Rfh.to_string(), "RFH");
        // The spread variant extends — never replaces — the paper set.
        assert_eq!(PolicyKind::WITH_SPREAD[..4], PolicyKind::ALL);
        assert_eq!(PolicyKind::DomainSpread.name(), "Spread");
        assert!(!PolicyKind::ALL.contains(&PolicyKind::DomainSpread));
    }

    #[test]
    fn actions_are_comparable() {
        let a = Action::Replicate { partition: PartitionId::new(1), target: ServerId::new(2) };
        assert_eq!(a, a);
        assert_ne!(a, Action::Suicide { partition: PartitionId::new(1), server: ServerId::new(2) });
    }
}
