//! The RFH decision agent — the paper's Fig. 2 decision tree.
//!
//! Per partition, per epoch:
//!
//! 1. **Availability floor** (eq. 14): below `r_min` replicas, the
//!    holder "will replicate to its most forwarding nodes, even if all
//!    the nodes are not overloaded".
//! 2. **Overload + hubs** (eqs. 12–13): when the holder's smoothed
//!    traffic exceeds `β·q̄` it waits for replication requests; every
//!    forwarding datacenter whose traffic exceeds `γ·q̄` is a traffic
//!    hub and sends one. The holder "will choose a node among the 3
//!    nodes with the largest amount of traffic". If the partition has a
//!    replica parked *outside* those three and the migration benefit
//!    (eq. 16) clears `μ·t̄r`, the replica migrates; otherwise a new
//!    replica is created on the chosen hub.
//!    If the holder is overloaded and *no* forwarding hub qualifies
//!    (demand is local), load is relieved inside the holder's own
//!    datacenter — the effect §III-C observes ("some replicas are placed
//!    on the same datacenter of the primary partition holders, but in
//!    different servers").
//! 3. **Suicide** (eq. 15): a non-primary replica whose datacenter
//!    traffic dropped to `δ·q̄` or below removes itself, provided the
//!    availability floor survives it.
//!
//! Inside the chosen datacenter, the concrete server is the one with the
//! lowest Erlang-B blocking probability (eq. 18) among those under the
//! storage cap `φ` (eq. 19).
//!
//! ## Two agents, one decision core
//!
//! The decision tree itself is implemented once, in
//! [`RfhDecisionCore`], over the [`TrafficView`] abstraction — "what the
//! holder knows about each datacenter's traffic and spare capacity".
//! [`RfhPolicy`] feeds it the omniscient simulator view (the smoothed
//! traffic grids); `rfh-net`'s `DistributedRfhPolicy` feeds it a view
//! assembled purely from node-local state plus *received protocol
//! messages*, which is how the paper's §II-B actually disseminates the
//! information. With a control plane that delivers within the epoch the
//! two produce identical decisions (asserted by integration tests).

use crate::manager::ReplicaManager;
use crate::policy::{Action, EpochContext, ReplicationPolicy};
use crate::selection::{accepting_servers_in_dc, least_blocked_in_dc, most_spread_in_dc};
use crate::thresholds::{
    holder_overloaded, is_traffic_hub, migration_beneficial, suicide_candidate,
};
use rfh_obs::{BufferedRecorder, DecisionEvent, DecisionKind, Recorder, Trigger};
use rfh_pool::{shard_bounds, WorkerPool};
use rfh_stats::min_replica_count;
use rfh_topology::Topology;
use rfh_traffic::PlacementView;
use rfh_types::{DatacenterId, Epoch, PartitionId, ServerId, Thresholds};
use std::sync::Arc;

/// Consecutive suicide-candidate epochs required before a replica dies.
pub const SUICIDE_PATIENCE: u32 = 4;

/// Epochs a partition waits between migrations.
pub const MIGRATION_COOLDOWN: u64 = 10;

/// Raw unserved queries/epoch above which a partition's demand counts as
/// outstripping its replica capacity. Scale-free eq. 12 alone triggers on
/// any partition with nonzero demand (the holder always sees at least the
/// whole demand ≥ β·q̄ = β·demand/N when under-replicated); requiring
/// actual unserved residual keeps cold partitions from churning
/// replicate/suicide cycles.
pub const UNSERVED_FLOOR: f64 = 1.0;

/// What the decision core may know about the world: per-datacenter
/// traffic state for each partition plus, for each datacenter, the best
/// server currently able to accept a replica.
///
/// The centralized implementation reads the simulator's smoothed grids;
/// the distributed one (in `rfh-net`) reads a table assembled from
/// received traffic reports. Quantities mirror eqs. (9)–(11).
pub trait TrafficView {
    /// Number of datacenters.
    fn datacenters(&self) -> u32;
    /// Smoothed system query average `q̄_it` (eq. 10).
    fn q_avg(&self, p: PartitionId) -> f64;
    /// Smoothed arrival traffic of a datacenter for a partition (eq. 11).
    fn traffic(&self, dc: DatacenterId, p: PartitionId) -> f64;
    /// Smoothed *forwarding* traffic (residual passed onward).
    fn outflow(&self, dc: DatacenterId, p: PartitionId) -> f64;
    /// Unserved residual demand for the partition this epoch (observed
    /// at the holder: these are the queries that reached it unserved).
    fn unserved(&self, p: PartitionId) -> f64;
    /// Best server in `dc` able to accept a replica of `p` right now
    /// (lowest blocking probability under the storage cap), if any.
    fn candidate(&self, p: PartitionId, dc: DatacenterId) -> Option<ServerId>;

    /// Bootstrap placement for a partition nobody queries: the holder
    /// probes its WAN *neighbours* (its routing table knows them,
    /// §II-B; one hop, sub-epoch) for the closest datacenter that can
    /// take a copy — geographic diversity for the availability floor —
    /// falling back to its own datacenter, then giving up.
    fn bootstrap_candidate(&self, p: PartitionId, holder_dc: DatacenterId) -> Option<ServerId>;

    /// Erlang-B blocking probability (eq. 18) at a server, for trace
    /// events. NaN when the view has no blocking information (e.g. a
    /// distributed view for a datacenter that sent no report).
    fn blocking_of(&self, _s: ServerId) -> f64 {
        f64::NAN
    }

    /// Failure-domain pressure of placing another copy of `p` in `dc`:
    /// how many replicas the partition already keeps there. The
    /// domain-spread placement variant orders candidate datacenters by
    /// this *before* traffic, so correlated-outage blast radius shrinks;
    /// the default (always 0) leaves the paper's traffic-only ordering
    /// untouched bit-for-bit.
    fn spread_penalty(&self, _p: PartitionId, _dc: DatacenterId) -> u32 {
        0
    }

    /// `t̄r_i` of eq. (17): mean arrival traffic over all datacenters.
    fn mean_traffic(&self, p: PartitionId) -> f64 {
        let n = self.datacenters();
        if n == 0 {
            return 0.0;
        }
        (0..n).map(|dc| self.traffic(DatacenterId::new(dc), p)).sum::<f64>() / n as f64
    }
}

/// The shared decision tree state-machine: grace periods, idle streaks,
/// migration cooldowns, and the Fig. 2 logic itself — parameterized over
/// a [`TrafficView`].
#[derive(Debug, Clone, Default)]
pub struct RfhDecisionCore {
    grace_epochs: u64,
    /// `(partition, server) → creation epoch` for grace tracking.
    born: std::collections::HashMap<(u32, u32), u64>,
    /// Per-partition migration cooldown (see [`MIGRATION_COOLDOWN`]).
    last_migration: std::collections::HashMap<u32, u64>,
    /// Consecutive epochs each replica has satisfied eq. 15 (see
    /// [`SUICIDE_PATIENCE`]).
    idle_streak: std::collections::HashMap<(u32, u32), u32>,
}

impl RfhDecisionCore {
    /// Core with the given suicide grace period.
    pub fn new(grace_epochs: u64) -> Self {
        RfhDecisionCore {
            grace_epochs,
            born: std::collections::HashMap::new(),
            last_migration: std::collections::HashMap::new(),
            idle_streak: std::collections::HashMap::new(),
        }
    }

    fn in_grace(&self, epoch: Epoch, p: PartitionId, s: ServerId) -> bool {
        self.born.get(&(p.0, s.0)).is_some_and(|&b| epoch.raw() < b + self.grace_epochs)
    }

    fn note_birth(&mut self, epoch: Epoch, actions: &[Action]) {
        for a in actions {
            match *a {
                Action::Replicate { partition, target } => {
                    self.born.insert((partition.0, target.0), epoch.raw());
                    self.idle_streak.remove(&(partition.0, target.0));
                }
                Action::Migrate { partition, from, to } => {
                    self.born.remove(&(partition.0, from.0));
                    self.born.insert((partition.0, to.0), epoch.raw());
                    self.idle_streak.remove(&(partition.0, from.0));
                    self.idle_streak.remove(&(partition.0, to.0));
                }
                Action::Suicide { partition, server } => {
                    self.born.remove(&(partition.0, server.0));
                    self.idle_streak.remove(&(partition.0, server.0));
                }
            }
        }
    }

    /// Traffic hubs for `p`: forwarding datacenters (holder's excluded)
    /// whose forwarding traffic clears the `γ·q̄` bar of eq. 13;
    /// descending, top 3.
    fn top_hubs(
        view: &dyn TrafficView,
        t: &Thresholds,
        p: PartitionId,
        holder_dc: DatacenterId,
        q_avg: f64,
    ) -> Vec<(DatacenterId, f64)> {
        let mut hubs: Vec<(DatacenterId, f64)> = (0..view.datacenters())
            .map(DatacenterId::new)
            .filter(|&dc| dc != holder_dc)
            .map(|dc| (dc, view.outflow(dc, p)))
            .filter(|&(_, tr)| is_traffic_hub(t, tr, q_avg))
            .collect();
        hubs.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0 .0.cmp(&b.0 .0))
        });
        hubs.truncate(3);
        hubs
    }

    /// Availability-floor placement: the datacenter carrying the most
    /// (arrival) traffic for `p` that can take a copy — ordered first by
    /// [`TrafficView::spread_penalty`] (a constant 0 outside the
    /// domain-spread variant, so the paper's traffic ordering is
    /// untouched by default). Without any traffic information the holder
    /// falls back to a neighbour probe
    /// ([`TrafficView::bootstrap_candidate`]) so even a never-queried
    /// partition gets a geographically diverse second copy.
    fn most_forwarding_target(
        view: &dyn TrafficView,
        p: PartitionId,
        holder_dc: DatacenterId,
    ) -> Option<ServerId> {
        let mut dcs: Vec<(DatacenterId, u32, f64)> = (0..view.datacenters())
            .map(DatacenterId::new)
            .map(|dc| (dc, view.spread_penalty(p, dc), view.traffic(dc, p)))
            .filter(|&(_, _, tr)| tr > 0.0)
            .collect();
        dcs.sort_by(|a, b| {
            a.1.cmp(&b.1)
                .then_with(|| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.0 .0.cmp(&b.0 .0))
        });
        dcs.into_iter()
            .find_map(|(dc, _, _)| view.candidate(p, dc))
            .or_else(|| view.bootstrap_candidate(p, holder_dc))
    }

    /// Run the decision tree for every partition, serially.
    ///
    /// `snapshot` is the frozen per-epoch placement view decisions are
    /// evaluated against; `manager` supplies the replica sets it was
    /// rendered from (read-only until the caller applies the returned
    /// actions). Each emitted action is mirrored to `recorder` as a
    /// [`DecisionEvent`] carrying the model inputs that fired, labelled
    /// `policy` — observation-only, so the decisions are identical
    /// under any recorder.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_all(
        &mut self,
        epoch: Epoch,
        t: &Thresholds,
        r_min: usize,
        topo: &Topology,
        manager: &ReplicaManager,
        snapshot: &PlacementView,
        view: &dyn TrafficView,
        recorder: &dyn Recorder,
        policy: &'static str,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        for p_idx in 0..manager.partitions() {
            let p = PartitionId::new(p_idx);
            let d = self.decide_partition(
                epoch, t, r_min, topo, manager, snapshot, view, recorder, policy, p,
            );
            self.absorb(epoch, p, d, &mut actions);
        }
        self.note_birth(epoch, &actions);
        actions
    }

    /// [`decide_all`](Self::decide_all) with the per-partition
    /// evaluation fanned out over `pool`.
    ///
    /// Partitions are split into contiguous shards (one per worker).
    /// Workers evaluate their partitions read-only against the frozen
    /// `snapshot` and record trace events into per-shard
    /// [`BufferedRecorder`]s; the coordinator then walks shards — hence
    /// partitions — in ascending order, forwarding events to the real
    /// recorder and absorbing each partition's state updates, exactly
    /// as the serial loop would have. Actions, decision-core state, and
    /// the recorder's event sequence are therefore bit-identical to
    /// [`decide_all`](Self::decide_all) for any pool size.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_all_pooled(
        &mut self,
        epoch: Epoch,
        t: &Thresholds,
        r_min: usize,
        topo: &Topology,
        manager: &ReplicaManager,
        snapshot: &PlacementView,
        view: &(dyn TrafficView + Sync),
        recorder: &dyn Recorder,
        policy: &'static str,
        pool: &WorkerPool,
    ) -> Vec<Action> {
        let n = manager.partitions() as usize;
        if pool.size() <= 1 || n <= 1 {
            return self
                .decide_all(epoch, t, r_min, topo, manager, snapshot, view, recorder, policy);
        }
        let traced = recorder.enabled();
        let n_shards = pool.size().min(n);
        struct ShardOut {
            lo: u32,
            hi: u32,
            events: BufferedRecorder,
            decisions: Vec<PartitionDecision>,
        }
        let mut outs: Vec<ShardOut> = (0..n_shards)
            .map(|k| {
                let (lo, hi) = shard_bounds(n, n_shards, k);
                ShardOut {
                    lo: lo as u32,
                    hi: hi as u32,
                    events: BufferedRecorder::new(traced),
                    decisions: Vec::with_capacity(hi - lo),
                }
            })
            .collect();
        {
            let core: &RfhDecisionCore = self;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = outs
                .iter_mut()
                .map(|out| {
                    Box::new(move || {
                        for p_idx in out.lo..out.hi {
                            let d = core.decide_partition(
                                epoch,
                                t,
                                r_min,
                                topo,
                                manager,
                                snapshot,
                                view as &dyn TrafficView,
                                &out.events,
                                policy,
                                PartitionId::new(p_idx),
                            );
                            out.decisions.push(d);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(jobs);
        }
        let mut actions = Vec::new();
        for out in outs {
            for event in out.events.drain() {
                recorder.decision(event);
            }
            for (i, d) in out.decisions.into_iter().enumerate() {
                self.absorb(epoch, PartitionId::new(out.lo + i as u32), d, &mut actions);
            }
        }
        self.note_birth(epoch, &actions);
        actions
    }

    /// Run the decision tree for the partitions in `active` only
    /// (sorted ascending), serially.
    ///
    /// The sparse-engine counterpart of [`decide_all`](Self::decide_all):
    /// partitions outside `active` are frozen — the caller vouches (via
    /// [`ReplicationPolicy::keeps_live`]) that evaluating them would
    /// change nothing. Because evaluation and absorption walk `active`
    /// ascending, actions, state updates and trace events for the
    /// active partitions are byte-identical to the dense sweep's.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_set(
        &mut self,
        epoch: Epoch,
        t: &Thresholds,
        r_min: usize,
        topo: &Topology,
        manager: &ReplicaManager,
        snapshot: &PlacementView,
        view: &dyn TrafficView,
        recorder: &dyn Recorder,
        policy: &'static str,
        active: &[u32],
    ) -> Vec<Action> {
        debug_assert!(active.windows(2).all(|w| w[0] < w[1]), "active set must be sorted");
        let mut actions = Vec::new();
        for &p_idx in active {
            let p = PartitionId::new(p_idx);
            let d = self.decide_partition(
                epoch, t, r_min, topo, manager, snapshot, view, recorder, policy, p,
            );
            self.absorb(epoch, p, d, &mut actions);
        }
        self.note_birth(epoch, &actions);
        actions
    }

    /// [`decide_set`](Self::decide_set) with the per-partition
    /// evaluation fanned out over `pool`, sharding the *active list*
    /// (not the partition space). Bit-identical to the serial sparse
    /// pass for any pool size, by the same snapshot/absorb argument as
    /// [`decide_all_pooled`](Self::decide_all_pooled).
    #[allow(clippy::too_many_arguments)]
    pub fn decide_set_pooled(
        &mut self,
        epoch: Epoch,
        t: &Thresholds,
        r_min: usize,
        topo: &Topology,
        manager: &ReplicaManager,
        snapshot: &PlacementView,
        view: &(dyn TrafficView + Sync),
        recorder: &dyn Recorder,
        policy: &'static str,
        active: &[u32],
        pool: &WorkerPool,
    ) -> Vec<Action> {
        let n = active.len();
        if pool.size() <= 1 || n <= 1 {
            return self.decide_set(
                epoch, t, r_min, topo, manager, snapshot, view, recorder, policy, active,
            );
        }
        let traced = recorder.enabled();
        let n_shards = pool.size().min(n);
        struct ShardOut {
            /// Positions into `active` this shard covers.
            lo: usize,
            hi: usize,
            events: BufferedRecorder,
            decisions: Vec<PartitionDecision>,
        }
        let mut outs: Vec<ShardOut> = (0..n_shards)
            .map(|k| {
                let (lo, hi) = shard_bounds(n, n_shards, k);
                ShardOut {
                    lo,
                    hi,
                    events: BufferedRecorder::new(traced),
                    decisions: Vec::with_capacity(hi - lo),
                }
            })
            .collect();
        {
            let core: &RfhDecisionCore = self;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = outs
                .iter_mut()
                .map(|out| {
                    Box::new(move || {
                        for &pu in &active[out.lo..out.hi] {
                            let d = core.decide_partition(
                                epoch,
                                t,
                                r_min,
                                topo,
                                manager,
                                snapshot,
                                view as &dyn TrafficView,
                                &out.events,
                                policy,
                                PartitionId::new(pu),
                            );
                            out.decisions.push(d);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(jobs);
        }
        let mut actions = Vec::new();
        for out in outs {
            for event in out.events.drain() {
                recorder.decision(event);
            }
            for (i, d) in out.decisions.into_iter().enumerate() {
                self.absorb(epoch, PartitionId::new(active[out.lo + i]), d, &mut actions);
            }
        }
        self.note_birth(epoch, &actions);
        actions
    }

    /// Whether any non-primary replica of `p` still has an idle streak
    /// below the [`SUICIDE_PATIENCE`] bar (or none at all) — i.e. the
    /// suicide state-machine for `p` has not yet saturated.
    fn any_streak_unsaturated(
        &self,
        manager: &ReplicaManager,
        holder: ServerId,
        p: PartitionId,
    ) -> bool {
        manager.replicas(p).iter().any(|&s| {
            s != holder
                && self.idle_streak.get(&(p.0, s.0)).copied().unwrap_or(0) < SUICIDE_PATIENCE
        })
    }

    /// Evaluate the decision tree for one partition, read-only.
    ///
    /// All state `decide_all` historically mutated mid-loop is keyed by
    /// partition (idle streaks by `(partition, server)`, the migration
    /// cooldown by partition), so evaluating partitions against `&self`
    /// and absorbing the returned updates afterwards — in partition
    /// order — reproduces the serial loop exactly. That is the property
    /// the parallel pass rests on.
    #[allow(clippy::too_many_arguments)]
    fn decide_partition(
        &self,
        epoch: Epoch,
        t: &Thresholds,
        r_min: usize,
        topo: &Topology,
        manager: &ReplicaManager,
        snapshot: &PlacementView,
        view: &dyn TrafficView,
        recorder: &dyn Recorder,
        policy: &'static str,
        p: PartitionId,
    ) -> PartitionDecision {
        let replica_dc = |s: ServerId| topo.servers()[s.index()].datacenter;
        let traced = recorder.enabled();
        let holder = snapshot.holder(p);
        let holder_dc = replica_dc(holder);
        let q_avg = view.q_avg(p);
        let mut d = PartitionDecision::default();

        // Update idle streaks for every non-primary replica (eq. 15
        // sampled per epoch; suicide waits for a sustained streak).
        for &s in manager.replicas(p) {
            if s == holder {
                continue;
            }
            let tr = view.traffic(replica_dc(s), p);
            let key = (p.0, s.0);
            if suicide_candidate(t, tr, q_avg) {
                // Saturate at the patience bar: the suicide gate only
                // asks `streak >= SUICIDE_PATIENCE`, and a capped streak
                // makes re-evaluating a long-idle partition idempotent —
                // the invariant the sparse engine's freeze rests on.
                let next =
                    (self.idle_streak.get(&key).copied().unwrap_or(0) + 1).min(SUICIDE_PATIENCE);
                d.streaks.push((key, Some(next)));
            } else {
                d.streaks.push((key, None));
            }
        }

        // ── 1. Availability floor ─────────────────────────────────
        if manager.replica_count(p) < r_min {
            if let Some(target) = Self::most_forwarding_target(view, p, holder_dc) {
                if traced {
                    recorder.decision(DecisionEvent {
                        target: Some(target.0),
                        // eq. 14: the count/floor comparison fired.
                        traffic: manager.replica_count(p) as f64,
                        threshold: r_min as f64,
                        q_avg,
                        blocking: view.blocking_of(target),
                        unserved: view.unserved(p),
                        ..DecisionEvent::new(
                            epoch.raw(),
                            policy,
                            DecisionKind::Replicate,
                            p.0,
                            Trigger::AvailabilityFloor,
                        )
                    });
                }
                d.action = Some(Action::Replicate { partition: p, target });
            }
            return d; // one structural action per partition per epoch
        }

        // ── 2. Overload relief via traffic hubs ───────────────────
        // eq. 12 alone is scale-free (the holder of any queried,
        // under-replicated partition trivially exceeds β·q̄ = β/N of
        // its own demand), so relief also requires real unserved
        // residual — replication exists to absorb demand the current
        // replica set cannot.
        let holder_tr = view.traffic(holder_dc, p);
        if holder_overloaded(t, holder_tr, q_avg) && view.unserved(p) > UNSERVED_FLOOR {
            let hubs = Self::top_hubs(view, t, p, holder_dc, q_avg);
            // The hottest hub that can still take a copy (a hub DC
            // scales out over its servers as demand grows).
            let chosen = hubs
                .iter()
                .copied()
                .find_map(|(dc, tr)| view.candidate(p, dc).map(|srv| (dc, tr, srv)));
            if let Some((hub_dc, hub_tr, target)) = chosen {
                // Migration beats replication only for a hub gaining
                // its *first* replica (the paper's "if there's any
                // replica of it is not at these three nodes"): an
                // idle replica parked outside the hubs moves in if
                // the benefit clears μ·t̄r and the partition is off
                // migration cooldown.
                let hub_is_fresh = !manager.replicas(p).iter().any(|&s| replica_dc(s) == hub_dc);
                let off_cooldown = self
                    .last_migration
                    .get(&p.0)
                    .is_none_or(|&e| epoch.raw() >= e + MIGRATION_COOLDOWN);
                let mean_tr = view.mean_traffic(p);
                let victim = (hub_is_fresh && off_cooldown)
                    .then(|| {
                        manager
                            .replicas(p)
                            .iter()
                            .copied()
                            .filter(|&s| s != holder)
                            .filter(|&s| !self.in_grace(epoch, p, s))
                            .filter(|&s| {
                                let dc = replica_dc(s);
                                dc != hub_dc && !hubs.iter().any(|&(h, _)| h == dc)
                            })
                            .map(|s| (s, view.traffic(replica_dc(s), p)))
                            .filter(|&(_, tr)| migration_beneficial(t, hub_tr, tr, mean_tr))
                            .min_by(|a, b| {
                                a.1.partial_cmp(&b.1)
                                    .unwrap_or(std::cmp::Ordering::Equal)
                                    .then_with(|| a.0.cmp(&b.0))
                            })
                    })
                    .flatten();
                match victim {
                    Some((from, from_tr)) => {
                        if traced {
                            recorder.decision(DecisionEvent {
                                source: Some(from.0),
                                target: Some(target.0),
                                // eq. 16: benefit tr_to − tr_from vs μ·t̄r.
                                traffic: hub_tr - from_tr,
                                threshold: t.mu * mean_tr,
                                q_avg,
                                blocking: view.blocking_of(target),
                                unserved: view.unserved(p),
                                ..DecisionEvent::new(
                                    epoch.raw(),
                                    policy,
                                    DecisionKind::Migrate,
                                    p.0,
                                    Trigger::MigrationBenefit,
                                )
                            });
                        }
                        d.migrated = true;
                        d.action = Some(Action::Migrate { partition: p, from, to: target });
                    }
                    None => {
                        if traced {
                            recorder.decision(DecisionEvent {
                                target: Some(target.0),
                                // eq. 13: the hub's traffic vs γ·q̄.
                                traffic: hub_tr,
                                threshold: t.gamma * q_avg,
                                q_avg,
                                blocking: view.blocking_of(target),
                                unserved: view.unserved(p),
                                ..DecisionEvent::new(
                                    epoch.raw(),
                                    policy,
                                    DecisionKind::Replicate,
                                    p.0,
                                    Trigger::TrafficHub,
                                )
                            });
                        }
                        d.action = Some(Action::Replicate { partition: p, target });
                    }
                }
            } else if hubs.is_empty() {
                // Local surge: relieve inside the holder's own DC.
                if let Some(target) = view.candidate(p, holder_dc) {
                    if traced {
                        recorder.decision(DecisionEvent {
                            target: Some(target.0),
                            // eq. 12: the holder's own traffic vs β·q̄.
                            traffic: holder_tr,
                            threshold: t.beta * q_avg,
                            q_avg,
                            blocking: view.blocking_of(target),
                            unserved: view.unserved(p),
                            ..DecisionEvent::new(
                                epoch.raw(),
                                policy,
                                DecisionKind::Replicate,
                                p.0,
                                Trigger::LocalOverload,
                            )
                        });
                    }
                    d.action = Some(Action::Replicate { partition: p, target });
                }
            }
            return d;
        }

        // ── 3. Suicide ────────────────────────────────────────────
        // Degraded mode under WAN partitions: a replica whose
        // datacenter cannot route to the holder sees zero traffic
        // *because of the fault*, not because demand died — it may
        // be the only copy serving its island. Isolated replicas
        // are never suicided, and only reachable copies count
        // toward the floor here, so a partition-split replica set
        // also stops shrinking. On a healthy backbone every
        // replica is reachable and this is exactly eq. 15.
        let reachable = |s: ServerId| topo.graph().latency_ms(holder_dc, replica_dc(s)).is_some();
        let reachable_count = manager.replicas(p).iter().filter(|&&s| reachable(s)).count();
        if reachable_count > r_min {
            // This epoch's streak values: the updates computed above,
            // not yet absorbed into the map (the serial loop updated
            // the map just before reading it — same values).
            let streak_of = |s: ServerId| {
                d.streaks.iter().find(|(k, _)| *k == (p.0, s.0)).and_then(|(_, v)| *v)
            };
            let doomed = manager
                .replicas(p)
                .iter()
                .copied()
                .filter(|&s| s != holder)
                .filter(|&s| reachable(s))
                .filter(|&s| !self.in_grace(epoch, p, s))
                .filter(|&s| streak_of(s).is_some_and(|n| n >= SUICIDE_PATIENCE))
                .map(|s| (s, view.traffic(replica_dc(s), p)))
                .min_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
            if let Some((server, tr)) = doomed {
                if traced {
                    recorder.decision(DecisionEvent {
                        source: Some(server.0),
                        // eq. 15: the replica's traffic vs δ·q̄.
                        traffic: tr,
                        threshold: t.delta * q_avg,
                        q_avg,
                        unserved: view.unserved(p),
                        ..DecisionEvent::new(
                            epoch.raw(),
                            policy,
                            DecisionKind::Suicide,
                            p.0,
                            Trigger::IdleSuicide,
                        )
                    });
                }
                d.action = Some(Action::Suicide { partition: p, server });
            }
        }
        d
    }

    /// Fold one partition's evaluation back into the core's state, in
    /// partition order — the serial half of the snapshot/apply split.
    fn absorb(
        &mut self,
        epoch: Epoch,
        p: PartitionId,
        d: PartitionDecision,
        actions: &mut Vec<Action>,
    ) {
        for (key, streak) in d.streaks {
            match streak {
                Some(n) => {
                    self.idle_streak.insert(key, n);
                }
                None => {
                    self.idle_streak.remove(&key);
                }
            }
        }
        if d.migrated {
            self.last_migration.insert(p.0, epoch.raw());
        }
        if let Some(action) = d.action {
            actions.push(action);
        }
    }
}

/// Everything evaluating one partition wants to change: applied by
/// [`RfhDecisionCore::absorb`] on the coordinating thread, in partition
/// order.
#[derive(Debug, Default)]
struct PartitionDecision {
    /// `(partition, server) →` new idle-streak value (`None`: the
    /// streak broke and the entry is removed).
    streaks: Vec<((u32, u32), Option<u32>)>,
    /// At most one structural action per partition per epoch.
    action: Option<Action>,
    /// The action is a migration: stamp the cooldown on absorb.
    migrated: bool,
}

/// The neighbour-probe bootstrap placement both agents use for
/// never-queried partitions: the holder's WAN neighbours sorted by link
/// latency (closest first — "a different datacenter close to the
/// primary partition owner", §II-A), then the holder's own datacenter.
pub fn bootstrap_candidate_near(
    topo: &Topology,
    manager: &ReplicaManager,
    blocking: &[f64],
    use_blocking: bool,
    p: PartitionId,
    holder_dc: DatacenterId,
) -> Option<ServerId> {
    let mut neighbours: Vec<(DatacenterId, f64)> = topo.graph().neighbours(holder_dc).collect();
    neighbours.sort_by(|a, b| {
        a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0 .0.cmp(&b.0 .0))
    });
    neighbours
        .into_iter()
        .find_map(|(dc, _)| best_candidate_in_dc(topo, manager, blocking, use_blocking, p, dc))
        .or_else(|| best_candidate_in_dc(topo, manager, blocking, use_blocking, p, holder_dc))
}

/// The best accepting server in a datacenter under the blocking-choice
/// rule — shared by the centralized view and the reporter side of the
/// distributed protocol so both evaluate candidates identically.
pub fn best_candidate_in_dc(
    topo: &Topology,
    manager: &ReplicaManager,
    blocking: &[f64],
    use_blocking: bool,
    p: PartitionId,
    dc: DatacenterId,
) -> Option<ServerId> {
    if use_blocking {
        least_blocked_in_dc(topo, manager, p, dc, blocking)
    } else {
        accepting_servers_in_dc(topo, manager, p, dc).into_iter().next()
    }
}

/// How the RFH agent picks the concrete server once the decision tree
/// settles on (or ranks) datacenters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementMode {
    /// The paper's rule: candidate datacenters ordered by traffic, the
    /// least-blocked accepting server within (eq. 18).
    #[default]
    Traffic,
    /// Failure-domain-aware placement: candidate datacenters are
    /// ordered by replica spread before traffic
    /// ([`TrafficView::spread_penalty`]), and within a datacenter the
    /// server is chosen to occupy a fresh room, then a fresh rack,
    /// before blocking probability breaks ties — so a correlated
    /// rack/room/datacenter outage kills as few copies as possible.
    /// Hub *selection* (eq. 13) stays traffic-driven: spread shapes
    /// where copies land, not which demand they chase.
    DomainSpread,
}

/// The omniscient [`TrafficView`]: reads the simulator's smoothed grids
/// directly.
struct CentralizedView<'a> {
    ctx: &'a EpochContext<'a>,
    manager: &'a ReplicaManager,
    use_blocking: bool,
    placement: PlacementMode,
}

impl TrafficView for CentralizedView<'_> {
    fn datacenters(&self) -> u32 {
        self.ctx.topo.datacenters().len() as u32
    }
    fn q_avg(&self, p: PartitionId) -> f64 {
        self.ctx.smoother.q_avg(p)
    }
    fn traffic(&self, dc: DatacenterId, p: PartitionId) -> f64 {
        self.ctx.smoother.traffic(dc, p)
    }
    fn outflow(&self, dc: DatacenterId, p: PartitionId) -> f64 {
        self.ctx.smoother.outflow(dc, p)
    }
    fn unserved(&self, p: PartitionId) -> f64 {
        self.ctx.accounts.unserved[p.index()]
    }
    fn candidate(&self, p: PartitionId, dc: DatacenterId) -> Option<ServerId> {
        match self.placement {
            PlacementMode::Traffic => best_candidate_in_dc(
                self.ctx.topo,
                self.manager,
                self.ctx.blocking,
                self.use_blocking,
                p,
                dc,
            ),
            PlacementMode::DomainSpread => {
                most_spread_in_dc(self.ctx.topo, self.manager, p, dc, self.ctx.blocking)
            }
        }
    }
    fn bootstrap_candidate(&self, p: PartitionId, holder_dc: DatacenterId) -> Option<ServerId> {
        match self.placement {
            PlacementMode::Traffic => bootstrap_candidate_near(
                self.ctx.topo,
                self.manager,
                self.ctx.blocking,
                self.use_blocking,
                p,
                holder_dc,
            ),
            PlacementMode::DomainSpread => {
                // Same neighbour-probe order as the stock bootstrap;
                // only the in-datacenter server choice is spread-aware.
                let mut neighbours: Vec<(DatacenterId, f64)> =
                    self.ctx.topo.graph().neighbours(holder_dc).collect();
                neighbours.sort_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0 .0.cmp(&b.0 .0))
                });
                neighbours
                    .into_iter()
                    .find_map(|(dc, _)| {
                        most_spread_in_dc(self.ctx.topo, self.manager, p, dc, self.ctx.blocking)
                    })
                    .or_else(|| {
                        most_spread_in_dc(
                            self.ctx.topo,
                            self.manager,
                            p,
                            holder_dc,
                            self.ctx.blocking,
                        )
                    })
            }
        }
    }
    fn blocking_of(&self, s: ServerId) -> f64 {
        self.ctx.blocking.get(s.index()).copied().unwrap_or(f64::NAN)
    }
    fn spread_penalty(&self, p: PartitionId, dc: DatacenterId) -> u32 {
        match self.placement {
            PlacementMode::Traffic => 0,
            PlacementMode::DomainSpread => self
                .manager
                .replicas(p)
                .iter()
                .filter(|&&s| self.ctx.topo.servers()[s.index()].datacenter == dc)
                .count() as u32,
        }
    }
}

/// The RFH decision agent over the centralized (simulator) view.
#[derive(Debug, Clone, Default)]
pub struct RfhPolicy {
    core: RfhDecisionCore,
    /// Whether the Erlang-B blocking probability (eq. 18) drives the
    /// in-datacenter server choice. Disabled by the `ablation_blocking`
    /// study, which falls back to the lowest-id accepting server.
    use_blocking: bool,
    /// Worker pool for the parallel decision pass; `None` (or a
    /// single-worker pool) keeps the pass on the calling thread.
    pool: Option<Arc<WorkerPool>>,
    /// Server-selection variant; [`PlacementMode::Traffic`] is the
    /// paper's RFH.
    placement: PlacementMode,
}

impl RfhPolicy {
    /// Create the agent with the default suicide grace of 5 epochs.
    pub fn new() -> Self {
        Self::with_grace(5)
    }

    /// Override the suicide grace period (0 disables it) — exposed for
    /// the ablation benchmarks.
    pub fn with_grace(grace_epochs: u64) -> Self {
        RfhPolicy {
            core: RfhDecisionCore::new(grace_epochs),
            use_blocking: true,
            pool: None,
            placement: PlacementMode::default(),
        }
    }

    /// Select the placement variant. [`PlacementMode::DomainSpread`]
    /// turns this agent into the "Spread" policy: the same Fig. 2
    /// decision tree, with candidate targets scored by failure-domain
    /// spread before traffic.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementMode) -> Self {
        self.placement = placement;
        self
    }

    /// Set the placement variant in place.
    pub fn set_placement(&mut self, placement: PlacementMode) {
        self.placement = placement;
    }

    /// The trace/report label for the current placement variant.
    fn label(&self) -> &'static str {
        match self.placement {
            PlacementMode::Traffic => "RFH",
            PlacementMode::DomainSpread => "Spread",
        }
    }

    /// Fan the per-partition evaluation out over `pool` — decisions are
    /// bit-identical to the serial pass for any pool size.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attach (or detach) the decision-pass worker pool in place.
    pub fn set_pool(&mut self, pool: Option<Arc<WorkerPool>>) {
        self.pool = pool;
    }

    /// Disable (or re-enable) the blocking-probability server choice —
    /// the `ablation_blocking` knob. With it off, RFH picks the
    /// lowest-id accepting server in the chosen datacenter.
    pub fn set_blocking_choice(&mut self, enabled: bool) {
        self.use_blocking = enabled;
    }
}

impl ReplicationPolicy for RfhPolicy {
    fn name(&self) -> &'static str {
        self.label()
    }

    fn decide(&mut self, ctx: &EpochContext<'_>, manager: &ReplicaManager) -> Vec<Action> {
        let r_min =
            min_replica_count(ctx.config.failure_rate, ctx.config.min_availability) as usize;
        let label = self.label();
        let view = CentralizedView {
            ctx,
            manager,
            use_blocking: self.use_blocking,
            placement: self.placement,
        };
        match (self.pool.as_deref(), ctx.active) {
            (Some(pool), Some(active)) if pool.size() > 1 => self.core.decide_set_pooled(
                ctx.epoch,
                &ctx.config.thresholds,
                r_min,
                ctx.topo,
                manager,
                ctx.view,
                &view,
                ctx.recorder,
                label,
                active,
                pool,
            ),
            (_, Some(active)) => self.core.decide_set(
                ctx.epoch,
                &ctx.config.thresholds,
                r_min,
                ctx.topo,
                manager,
                ctx.view,
                &view,
                ctx.recorder,
                label,
                active,
            ),
            (Some(pool), None) if pool.size() > 1 => self.core.decide_all_pooled(
                ctx.epoch,
                &ctx.config.thresholds,
                r_min,
                ctx.topo,
                manager,
                ctx.view,
                &view,
                ctx.recorder,
                label,
                pool,
            ),
            (_, None) => self.core.decide_all(
                ctx.epoch,
                &ctx.config.thresholds,
                r_min,
                ctx.topo,
                manager,
                ctx.view,
                &view,
                ctx.recorder,
                label,
            ),
        }
    }

    fn keeps_live(
        &self,
        topo: &Topology,
        smoother: &rfh_traffic::TrafficSmoother,
        manager: &ReplicaManager,
        r_min: usize,
        p: PartitionId,
    ) -> bool {
        // Frozen iff: replica count exactly at the floor (no growth
        // trigger, no suicide headroom — eq. 15's scan requires
        // `reachable > r_min`), q̄ decayed to exact zero (the overload
        // gate of eq. 12 needs `q̄ > 0`), every idle streak saturated at
        // [`SUICIDE_PATIENCE`] (re-evaluating is idempotent thanks to
        // the cap), and every non-primary replica's datacenter traffic
        // at exact zero (so eq. 15 candidacy — hence the streak state —
        // cannot change). Under those conditions a dense sweep provably
        // emits no action and mutates nothing, epoch after epoch, until
        // new demand or a fault dirties the partition. Smoother cells
        // may be lazily-stale upper bounds; a stale nonzero keeps the
        // partition live, which is the safe direction.
        if manager.replica_count(p) != r_min {
            return true;
        }
        if smoother.q_avg(p) != 0.0 {
            return true;
        }
        let holder = manager.holder(p);
        if self.core.any_streak_unsaturated(manager, holder, p) {
            return true;
        }
        manager.replicas(p).iter().any(|&s| {
            s != holder && smoother.traffic(topo.servers()[s.index()].datacenter, p) != 0.0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;

    #[test]
    fn availability_floor_replicates_toward_traffic() {
        let h = Harness::paper_small();
        let mut pol = RfhPolicy::new();
        let manager = h.manager.clone();
        // Demand for partition 0 from Asia (DC 8 = I): the forwarding
        // chain I→E→D→A lights up.
        let parts = h.epoch_with_load(&manager, |l| {
            l.add(PartitionId::new(0), DatacenterId::new(8), 40);
        });
        let ctx = parts.ctx(&h);
        let actions = pol.decide(&ctx, &manager);
        // Partition 0 is under r_min → exactly one replicate for it; it
        // must land in a DC that actually carries its traffic.
        let replicate = actions
            .iter()
            .find_map(|a| match *a {
                Action::Replicate { partition, target } if partition.index() == 0 => Some(target),
                _ => None,
            })
            .expect("floor replication for the queried partition");
        let dc = ctx.topo.servers()[replicate.index()].datacenter;
        assert!(
            ctx.smoother.traffic(dc, PartitionId::new(0)) > 0.0,
            "target DC {dc} carries no traffic for the partition"
        );
    }

    #[test]
    fn floor_bootstrap_without_traffic_goes_to_a_close_neighbour() {
        // A partition nobody queries still gets its second replica (the
        // availability floor): the holder probes its WAN neighbours and
        // places the copy in the closest foreign datacenter — level-5
        // availability diversity even before any traffic flows.
        let h = Harness::paper_small();
        let mut pol = RfhPolicy::new();
        let (parts, manager) = h.quiet_epoch();
        let ctx = parts.ctx(&h);
        let actions = pol.decide(&ctx, &manager);
        assert_eq!(actions.len(), manager.partitions() as usize);
        for a in actions {
            let Action::Replicate { partition, target } = a else {
                panic!("expected replicate, got {a:?}");
            };
            let holder_dc = ctx.topo.servers()[manager.holder(partition).index()].datacenter;
            let target_dc = ctx.topo.servers()[target.index()].datacenter;
            assert_ne!(target_dc, holder_dc, "{partition}: diversity required");
            assert!(
                ctx.topo.graph().neighbours(holder_dc).any(|(d, _)| d == target_dc),
                "{partition}: bootstrap must go to a WAN neighbour"
            );
        }
    }

    #[test]
    fn overloaded_holder_replicates_to_top_hub() {
        let h = Harness::paper_small();
        let mut pol = RfhPolicy::new();
        let (mut manager, p) = (h.manager.clone(), PartitionId::new(0));
        // Reach r_min first so the floor step does not mask the hub step.
        let floor_parts = h.epoch_with_load(&manager, |l| {
            l.add(p, DatacenterId::new(8), 60);
        });
        let ctx = floor_parts.ctx(&h);
        for a in pol.decide(&ctx, &manager) {
            manager.apply(&h.topo, a).unwrap();
        }
        assert!(manager.replica_count(p) >= 2);

        // Sustained Asian demand far above total capacity: the holder
        // stays overloaded and the hubs must attract the next replicas.
        let mut placed_dcs: Vec<u32> = Vec::new();
        for _ in 0..6 {
            let parts = h.epoch_with_load(&manager, |l| {
                l.add(p, DatacenterId::new(8), 60);
            });
            let ctx = parts.ctx(&h);
            for a in pol.decide(&ctx, &manager) {
                if let Action::Replicate { partition, target } = a {
                    if partition == p {
                        placed_dcs.push(ctx.topo.servers()[target.index()].datacenter.0);
                    }
                }
                let _ = manager.apply(&h.topo, a);
            }
        }
        assert!(!placed_dcs.is_empty(), "overload must trigger hub replication");
        for dc in placed_dcs {
            assert!(
                ctx_traffic_nonzero(&h, &manager, p, dc),
                "replica placed in a DC with no traffic: {dc}"
            );
        }
    }

    fn ctx_traffic_nonzero(
        h: &Harness,
        manager: &crate::manager::ReplicaManager,
        p: PartitionId,
        dc: u32,
    ) -> bool {
        let parts = h.epoch_with_load(manager, |l| {
            l.add(p, DatacenterId::new(8), 60);
        });
        parts.smoother.traffic(DatacenterId::new(dc), p) > 0.0
            || parts.accounts.dc_traffic.get(dc as usize, p.index()) > 0.0
    }

    #[test]
    fn idle_replicas_suicide_but_floor_survives() {
        let h = Harness::paper_small();
        let mut pol = RfhPolicy::with_grace(0);
        let (_, mut manager) = h.epoch_at_r_min();
        let p = PartitionId::new(0);
        // Grow partition 0 beyond the floor.
        for target in [
            h.topo.alive_servers_in(DatacenterId::new(3)).next().unwrap().id,
            h.topo.alive_servers_in(DatacenterId::new(5)).next().unwrap().id,
        ] {
            if manager.can_accept(p, target) {
                manager.apply(&h.topo, Action::Replicate { partition: p, target }).unwrap();
            }
        }
        let start = manager.replica_count(p);
        assert!(start >= 3);
        // Epoch after epoch of zero demand: replicas above the floor
        // suicide (after the idle streak accrues); the floor (2) holds.
        for _ in 0..20 {
            let parts = h.epoch_with_load(&manager, |_| {});
            let ctx = parts.ctx(&h);
            for a in pol.decide(&ctx, &manager) {
                manager.apply(&h.topo, a).unwrap();
            }
        }
        assert_eq!(manager.replica_count(p), 2, "shrinks to r_min, not below");
    }

    #[test]
    fn suicide_waits_for_an_idle_streak() {
        let h = Harness::paper_small();
        let mut pol = RfhPolicy::with_grace(0);
        let (_, mut manager) = h.epoch_at_r_min();
        let p = PartitionId::new(0);
        let target = h.topo.alive_servers_in(DatacenterId::new(3)).next().unwrap().id;
        manager.apply(&h.topo, Action::Replicate { partition: p, target }).unwrap();
        // Fewer quiet epochs than SUICIDE_PATIENCE: nothing dies.
        for _ in 0..(SUICIDE_PATIENCE as usize - 1) {
            let parts = h.epoch_with_load(&manager, |_| {});
            let ctx = parts.ctx(&h);
            let actions = pol.decide(&ctx, &manager);
            assert!(
                actions.iter().all(|a| !matches!(a, Action::Suicide { .. })),
                "suicide before the patience streak: {actions:?}"
            );
        }
        // One more quiet epoch completes the streak.
        let parts = h.epoch_with_load(&manager, |_| {});
        let ctx = parts.ctx(&h);
        let actions = pol.decide(&ctx, &manager);
        assert!(actions.iter().any(|a| matches!(a, Action::Suicide { .. })));
    }

    #[test]
    fn grace_period_protects_fresh_replicas() {
        let h = Harness::paper_small();
        let mut pol = RfhPolicy::with_grace(100);
        let (_, mut manager) = h.epoch_at_r_min();
        let p = PartitionId::new(0);
        // Make the policy itself place a replica (so it records a birth).
        let parts = h.epoch_with_load(&manager, |l| {
            l.add(p, DatacenterId::new(8), 60);
        });
        let ctx = parts.ctx(&h);
        let actions = pol.decide(&ctx, &manager);
        let mut placed = None;
        for a in &actions {
            if let Action::Replicate { partition, target } = *a {
                if partition == p {
                    placed = Some(target);
                }
            }
            let _ = manager.apply(&h.topo, *a);
        }
        let Some(placed) = placed else {
            return; // holder wasn't overloaded enough; nothing to test
        };
        for _ in 0..8 {
            let parts = h.epoch_with_load(&manager, |_| {});
            let ctx = parts.ctx(&h);
            for a in pol.decide(&ctx, &manager) {
                if let Action::Suicide { server, .. } = a {
                    assert_ne!(server, placed, "grace must protect the fresh replica");
                }
                let _ = manager.apply(&h.topo, a);
            }
        }
    }

    #[test]
    fn partition_isolated_replicas_never_suicide() {
        use rfh_types::{DatacenterId, ServerId};
        let mut h = Harness::paper_small();
        let mut pol = RfhPolicy::with_grace(0);
        let mut manager = h.manager.clone();
        let p = PartitionId::new(0);
        let holder_dc = h.topo.servers()[manager.holder(p).index()].datacenter;
        // Two extra replicas: X in a DC we will isolate, Y elsewhere.
        let mut others = (0..10).map(DatacenterId::new).filter(|&d| d != holder_dc).map(|d| d.0);
        let iso_dc = DatacenterId::new(others.next().unwrap());
        let y_dc = DatacenterId::new(others.next().unwrap());
        let pick = |topo: &rfh_topology::Topology, dc: DatacenterId| -> ServerId {
            topo.alive_servers_in(dc).next().unwrap().id
        };
        let x = pick(&h.topo, iso_dc);
        manager.apply(&h.topo, Action::Replicate { partition: p, target: x }).unwrap();
        manager.begin_epoch();
        let y = pick(&h.topo, y_dc);
        manager.apply(&h.topo, Action::Replicate { partition: p, target: y }).unwrap();
        assert_eq!(manager.replica_count(p), 3, "r_min is 2; one spare above the floor");

        // Cut X's datacenter off the WAN. Zero demand everywhere: under
        // eq. 15 alone the spare replica would die once the idle streak
        // accrues — degraded mode must hold the whole set instead,
        // because only two copies are still reachable from the holder.
        let cut = h.topo.isolate_island(&[iso_dc]);
        assert!(!cut.is_empty());
        for _ in 0..12 {
            let parts = h.epoch_with_load(&manager, |_| {});
            let ctx = parts.ctx(&h);
            for a in pol.decide(&ctx, &manager) {
                if let Action::Suicide { partition, .. } = a {
                    assert_ne!(partition, p, "suicide while partition-isolated");
                }
            }
        }
        assert_eq!(manager.replica_count(p), 3);

        // Heal the cut: every copy is reachable again, the spare is
        // fair game and the set shrinks back to the floor.
        for (a, b) in cut {
            h.topo.set_link_state(a, b, true).unwrap();
        }
        for _ in 0..12 {
            manager.begin_epoch();
            let parts = h.epoch_with_load(&manager, |_| {});
            let ctx = parts.ctx(&h);
            for a in pol.decide(&ctx, &manager) {
                if matches!(a, Action::Suicide { partition, .. } if partition == p) {
                    manager.apply(&h.topo, a).unwrap();
                }
            }
        }
        assert_eq!(manager.replica_count(p), 2, "healed WAN resumes eq. 15");
    }

    #[test]
    fn quiet_cluster_at_equilibrium_does_nothing() {
        let h = Harness::paper_small();
        let mut pol = RfhPolicy::new();
        let (parts, manager) = h.epoch_at_r_min();
        let ctx = parts.ctx(&h);
        assert!(pol.decide(&ctx, &manager).is_empty());
    }
}
