//! The RFH decision predicates (eqs. 12, 13, 15, 16).
//!
//! All four compare *smoothed* traffic against multiples of the smoothed
//! system query average `q̄_it`:
//!
//! ```text
//! holder overloaded:  tr_iit ≥ β·q̄_it,  β > 1        (eq. 12)
//! traffic hub:        tr_ikt ≥ γ·q̄_it,  γ > 1        (eq. 13)
//! suicide candidate:  tr_ikt ≤ δ·q̄_it                 (eq. 15)
//! migration benefit:  tr_ij − tr_ik ≥ μ·t̄r_i          (eq. 16)
//! ```

use rfh_types::Thresholds;

/// eq. (12): is the partition holder overloaded?
#[inline]
pub fn holder_overloaded(t: &Thresholds, holder_traffic: f64, q_avg: f64) -> bool {
    q_avg > 0.0 && holder_traffic >= t.beta * q_avg
}

/// eq. (13): does a forwarding node qualify as a traffic hub?
#[inline]
pub fn is_traffic_hub(t: &Thresholds, node_traffic: f64, q_avg: f64) -> bool {
    q_avg > 0.0 && node_traffic >= t.gamma * q_avg
}

/// eq. (15): is a replica's traffic light enough to consider suicide?
/// (The availability floor is checked separately.)
#[inline]
pub fn suicide_candidate(t: &Thresholds, node_traffic: f64, q_avg: f64) -> bool {
    node_traffic <= t.delta * q_avg
}

/// eq. (16): does moving a replica from traffic `tr_from` to a location
/// with traffic `tr_to` clear the migration-benefit bar `μ·t̄r`?
#[inline]
pub fn migration_beneficial(t: &Thresholds, tr_to: f64, tr_from: f64, mean_traffic: f64) -> bool {
    tr_to - tr_from >= t.mu * mean_traffic && mean_traffic > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Thresholds {
        Thresholds::default() // α=0.2, β=2, γ=1.5, δ=0.2, μ=1, φ=0.7
    }

    #[test]
    fn holder_overload_boundary() {
        // q̄ = 10, β = 2 → overloaded at exactly 20.
        assert!(!holder_overloaded(&t(), 19.9, 10.0));
        assert!(holder_overloaded(&t(), 20.0, 10.0));
        assert!(holder_overloaded(&t(), 100.0, 10.0));
    }

    #[test]
    fn hub_boundary() {
        // q̄ = 10, γ = 1.5 → hub at exactly 15.
        assert!(!is_traffic_hub(&t(), 14.9, 10.0));
        assert!(is_traffic_hub(&t(), 15.0, 10.0));
    }

    #[test]
    fn hub_bar_is_lower_than_overload_bar() {
        // γ < β by design: forwarding nodes announce themselves before
        // the holder melts down.
        let th = t();
        assert!(th.gamma < th.beta);
        assert!(is_traffic_hub(&th, 16.0, 10.0));
        assert!(!holder_overloaded(&th, 16.0, 10.0));
    }

    #[test]
    fn suicide_boundary() {
        // q̄ = 10, δ = 0.2 → candidates at ≤ 2.
        assert!(suicide_candidate(&t(), 2.0, 10.0));
        assert!(suicide_candidate(&t(), 0.0, 10.0));
        assert!(!suicide_candidate(&t(), 2.1, 10.0));
    }

    #[test]
    fn quiet_system_neither_overloads_nor_hubs() {
        // q̄ = 0 (no demand): nothing is overloaded, nothing is a hub,
        // and every idle replica is a suicide candidate.
        assert!(!holder_overloaded(&t(), 5.0, 0.0));
        assert!(!is_traffic_hub(&t(), 5.0, 0.0));
        assert!(suicide_candidate(&t(), 0.0, 0.0));
    }

    #[test]
    fn migration_benefit_boundary() {
        // t̄r = 10, μ = 1 → benefit needs a gap of at least 10.
        assert!(migration_beneficial(&t(), 25.0, 15.0, 10.0));
        assert!(!migration_beneficial(&t(), 24.9, 15.0, 10.0));
        assert!(!migration_beneficial(&t(), 15.0, 25.0, 10.0), "negative gap");
        assert!(!migration_beneficial(&t(), 25.0, 15.0, 0.0), "no baseline traffic");
    }
}
