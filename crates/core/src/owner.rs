//! The owner-oriented baseline.
//!
//! "The coordinator will consider maximizing availability while
//! minimizing replication cost. … it is better to choose a different
//! datacenter close to the primary partition owner to replicate on"
//! (§II-A, in the spirit of PAST / CFS / Overlook, refs [7][11][12][13]).
//!
//! Placement ranks candidates by:
//! 1. the *minimum availability level* against the existing replica set
//!    (higher first — a different datacenter beats a different room,
//!    etc., per the label scheme);
//! 2. replication cost from the holder, i.e. distance (closer first);
//! 3. server id (determinism).
//!
//! Migration "actually happens only when physical nodes are added into
//! or removed from the system" (§III-D) — replica loss on failure is
//! handled by re-replication (the availability floor), so this policy
//! emits no migrations and no suicides.

use crate::manager::ReplicaManager;
use crate::policy::{Action, EpochContext, ReplicationPolicy};
use crate::random::{growth_event, UNSERVED_TRIGGER};
use crate::selection::accepting_servers_anywhere;
use rfh_stats::min_replica_count;
use rfh_types::{PartitionId, ServerId};

/// The owner-oriented placement baseline.
#[derive(Debug, Clone, Default)]
pub struct OwnerOrientedPolicy;

impl OwnerOrientedPolicy {
    /// Create the policy.
    pub fn new() -> Self {
        Self
    }

    /// Pick the best target per the availability-then-cost ranking.
    fn pick_target(
        ctx: &EpochContext<'_>,
        manager: &ReplicaManager,
        p: PartitionId,
    ) -> Option<ServerId> {
        let holder = manager.holder(p);
        let replicas = manager.replicas(p);
        accepting_servers_anywhere(ctx.topo, manager, p).into_iter().max_by(|&a, &b| {
            let key = |s: ServerId| {
                let min_level = replicas
                    .iter()
                    .map(|&r| ctx.topo.availability_level(s, r).map(|l| l.value()).unwrap_or(1))
                    .min()
                    .unwrap_or(5);
                let dist = ctx.topo.server_distance_km(s, holder).unwrap_or(f64::MAX);
                (min_level, dist)
            };
            let (la, da) = key(a);
            let (lb, db) = key(b);
            la.cmp(&lb)
                .then_with(|| db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| b.cmp(&a))
        })
    }
}

impl ReplicationPolicy for OwnerOrientedPolicy {
    fn name(&self) -> &'static str {
        "Owner"
    }

    fn decide(&mut self, ctx: &EpochContext<'_>, manager: &ReplicaManager) -> Vec<Action> {
        let r_min =
            min_replica_count(ctx.config.failure_rate, ctx.config.min_availability) as usize;
        let mut actions = Vec::new();
        // Sparse active set when offered; every skipped partition is at
        // the floor with zero unserved demand, so the dense loop would
        // `continue` on it anyway.
        let sweep: Box<dyn Iterator<Item = u32>> = match ctx.active {
            Some(active) => Box::new(active.iter().copied()),
            None => Box::new(0..manager.partitions()),
        };
        for p_idx in sweep {
            let p = PartitionId::new(p_idx);
            let needs_growth = manager.replica_count(p) < r_min
                || ctx.accounts.unserved[p.index()] > UNSERVED_TRIGGER;
            if !needs_growth {
                continue;
            }
            if let Some(target) = Self::pick_target(ctx, manager, p) {
                if ctx.recorder.enabled() {
                    ctx.recorder.decision(growth_event(ctx, manager, "Owner", p, target, r_min));
                }
                actions.push(Action::Replicate { partition: p, target });
            }
        }
        actions
    }

    fn keeps_live(
        &self,
        _topo: &rfh_topology::Topology,
        _smoother: &rfh_traffic::TrafficSmoother,
        manager: &ReplicaManager,
        r_min: usize,
        p: PartitionId,
    ) -> bool {
        // Same growth predicate as the random baseline: below the floor
        // it acts unconditionally, above it only on unserved residual,
        // which requires this epoch's demand (a dirtied partition). No
        // migration, no suicide, no per-partition state.
        manager.replica_count(p) < r_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;

    #[test]
    fn prefers_foreign_datacenter_close_to_holder() {
        let h = Harness::paper_small();
        let mut policy = OwnerOrientedPolicy::new();
        let (ctx_parts, manager) = h.quiet_epoch();
        let ctx = ctx_parts.ctx(&h);
        let actions = policy.decide(&ctx, &manager);
        assert_eq!(actions.len(), manager.partitions() as usize, "r_min growth");
        for a in actions {
            let Action::Replicate { partition, target } = a else {
                panic!("owner policy only replicates, got {a:?}");
            };
            let holder = manager.holder(partition);
            let holder_dc = ctx.topo.servers()[holder.index()].datacenter;
            let target_dc = ctx.topo.servers()[target.index()].datacenter;
            // Level 5 placement: a different datacenter…
            assert_ne!(holder_dc, target_dc, "first extra replica goes off-site");
            // …and among foreign DCs, (one of) the closest.
            let d_target = ctx.topo.distance_km(holder_dc, target_dc).unwrap();
            let d_min = ctx
                .topo
                .datacenters()
                .iter()
                .filter(|dc| dc.id != holder_dc)
                .map(|dc| ctx.topo.distance_km(holder_dc, dc.id).unwrap())
                .fold(f64::INFINITY, f64::min);
            assert!(
                d_target <= d_min + 1.0,
                "{partition}: went {d_target} km when {d_min} km was available"
            );
        }
    }

    #[test]
    fn second_growth_step_keeps_diversity() {
        let h = Harness::paper_small();
        let mut policy = OwnerOrientedPolicy::new();
        let (mut ctx_parts, manager) = h.epoch_at_r_min();
        // Partition 0 is under-served: owner grows it once more.
        ctx_parts.accounts.unserved[0] = 5.0;
        let ctx = ctx_parts.ctx(&h);
        let actions = policy.decide(&ctx, &manager);
        assert_eq!(actions.len(), 1);
        let Action::Replicate { partition, target } = actions[0] else {
            panic!("expected replicate");
        };
        assert_eq!(partition.index(), 0);
        // The new copy avoids every server already hosting the partition.
        assert!(!manager.hosts(partition, target));
    }

    #[test]
    fn no_actions_when_satisfied() {
        let h = Harness::paper_small();
        let mut policy = OwnerOrientedPolicy::new();
        let (ctx_parts, manager) = h.epoch_at_r_min();
        let ctx = ctx_parts.ctx(&h);
        assert!(policy.decide(&ctx, &manager).is_empty());
    }
}
