//! # rfh-core
//!
//! The paper's primary contribution: the RFH decision agent (Fig. 2) —
//! plus the three baseline algorithms it is evaluated against and the
//! replica manager that executes their decisions.
//!
//! * [`manager`] — the authoritative replica map: who holds which
//!   partition, storage occupancy (eq. 19's `φ` cap), per-epoch transfer
//!   budgets, and the replication / migration cost model (eq. 1).
//! * [`policy`] — the `ReplicationPolicy` trait: once per epoch each
//!   policy reads the traffic accounts and emits replicate / migrate /
//!   suicide actions.
//! * [`thresholds`] — the decision predicates: holder overload (eq. 12),
//!   traffic hub (eq. 13), suicide (eq. 15), migration benefit (eq. 16).
//! * [`blocking`] — the per-server Erlang-B blocking probabilities
//!   (eq. 18) RFH uses to pick a concrete server inside a datacenter.
//! * [`rfh`] — the RFH decision tree itself.
//! * [`random`] — the random baseline (Dynamo-style ring successors,
//!   geographically random; refs [4][21][22]).
//! * [`owner`] — the owner-oriented baseline (maximize availability
//!   level per replication cost near the holder; refs [7][11][12][13]).
//! * [`request`] — the request-oriented baseline (replicate near the
//!   top-3 requesters, Gnutella-style; refs [16][5]).

#![warn(missing_docs)]

pub mod blocking;
pub mod manager;
pub mod owner;
pub mod policy;
pub mod random;
pub mod request;
pub mod rfh;
mod selection;
#[cfg(test)]
mod test_support;
pub mod thresholds;

pub use blocking::server_blocking_probabilities;
pub use manager::{AppliedAction, PruneOutcome, ReplicaManager};
pub use owner::OwnerOrientedPolicy;
pub use policy::{Action, EpochContext, PolicyKind, ReplicationPolicy};
pub use random::RandomPolicy;
pub use request::RequestOrientedPolicy;
pub use rfh::{best_candidate_in_dc, PlacementMode, RfhDecisionCore, RfhPolicy, TrafficView};
