//! Per-server blocking probabilities (eq. 18).
//!
//! "In each epoch, each physical node *i* leverages its computational
//! ability and also records query information. It calculates the average
//! value of λ_i and τ_i and then gets blocking probability BP_i
//! periodically." RFH then picks, within the chosen datacenter, the
//! server with the lowest BP (and a virtual node "will not choose a
//! crowded server either").
//!
//! Model: a server is an M/G/c/c loss system.
//! * The *offered load* `a_i = λ_i·τ_i` is its observed query load this
//!   epoch divided by the per-replica service rate — i.e. how many
//!   replica-capacity units of work arrive.
//! * The *processing limit* `c_i` scales with the server's capacity
//!   factor: `c_i = round(base_slots · factor)`, with
//!   [`BASE_SLOTS`] = 10 parallel service slots for a nominal server.
//!
//! Busier and weaker servers therefore report higher BP and attract
//! fewer replicas, which is the load-balancing mechanism Fig. 8
//! measures.

use rfh_stats::erlang_b;
use rfh_topology::Topology;
use rfh_traffic::TrafficAccounts;
use rfh_types::ServerId;

/// Service slots of a nominal (factor 1.0) server.
pub const BASE_SLOTS: f64 = 10.0;

/// Compute every server's blocking probability for this epoch.
///
/// `service_rate` is the per-replica capacity (queries/epoch) used to
/// convert observed load into Erlangs. Dead servers report BP = 1.0 so
/// no selection rule can prefer them.
pub fn server_blocking_probabilities(
    topo: &Topology,
    accounts: &TrafficAccounts,
    service_rate: f64,
) -> Vec<f64> {
    assert!(service_rate > 0.0, "service rate must be positive");
    topo.servers()
        .iter()
        .map(|srv| {
            if !srv.alive {
                return 1.0;
            }
            let load = accounts.server_load(ServerId::new(srv.id.0));
            let offered = load / service_rate;
            let slots = (BASE_SLOTS * srv.capacity_factor).round().max(1.0) as u32;
            erlang_b(offered, slots)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_topology::TopologyBuilder;
    use rfh_traffic::{PlacementView, TrafficEngine};
    use rfh_types::{Continent, GeoPoint, PartitionId};
    use rfh_workload::QueryLoad;

    fn topo_two_servers() -> Topology {
        let mut b = TopologyBuilder::new();
        b.datacenter("A", Continent::NorthAmerica, "USA", "A1", GeoPoint::new(0.0, 0.0), 1, 1, 2)
            .unwrap();
        b.build(0.0, 0).unwrap()
    }

    fn accounts_with_load(topo: &Topology, load_s0: u32) -> TrafficAccounts {
        let mut load = QueryLoad::zeros(1, 1);
        load.add(PartitionId::new(0), rfh_types::DatacenterId::new(0), load_s0);
        let mut view = PlacementView::new(1, 2, vec![ServerId::new(0)]);
        view.add_capacity(PartitionId::new(0), ServerId::new(0), 1000.0);
        let mut engine = TrafficEngine::new();
        engine.account(topo, &load, &view);
        engine.into_accounts()
    }

    #[test]
    fn idle_servers_block_nothing() {
        let t = topo_two_servers();
        let acc = accounts_with_load(&t, 0);
        let bp = server_blocking_probabilities(&t, &acc, 20.0);
        assert_eq!(bp, vec![0.0, 0.0]);
    }

    #[test]
    fn busier_server_blocks_more() {
        let t = topo_two_servers();
        // Server 0 serves 100 queries; server 1 serves none.
        let acc = accounts_with_load(&t, 100);
        let bp = server_blocking_probabilities(&t, &acc, 20.0);
        assert!(bp[0] > 0.0, "loaded server has non-zero BP: {bp:?}");
        assert_eq!(bp[1], 0.0);
        assert!(bp[0] < 1.0);
        // More load → more blocking.
        let acc2 = accounts_with_load(&t, 500);
        let bp2 = server_blocking_probabilities(&t, &acc2, 20.0);
        assert!(bp2[0] > bp[0]);
    }

    #[test]
    fn dead_servers_report_certain_blocking() {
        let mut t = topo_two_servers();
        t.fail_server(ServerId::new(1)).unwrap();
        let acc = accounts_with_load(&t, 10);
        let bp = server_blocking_probabilities(&t, &acc, 20.0);
        assert_eq!(bp[1], 1.0);
    }

    #[test]
    fn capacity_factor_raises_slots() {
        // A stronger server (factor > 1) blocks less at the same load.
        let mut b = TopologyBuilder::new();
        b.datacenter("A", Continent::NorthAmerica, "USA", "A1", GeoPoint::new(0.0, 0.0), 1, 1, 2)
            .unwrap();
        let t = b.build(0.4, 12345).unwrap(); // factors differ
        let f0 = t.servers()[0].capacity_factor;
        let f1 = t.servers()[1].capacity_factor;
        assert_ne!(f0, f1);
        // Hand the same served load to both by constructing accounts
        // directly via the traffic pass with both hosting replicas.
        let mut load = QueryLoad::zeros(2, 1);
        load.add(PartitionId::new(0), rfh_types::DatacenterId::new(0), 80);
        load.add(PartitionId::new(1), rfh_types::DatacenterId::new(0), 80);
        let mut view = PlacementView::new(2, 2, vec![ServerId::new(0), ServerId::new(1)]);
        view.add_capacity(PartitionId::new(0), ServerId::new(0), 80.0);
        view.add_capacity(PartitionId::new(1), ServerId::new(1), 80.0);
        let mut engine = TrafficEngine::new();
        let acc = engine.account(&t, &load, &view).clone();
        assert_eq!(acc.server_load(ServerId::new(0)), 80.0);
        assert_eq!(acc.server_load(ServerId::new(1)), 80.0);
        let bp = server_blocking_probabilities(&t, &acc, 20.0);
        if f0 > f1 {
            assert!(bp[0] <= bp[1], "stronger server must not block more: {bp:?}");
        } else {
            assert!(bp[1] <= bp[0], "stronger server must not block more: {bp:?}");
        }
    }

    #[test]
    #[should_panic(expected = "service rate")]
    fn zero_service_rate_rejected() {
        let t = topo_two_servers();
        let acc = accounts_with_load(&t, 0);
        let _ = server_blocking_probabilities(&t, &acc, 0.0);
    }
}
