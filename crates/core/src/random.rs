//! The random baseline.
//!
//! "Most of the current Cloud storage systems replicate each data item
//! at a fixed number of physically distinct nodes in a static way" —
//! Dynamo-style: "replicate data at the N−1 clockwise successor nodes.
//! Although adjacent in node ID space, these replicas are actually
//! randomly chosen considering geographical location" (§II-A, refs
//! [4][21][22]).
//!
//! Behaviour:
//! * keeps the availability floor `r_min` by walking the partition's
//!   ring successor list (the Dynamo preference list — a geographically
//!   random but deterministic permutation of the servers);
//! * when demand goes unserved, adds one more successor-list replica per
//!   partition per epoch (all four algorithms are demand-adaptive so
//!   they face the same workload; what differs is *placement*);
//! * never migrates, never suicides — exactly what Figs. 6–7 show
//!   (zero migration activity).

use crate::manager::ReplicaManager;
use crate::policy::{Action, EpochContext, ReplicationPolicy};
use rfh_obs::{DecisionEvent, DecisionKind, Trigger};
use rfh_ring::ConsistentHashRing;
use rfh_stats::min_replica_count;
use rfh_types::{PartitionId, ServerId};

/// Residual demand (queries/epoch) that triggers growth.
pub(crate) const UNSERVED_TRIGGER: f64 = 0.5;

/// The trace event for a baseline growth decision: below the floor it is
/// an availability replication (count vs `r_min`), otherwise an
/// unserved-demand one (residual vs [`UNSERVED_TRIGGER`]). Shared by the
/// owner and random baselines, which grow on the same predicate.
pub(crate) fn growth_event(
    ctx: &EpochContext<'_>,
    manager: &ReplicaManager,
    policy: &'static str,
    p: PartitionId,
    target: ServerId,
    r_min: usize,
) -> DecisionEvent {
    let below_floor = manager.replica_count(p) < r_min;
    let unserved = ctx.accounts.unserved[p.index()];
    let (trigger, traffic, threshold) = if below_floor {
        (Trigger::AvailabilityFloor, manager.replica_count(p) as f64, r_min as f64)
    } else {
        (Trigger::UnservedDemand, unserved, UNSERVED_TRIGGER)
    };
    DecisionEvent {
        target: Some(target.0),
        traffic,
        threshold,
        q_avg: ctx.smoother.q_avg(p),
        blocking: ctx.blocking.get(target.index()).copied().unwrap_or(f64::NAN),
        unserved,
        ..DecisionEvent::new(ctx.epoch.raw(), policy, DecisionKind::Replicate, p.0, trigger)
    }
}

/// The random placement baseline.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    ring: ConsistentHashRing,
}

impl RandomPolicy {
    /// Build over the ring the cluster was placed with.
    pub fn new(ring: ConsistentHashRing) -> Self {
        RandomPolicy { ring }
    }
}

impl ReplicationPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn decide(&mut self, ctx: &EpochContext<'_>, manager: &ReplicaManager) -> Vec<Action> {
        let r_min =
            min_replica_count(ctx.config.failure_rate, ctx.config.min_availability) as usize;
        let mut actions = Vec::new();
        // Sparse active set when offered; every skipped partition is at
        // the floor with zero unserved demand, so the dense loop would
        // `continue` on it anyway.
        let sweep: Box<dyn Iterator<Item = u32>> = match ctx.active {
            Some(active) => Box::new(active.iter().copied()),
            None => Box::new(0..manager.partitions()),
        };
        for p_idx in sweep {
            let p = PartitionId::new(p_idx);
            let needs_growth = manager.replica_count(p) < r_min
                || ctx.accounts.unserved[p.index()] > UNSERVED_TRIGGER;
            if !needs_growth {
                continue;
            }
            // Next unused, alive, accepting server on the preference
            // list; the list is a pseudo-random permutation, so this is
            // the "randomly chosen considering geographical location"
            // placement.
            let Ok(preference) = self.ring.successors(p, self.ring.server_count()) else {
                continue;
            };
            let target = preference.into_iter().find(|&s| {
                s.index() < ctx.topo.server_count()
                    && ctx.topo.servers()[s.index()].alive
                    && manager.can_accept(p, s)
            });
            if let Some(target) = target {
                if ctx.recorder.enabled() {
                    ctx.recorder.decision(growth_event(ctx, manager, "Random", p, target, r_min));
                }
                actions.push(Action::Replicate { partition: p, target });
            }
        }
        actions
    }

    fn keeps_live(
        &self,
        _topo: &rfh_topology::Topology,
        _smoother: &rfh_traffic::TrafficSmoother,
        manager: &ReplicaManager,
        r_min: usize,
        p: PartitionId,
    ) -> bool {
        // Below the floor the policy acts every epoch regardless of
        // demand; at or above it, growth needs unserved residual, which
        // only a queried (hence dirtied) partition can have. The policy
        // never migrates or suicides and keeps no per-partition state,
        // so nothing else can change while frozen.
        manager.replica_count(p) < r_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use rfh_types::ServerId;

    #[test]
    fn grows_to_availability_floor() {
        let h = Harness::paper_small();
        let mut policy = RandomPolicy::new(h.ring.clone());
        // No queries at all: only the r_min floor drives replication.
        let (ctx_parts, manager) = h.quiet_epoch();
        let ctx = ctx_parts.ctx(&h);
        let actions = policy.decide(&ctx, &manager);
        // Every partition has 1 replica < r_min = 2 → one action each.
        assert_eq!(actions.len(), manager.partitions() as usize);
        assert!(actions.iter().all(|a| matches!(a, Action::Replicate { .. })));
    }

    #[test]
    fn grows_on_unserved_demand_only_for_affected_partition() {
        let h = Harness::paper_small();
        let mut policy = RandomPolicy::new(h.ring.clone());
        let (mut ctx_parts, manager) = h.epoch_at_r_min();
        ctx_parts.accounts.unserved[3] = 10.0;
        let ctx = ctx_parts.ctx(&h);
        let actions = policy.decide(&ctx, &manager);
        assert_eq!(actions.len(), 1);
        match actions[0] {
            Action::Replicate { partition, target } => {
                assert_eq!(partition.index(), 3);
                assert!(!manager.hosts(partition, target));
                assert!(manager.can_accept(partition, target));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn never_migrates_or_suicides() {
        let h = Harness::paper_small();
        let mut policy = RandomPolicy::new(h.ring.clone());
        let (mut ctx_parts, manager) = h.epoch_at_r_min();
        // Saturate demand everywhere: still only replications.
        for u in &mut ctx_parts.accounts.unserved {
            *u = 100.0;
        }
        let ctx = ctx_parts.ctx(&h);
        for a in policy.decide(&ctx, &manager) {
            assert!(matches!(a, Action::Replicate { .. }));
        }
    }

    #[test]
    fn skips_dead_and_full_servers() {
        let mut h = Harness::paper_small();
        // Kill everything except the holders' servers and one spare.
        let keep: Vec<ServerId> = (0..h.topo.server_count() as u32).map(ServerId::new).collect();
        for &s in &keep[..keep.len() - 1] {
            let holders_use = (0..h.cfg.partitions)
                .any(|p| h.manager.holder(rfh_types::PartitionId::new(p)) == s);
            if !holders_use {
                h.topo.fail_server(s).unwrap();
            }
        }
        let mut policy = RandomPolicy::new(h.ring.clone());
        let (ctx_parts, manager) = h.quiet_epoch();
        let ctx = ctx_parts.ctx(&h);
        for a in policy.decide(&ctx, &manager) {
            if let Action::Replicate { target, .. } = a {
                assert!(ctx.topo.servers()[target.index()].alive);
            }
        }
    }
}
