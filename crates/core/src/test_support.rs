//! Shared fixtures for the policy unit tests.

use crate::manager::ReplicaManager;
use crate::policy::EpochContext;
use rfh_ring::ConsistentHashRing;
use rfh_topology::{paper_topology, Topology};
use rfh_traffic::{PlacementView, TrafficAccounts, TrafficEngine, TrafficSmoother};
use rfh_types::{Epoch, PartitionId, SimConfig};
use rfh_workload::QueryLoad;
use std::cell::RefCell;

/// A small paper-shaped cluster: the 10-DC topology with 8 partitions.
pub(crate) struct Harness {
    pub cfg: SimConfig,
    pub topo: Topology,
    pub ring: ConsistentHashRing,
    pub manager: ReplicaManager,
    /// Reused traffic engine: route/membership caches survive across
    /// the many epochs a single test assembles.
    engine: RefCell<TrafficEngine>,
}

/// The owned pieces an `EpochContext` borrows.
pub(crate) struct CtxParts {
    pub epoch: Epoch,
    pub load: QueryLoad,
    pub accounts: TrafficAccounts,
    pub smoother: TrafficSmoother,
    pub blocking: Vec<f64>,
    pub view: PlacementView,
}

impl CtxParts {
    /// Assemble the borrowed context.
    pub fn ctx<'a>(&'a self, h: &'a Harness) -> EpochContext<'a> {
        EpochContext {
            epoch: self.epoch,
            topo: &h.topo,
            load: &self.load,
            accounts: &self.accounts,
            smoother: &self.smoother,
            blocking: &self.blocking,
            view: &self.view,
            config: &h.cfg,
            recorder: &rfh_obs::NullRecorder,
            active: None,
        }
    }
}

impl Harness {
    /// Paper topology (100 servers), 8 partitions, capacity mean 5.
    pub fn paper_small() -> Self {
        let cfg = SimConfig { partitions: 8, replica_capacity_mean: 5.0, ..SimConfig::default() };
        let topo = paper_topology(0.0, 1).expect("preset builds");
        let mut ring = ConsistentHashRing::new(32);
        for s in topo.servers() {
            ring.join(s.id);
        }
        let holders = (0..cfg.partitions)
            .map(|p| ring.primary(PartitionId::new(p)).expect("non-empty ring"))
            .collect();
        let manager =
            ReplicaManager::new(&cfg, topo.server_count(), holders).expect("valid placement");
        Harness { cfg, topo, ring, manager, engine: RefCell::new(TrafficEngine::new()) }
    }

    fn parts_for(&self, manager: &ReplicaManager, load: QueryLoad) -> CtxParts {
        let view = manager.placement_view(&self.topo, self.cfg.replica_capacity_mean);
        let accounts = self.engine.borrow_mut().account(&self.topo, &load, &view).clone();
        let mut smoother = TrafficSmoother::new(
            self.cfg.partitions,
            self.topo.datacenters().len() as u32,
            self.cfg.thresholds.alpha,
        );
        smoother.update(&load, &accounts);
        let blocking = crate::blocking::server_blocking_probabilities(
            &self.topo,
            &accounts,
            self.cfg.replica_capacity_mean,
        );
        CtxParts { epoch: Epoch::ZERO, load, accounts, smoother, blocking, view }
    }

    /// An epoch with zero queries, manager at initial placement.
    pub fn quiet_epoch(&self) -> (CtxParts, ReplicaManager) {
        let manager = self.manager.clone();
        let load = QueryLoad::zeros(self.cfg.partitions, self.topo.datacenters().len() as u32);
        (self.parts_for(&manager, load), manager)
    }

    /// An epoch with zero queries, manager grown to the availability
    /// floor (2 replicas per partition).
    pub fn epoch_at_r_min(&self) -> (CtxParts, ReplicaManager) {
        let mut manager = self.manager.clone();
        for p_idx in 0..self.cfg.partitions {
            let p = PartitionId::new(p_idx);
            let pref = self.ring.successors(p, 4).expect("ring populated");
            let target =
                pref.into_iter().find(|&s| manager.can_accept(p, s)).expect("spare server exists");
            manager
                .apply(&self.topo, crate::policy::Action::Replicate { partition: p, target })
                .expect("placement fits");
        }
        let load = QueryLoad::zeros(self.cfg.partitions, self.topo.datacenters().len() as u32);
        (self.parts_for(&manager, load), manager)
    }

    /// An epoch whose query matrix the caller fills in; traffic and
    /// smoothing are computed against `manager`'s placement.
    pub fn epoch_with_load(
        &self,
        manager: &ReplicaManager,
        fill: impl FnOnce(&mut QueryLoad),
    ) -> CtxParts {
        let mut load = QueryLoad::zeros(self.cfg.partitions, self.topo.datacenters().len() as u32);
        fill(&mut load);
        self.parts_for(manager, load)
    }
}
