//! The request-oriented baseline.
//!
//! "Request-oriented … encourages replicating data on datacenters near
//! to the requesters with the highest query rate. … It will randomly
//! choose a node among the top 3 ones to replicate on. The migration
//! process is started when another node without any replica joins in
//! the list of the top 3." (§II-A; Gnutella-style, refs [16][5].)

use crate::manager::ReplicaManager;
use crate::policy::{Action, EpochContext, ReplicationPolicy};
use crate::random::UNSERVED_TRIGGER;
use crate::selection::accepting_servers_in_dc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfh_obs::{DecisionEvent, DecisionKind, Trigger};
use rfh_stats::min_replica_count;
use rfh_types::{DatacenterId, PartitionId};

/// History weight of the requester-rate EWMA. Deliberately heavier than
/// the paper's α = 0.2 traffic smoothing: the top-3 requester set must
/// rank *datacenters*, whose per-partition query counts are small and
/// Poisson-noisy, and a flappy top-3 would trigger spurious migrations
/// every epoch.
const RATE_HISTORY_WEIGHT: f64 = 0.85;

/// §III-D: a replica migrates "to a server that has much more queries
/// than the former one" — the destination's requester rate must exceed
/// the current location's by this factor.
const MIGRATION_RATE_MARGIN: f64 = 2.0;

/// The request-oriented placement baseline.
#[derive(Debug, Clone)]
pub struct RequestOrientedPolicy {
    /// Smoothed per-(partition, dc) query rates, so the top-3 set does
    /// not flap on Poisson noise. Under sparse sweeps rows of inactive
    /// partitions are lazily decayed: [`Self::stamps`] records the last
    /// pass a row was folded, and reactivation folds the missing
    /// all-zero observations in closed form — bit-identical to having
    /// folded them one epoch at a time.
    rates: Vec<f64>,
    /// Pass number at which each partition's rate row was last folded.
    stamps: Vec<u64>,
    /// Update passes taken so far (dense or sparse).
    pass: u64,
    partitions: u32,
    dcs: u32,
    rng: StdRng,
}

impl RequestOrientedPolicy {
    /// Create the policy for the given shape; `seed` drives the random
    /// choice among the top 3.
    pub fn new(partitions: u32, dcs: u32, seed: u64) -> Self {
        RequestOrientedPolicy {
            rates: vec![0.0; partitions as usize * dcs as usize],
            stamps: vec![0; partitions as usize],
            pass: 0,
            partitions,
            dcs,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    #[inline]
    fn rate(&self, p: PartitionId, dc: DatacenterId) -> f64 {
        self.rates[p.index() * self.dcs as usize + dc.index()]
    }

    /// Minimum smoothed rate (queries/epoch) for a datacenter to count
    /// as an active requester at all; keeps long-decayed history from
    /// occupying top-3 slots.
    const ACTIVE_RATE: f64 = 0.05;

    /// Top-3 requester datacenters of a partition by smoothed rate,
    /// highest first; DCs below [`Self::ACTIVE_RATE`] are excluded.
    fn top3(&self, p: PartitionId) -> Vec<DatacenterId> {
        let row = &self.rates[p.index() * self.dcs as usize..][..self.dcs as usize];
        let mut idx: Vec<usize> =
            (0..self.dcs as usize).filter(|&j| row[j] >= Self::ACTIVE_RATE).collect();
        idx.sort_by(|&a, &b| {
            row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.cmp(&b))
        });
        idx.truncate(3);
        idx.into_iter().map(|j| DatacenterId::new(j as u32)).collect()
    }

    /// Fold one partition's rate row up to the current pass: first the
    /// zero observations of any passes it sat out (closed-form, bitwise
    /// what the epoch-at-a-time folds would have produced), then this
    /// pass's observation.
    fn observe_partition(&mut self, load: &rfh_workload::QueryLoad, pu: u32) {
        let p = pu as usize;
        let stamp = self.stamps[p];
        let gap = self.pass - 1 - stamp;
        self.stamps[p] = self.pass;
        let base = p * self.dcs as usize;
        for j in 0..self.dcs {
            let cell = &mut self.rates[base + j as usize];
            if gap > 0 {
                *cell = rfh_stats::decay_zeros(RATE_HISTORY_WEIGHT, *cell, gap);
            }
            let obs = load.get(PartitionId::new(pu), DatacenterId::new(j)) as f64;
            *cell = RATE_HISTORY_WEIGHT * *cell + (1.0 - RATE_HISTORY_WEIGHT) * obs;
        }
    }

    fn update_rates(&mut self, ctx: &EpochContext<'_>) {
        self.pass += 1;
        for p in 0..self.partitions {
            self.observe_partition(ctx.load, p);
        }
    }

    fn update_rates_active(&mut self, load: &rfh_workload::QueryLoad, active: &[u32]) {
        self.pass += 1;
        for &p in active {
            self.observe_partition(load, p);
        }
    }
}

impl ReplicationPolicy for RequestOrientedPolicy {
    fn name(&self) -> &'static str {
        "Request"
    }

    fn decide(&mut self, ctx: &EpochContext<'_>, manager: &ReplicaManager) -> Vec<Action> {
        match ctx.active {
            Some(active) => self.update_rates_active(ctx.load, active),
            None => self.update_rates(ctx),
        }
        let r_min =
            min_replica_count(ctx.config.failure_rate, ctx.config.min_availability) as usize;
        let mut actions = Vec::new();
        // Sparse active set when offered. A frozen partition has every
        // rate cell below [`Self::ACTIVE_RATE`] (the stale cells only
        // overestimate the decayed truth), so its top-3 is empty: the
        // dense loop would take neither the growth nor the migration
        // branch and — crucially for the shared RNG stream — draw no
        // random numbers for it.
        let sweep: Box<dyn Iterator<Item = u32>> = match ctx.active {
            Some(active) => Box::new(active.iter().copied()),
            None => Box::new(0..manager.partitions()),
        };
        for p_idx in sweep {
            let p = PartitionId::new(p_idx);
            let top3 = self.top3(p);

            let needs_growth = manager.replica_count(p) < r_min
                || ctx.accounts.unserved[p.index()] > UNSERVED_TRIGGER;
            if needs_growth && !top3.is_empty() {
                // Random choice among the top 3 — but only a DC whose
                // *local* requester demand still exceeds the capacity of
                // the replicas already parked there. A requester-local
                // replica serves (almost) only its own datacenter's
                // queries, so piling more copies into a saturated
                // requester DC cannot absorb anything (this is exactly
                // the paper's critique: "it cannot guarantee replica
                // utilization rate since those other requesters will
                // have a lower chance to access these replicas").
                let cap = ctx.config.replica_capacity_mean;
                let mut order: Vec<DatacenterId> = top3
                    .iter()
                    .copied()
                    .filter(|&dc| {
                        let local_capacity = manager
                            .replicas(p)
                            .iter()
                            .filter(|&&s| ctx.topo.servers()[s.index()].datacenter == dc)
                            .count() as f64
                            * cap;
                        self.rate(p, dc) > local_capacity
                    })
                    .collect();
                // Fisher-Yates on ≤ 3 entries.
                for i in (1..order.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    order.swap(i, j);
                }
                'dcs: for dc in order {
                    let candidates = accepting_servers_in_dc(ctx.topo, manager, p, dc);
                    if !candidates.is_empty() {
                        let target = candidates[self.rng.gen_range(0..candidates.len())];
                        if ctx.recorder.enabled() {
                            ctx.recorder.decision(DecisionEvent {
                                target: Some(target.0),
                                // The requester DC's smoothed rate vs the
                                // active-requester bar.
                                traffic: self.rate(p, dc),
                                threshold: Self::ACTIVE_RATE,
                                q_avg: ctx.smoother.q_avg(p),
                                blocking: ctx
                                    .blocking
                                    .get(target.index())
                                    .copied()
                                    .unwrap_or(f64::NAN),
                                unserved: ctx.accounts.unserved[p.index()],
                                ..DecisionEvent::new(
                                    ctx.epoch.raw(),
                                    "Request",
                                    DecisionKind::Replicate,
                                    p.0,
                                    Trigger::RequesterTop3,
                                )
                            });
                        }
                        actions.push(Action::Replicate { partition: p, target });
                        break 'dcs;
                    }
                }
            } else if !needs_growth {
                // Migration trigger (§II-A): "the migration process is
                // started when another node without any replica joins in
                // the list of the top 3" — i.e. whenever a top-3
                // requester DC lacks a replica while one idles outside
                // the top 3, move it. The condition persists until the
                // placement matches the demand, which is what makes this
                // baseline migrate so much under flash crowds.
                let uncovered: Vec<DatacenterId> = top3
                    .iter()
                    .copied()
                    .filter(|&dc| {
                        !manager
                            .replicas(p)
                            .iter()
                            .any(|&s| ctx.topo.servers()[s.index()].datacenter == dc)
                    })
                    .collect();
                if let Some(&dest_dc) = uncovered.first() {
                    let holder = manager.holder(p);
                    // §III-D: only migrate to "much more queries than the
                    // former one" — compare requester rates at both ends.
                    let dest_rate = self.rate(p, dest_dc);
                    let victim = manager.replicas(p).iter().copied().find(|&s| {
                        s != holder && {
                            let dc = ctx.topo.servers()[s.index()].datacenter;
                            !top3.contains(&dc)
                                && dest_rate >= MIGRATION_RATE_MARGIN * self.rate(p, dc).max(0.05)
                        }
                    });
                    if let Some(from) = victim {
                        let candidates = accepting_servers_in_dc(ctx.topo, manager, p, dest_dc);
                        if !candidates.is_empty() {
                            let to = candidates[self.rng.gen_range(0..candidates.len())];
                            if ctx.recorder.enabled() {
                                let from_dc = ctx.topo.servers()[from.index()].datacenter;
                                ctx.recorder.decision(DecisionEvent {
                                    source: Some(from.0),
                                    target: Some(to.0),
                                    // §III-D: destination rate vs the
                                    // margin over the victim's rate.
                                    traffic: dest_rate,
                                    threshold: MIGRATION_RATE_MARGIN
                                        * self.rate(p, from_dc).max(0.05),
                                    q_avg: ctx.smoother.q_avg(p),
                                    blocking: ctx
                                        .blocking
                                        .get(to.index())
                                        .copied()
                                        .unwrap_or(f64::NAN),
                                    unserved: ctx.accounts.unserved[p.index()],
                                    ..DecisionEvent::new(
                                        ctx.epoch.raw(),
                                        "Request",
                                        DecisionKind::Migrate,
                                        p.0,
                                        Trigger::Top3Shift,
                                    )
                                });
                            }
                            actions.push(Action::Migrate { partition: p, from, to });
                        }
                    }
                }
            }
        }
        actions
    }

    fn keeps_live(
        &self,
        _topo: &rfh_topology::Topology,
        _smoother: &rfh_traffic::TrafficSmoother,
        _manager: &ReplicaManager,
        _r_min: usize,
        p: PartitionId,
    ) -> bool {
        // Live while any requester rate could still put a DC in the
        // top-3. With every cell below the bar the top-3 is empty and
        // the dense sweep is inert for this partition: the growth
        // branch needs a non-empty top-3 (even below the floor — this
        // baseline only ever places near requesters), the migration
        // branch needs an uncovered top-3 entry, and neither touches
        // the RNG. Cells decay monotonically while unqueried, so the
        // possibly-stale read only errs toward keeping the partition
        // live.
        let row = &self.rates[p.index() * self.dcs as usize..][..self.dcs as usize];
        row.iter().any(|&r| r >= Self::ACTIVE_RATE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;

    fn policy(h: &Harness) -> RequestOrientedPolicy {
        RequestOrientedPolicy::new(h.cfg.partitions, h.topo.datacenters().len() as u32, 7)
    }

    #[test]
    fn replicates_into_a_top3_requester_dc() {
        let h = Harness::paper_small();
        let mut pol = policy(&h);
        let manager = h.manager.clone();
        // Partition 0 queried heavily from DCs 7, 8, 9.
        let parts = h.epoch_with_load(&manager, |l| {
            l.add(PartitionId::new(0), DatacenterId::new(7), 50);
            l.add(PartitionId::new(0), DatacenterId::new(8), 30);
            l.add(PartitionId::new(0), DatacenterId::new(9), 20);
            l.add(PartitionId::new(0), DatacenterId::new(1), 2);
        });
        let ctx = parts.ctx(&h);
        let actions = pol.decide(&ctx, &manager);
        // Partition 0 grows (count 1 < r_min); target must be in 7/8/9.
        let target_dcs: Vec<u32> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Replicate { partition, target } if partition.index() == 0 => {
                    Some(ctx.topo.servers()[target.index()].datacenter.0)
                }
                _ => None,
            })
            .collect();
        assert_eq!(target_dcs.len(), 1);
        assert!([7, 8, 9].contains(&target_dcs[0]), "got DC {}", target_dcs[0]);
    }

    #[test]
    fn no_demand_no_growth_targets() {
        // With zero demand everywhere there is no top-3, so even the
        // r_min floor cannot act (the paper's request-oriented scheme
        // only ever places replicas near requesters).
        let h = Harness::paper_small();
        let mut pol = policy(&h);
        let (parts, manager) = h.quiet_epoch();
        let ctx = parts.ctx(&h);
        assert!(pol.decide(&ctx, &manager).is_empty());
    }

    #[test]
    fn migrates_when_top3_shifts() {
        let h = Harness::paper_small();
        let mut pol = policy(&h);
        let mut manager = h.manager.clone();
        let p = PartitionId::new(0);

        // Epoch 1: demand from DC 8 — replica lands there (r_min growth).
        let parts = h.epoch_with_load(&manager, |l| {
            l.add(p, DatacenterId::new(8), 60);
        });
        let ctx = parts.ctx(&h);
        let actions = pol.decide(&ctx, &manager);
        for a in actions {
            manager.apply(&h.topo, a).unwrap();
        }
        assert_eq!(manager.replica_count(p), 2);
        let replica_dc = |m: &ReplicaManager| {
            m.replicas(p)
                .iter()
                .map(|&s| h.topo.servers()[s.index()].datacenter.0)
                .collect::<Vec<u32>>()
        };
        assert!(replica_dc(&manager).contains(&8));

        // Several epochs of *modest* demand from DC 2 only (small enough
        // that the holder serves it, so the growth trigger stays quiet):
        // the smoothed top-3 eventually flips to {2}, DC 2 is uncovered,
        // and the replica parked at 8 must migrate there.
        let mut migrated = false;
        for _ in 0..60 {
            let parts = h.epoch_with_load(&manager, |l| {
                l.add(p, DatacenterId::new(2), 4);
            });
            let ctx = parts.ctx(&h);
            for a in pol.decide(&ctx, &manager) {
                if let Action::Migrate { partition, from, to } = a {
                    assert_eq!(partition, p);
                    assert_eq!(h.topo.servers()[from.index()].datacenter.0, 8);
                    assert_eq!(h.topo.servers()[to.index()].datacenter.0, 2);
                    migrated = true;
                }
                manager.apply(&h.topo, a).unwrap();
            }
            if migrated {
                break;
            }
        }
        assert!(migrated, "request-oriented must chase the requesters");
    }

    #[test]
    fn deterministic_under_seed() {
        let h = Harness::paper_small();
        let run = || {
            let mut pol = policy(&h);
            let manager = h.manager.clone();
            let parts = h.epoch_with_load(&manager, |l| {
                l.add(PartitionId::new(1), DatacenterId::new(4), 40);
                l.add(PartitionId::new(1), DatacenterId::new(5), 30);
            });
            let ctx = parts.ctx(&h);
            pol.decide(&ctx, &manager)
        };
        assert_eq!(run(), run());
    }
}
