//! Shared server-selection helpers used by the policies.

use crate::manager::ReplicaManager;
use rfh_topology::Topology;
use rfh_types::{DatacenterId, PartitionId, ServerId};

/// Alive servers in `dc` that can accept a replica of `p` (not hosting
/// one already, storage under φ), ascending id.
pub(crate) fn accepting_servers_in_dc(
    topo: &Topology,
    manager: &ReplicaManager,
    p: PartitionId,
    dc: DatacenterId,
) -> Vec<ServerId> {
    topo.alive_servers_in(dc).map(|s| s.id).filter(|&s| manager.can_accept(p, s)).collect()
}

/// The candidate with the lowest blocking probability (ties toward the
/// lower id, so selection is deterministic).
pub(crate) fn least_blocked(candidates: &[ServerId], blocking: &[f64]) -> Option<ServerId> {
    candidates.iter().copied().min_by(|&a, &b| {
        blocking[a.index()]
            .partial_cmp(&blocking[b.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    })
}

/// The least-blocked accepting server in `dc`, if any.
pub(crate) fn least_blocked_in_dc(
    topo: &Topology,
    manager: &ReplicaManager,
    p: PartitionId,
    dc: DatacenterId,
    blocking: &[f64],
) -> Option<ServerId> {
    let candidates = accepting_servers_in_dc(topo, manager, p, dc);
    least_blocked(&candidates, blocking)
}

/// The accepting server in `dc` that maximizes failure-domain spread
/// for `p`'s current replica set: prefer a room hosting no replica of
/// `p`, then a rack hosting none, then the lowest blocking probability,
/// then the lowest id — so a correlated rack or room outage takes out
/// as few copies as the datacenter's geometry allows. Deterministic by
/// the same total-order argument as [`least_blocked`].
pub(crate) fn most_spread_in_dc(
    topo: &Topology,
    manager: &ReplicaManager,
    p: PartitionId,
    dc: DatacenterId,
    blocking: &[f64],
) -> Option<ServerId> {
    // Rooms and racks are dense per-datacenter indices, so occupancy
    // only compares within `dc`; rack keys carry the room to stay
    // robust to per-room rack numbering.
    let occupied: Vec<(u32, u32)> = manager
        .replicas(p)
        .iter()
        .map(|&s| &topo.servers()[s.index()])
        .filter(|s| s.datacenter == dc)
        .map(|s| (s.room.0, s.rack.0))
        .collect();
    accepting_servers_in_dc(topo, manager, p, dc).into_iter().min_by(|&a, &b| {
        let key = |s: ServerId| {
            let srv = &topo.servers()[s.index()];
            let room_taken = occupied.iter().any(|&(room, _)| room == srv.room.0);
            let rack_taken =
                occupied.iter().any(|&(room, rack)| room == srv.room.0 && rack == srv.rack.0);
            (room_taken, rack_taken)
        };
        key(a)
            .cmp(&key(b))
            .then_with(|| {
                blocking[a.index()]
                    .partial_cmp(&blocking[b.index()])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.cmp(&b))
    })
}

/// Every alive server able to accept a replica of `p`, cluster-wide.
pub(crate) fn accepting_servers_anywhere(
    topo: &Topology,
    manager: &ReplicaManager,
    p: PartitionId,
) -> Vec<ServerId> {
    topo.servers()
        .iter()
        .filter(|s| s.alive)
        .map(|s| s.id)
        .filter(|&s| manager.can_accept(p, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_topology::TopologyBuilder;
    use rfh_types::{Continent, GeoPoint, SimConfig};

    fn setup() -> (Topology, ReplicaManager) {
        let mut b = TopologyBuilder::new();
        b.datacenter("A", Continent::NorthAmerica, "USA", "A1", GeoPoint::new(0.0, 0.0), 1, 1, 3)
            .unwrap();
        let topo = b.build(0.0, 0).unwrap();
        let cfg = SimConfig { partitions: 1, ..SimConfig::default() };
        let manager = ReplicaManager::new(&cfg, 3, vec![ServerId::new(0)]).unwrap();
        (topo, manager)
    }

    #[test]
    fn accepting_excludes_hosts_and_dead() {
        let (mut topo, manager) = setup();
        let p = PartitionId::new(0);
        let dc = DatacenterId::new(0);
        let c = accepting_servers_in_dc(&topo, &manager, p, dc);
        assert_eq!(c, vec![ServerId::new(1), ServerId::new(2)], "holder excluded");
        topo.fail_server(ServerId::new(1)).unwrap();
        let c = accepting_servers_in_dc(&topo, &manager, p, dc);
        assert_eq!(c, vec![ServerId::new(2)]);
    }

    #[test]
    fn least_blocked_breaks_ties_by_id() {
        let ids = [ServerId::new(2), ServerId::new(1)];
        let blocking = [0.9, 0.1, 0.1];
        assert_eq!(least_blocked(&ids, &blocking), Some(ServerId::new(1)));
        assert_eq!(least_blocked(&[], &blocking), None);
        let blocking2 = [0.9, 0.5, 0.1];
        assert_eq!(least_blocked(&ids, &blocking2), Some(ServerId::new(2)));
    }

    #[test]
    fn anywhere_spans_the_cluster() {
        let (topo, manager) = setup();
        let c = accepting_servers_anywhere(&topo, &manager, PartitionId::new(0));
        assert_eq!(c.len(), 2);
    }
}
