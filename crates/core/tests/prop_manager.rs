//! Property-based fuzzing of the replica manager: arbitrary action
//! sequences never violate the structural invariants.

use proptest::prelude::*;
use rfh_core::{Action, ReplicaManager};
use rfh_topology::{paper_topology, Topology};
use rfh_types::{PartitionId, ServerId, SimConfig};

const PARTITIONS: u32 = 8;
const SERVERS: u32 = 100;

fn setup() -> (Topology, ReplicaManager) {
    let topo = paper_topology(0.0, 3).unwrap();
    let cfg = SimConfig { partitions: PARTITIONS, ..SimConfig::default() };
    let holders = (0..PARTITIONS).map(|p| ServerId::new(p * 7 % SERVERS)).collect();
    let manager = ReplicaManager::new(&cfg, SERVERS as usize, holders).unwrap();
    (topo, manager)
}

/// A fuzz opcode; indices are reduced modulo the live state.
#[derive(Debug, Clone)]
enum Op {
    Replicate { p: u32, target: u32 },
    Migrate { p: u32, from_idx: u32, target: u32 },
    Suicide { p: u32, victim_idx: u32 },
    BeginEpoch,
    FailServer { s: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..PARTITIONS, 0..SERVERS).prop_map(|(p, target)| Op::Replicate { p, target }),
        (0..PARTITIONS, 0..8u32, 0..SERVERS).prop_map(|(p, from_idx, target)| Op::Migrate {
            p,
            from_idx,
            target
        }),
        (0..PARTITIONS, 0..8u32).prop_map(|(p, victim_idx)| Op::Suicide { p, victim_idx }),
        Just(Op::BeginEpoch),
        (0..SERVERS).prop_map(|s| Op::FailServer { s }),
    ]
}

fn check_invariants(topo: &Topology, m: &ReplicaManager) {
    let mut per_server = vec![0u64; SERVERS as usize];
    for p_idx in 0..PARTITIONS {
        let p = PartitionId::new(p_idx);
        let replicas = m.replicas(p);
        assert!(!replicas.is_empty(), "{p} lost its last replica");
        assert_eq!(m.holder(p), replicas[0], "holder is the first replica");
        let mut sorted: Vec<u32> = replicas.iter().map(|s| s.0).collect();
        sorted.sort_unstable();
        let n = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "{p} has duplicate replicas");
        for &s in replicas {
            per_server[s.index()] += 1;
        }
    }
    // Storage accounting matches the replica map exactly, and never
    // exceeds φ.
    let cfg = SimConfig::default();
    for s in 0..SERVERS {
        let expect = per_server[s as usize] as f64 * cfg.partition_size.as_u64() as f64
            / cfg.max_server_storage.as_u64() as f64;
        let actual = m.storage_fraction(ServerId::new(s));
        assert!(
            (actual - expect).abs() < 1e-12,
            "server {s}: storage {actual} vs replica map {expect}"
        );
        assert!(actual <= cfg.thresholds.phi + 1e-12, "server {s} exceeds φ");
    }
    let _ = topo;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_survive_any_action_sequence(ops in proptest::collection::vec(arb_op(), 0..120)) {
        let (mut topo, mut manager) = setup();
        for op in ops {
            // Apply may reject; rejection must leave state unchanged —
            // the invariant check after each step verifies both paths.
            match op {
                Op::Replicate { p, target } => {
                    let _ = manager.apply(&topo, Action::Replicate {
                        partition: PartitionId::new(p),
                        target: ServerId::new(target),
                    });
                }
                Op::Migrate { p, from_idx, target } => {
                    let pid = PartitionId::new(p);
                    let replicas = manager.replicas(pid);
                    let from = replicas[from_idx as usize % replicas.len()];
                    let _ = manager.apply(&topo, Action::Migrate {
                        partition: pid,
                        from,
                        to: ServerId::new(target),
                    });
                }
                Op::Suicide { p, victim_idx } => {
                    let pid = PartitionId::new(p);
                    let replicas = manager.replicas(pid);
                    let victim = replicas[victim_idx as usize % replicas.len()];
                    let _ = manager.apply(&topo, Action::Suicide {
                        partition: pid,
                        server: victim,
                    });
                }
                Op::BeginEpoch => manager.begin_epoch(),
                Op::FailServer { s } => {
                    // Never kill the whole cluster: keep server 0 alive
                    // as the prune fallback.
                    if s != 0 {
                        let _ = topo.fail_server(ServerId::new(s));
                        manager.prune_dead(&topo, |_| Some(ServerId::new(0)));
                    }
                }
            }
            check_invariants(&topo, &manager);
            // Replicas never sit on dead servers after a prune.
            for p_idx in 0..PARTITIONS {
                for &s in manager.replicas(PartitionId::new(p_idx)) {
                    prop_assert!(topo.servers()[s.index()].alive);
                }
            }
        }
    }
}
