//! EWMA state of eqs. (9)–(11).
//!
//! "In order to compensate for steep changes of the query rate, we take
//! historical data into account and use a smoothing factor α":
//!
//! ```text
//! q̄_it  = α·q̄_i(t−1)  + (1 − α)·q_it         (eq. 10)
//! t̄r_ikt = α·t̄r_ik(t−1) + (1 − α)·tr_ikt      (eq. 11)
//! ```
//!
//! One smoother instance holds the per-partition smoothed system query
//! average and the per-(datacenter, partition) smoothed traffic the
//! decision thresholds (eqs. 12, 13, 15) compare against.

use crate::absorption::TrafficAccounts;
use rfh_types::{DatacenterId, PartitionId};
use rfh_workload::QueryLoad;

/// Smoothed query and traffic state across epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSmoother {
    alpha: f64,
    partitions: usize,
    dcs: usize,
    /// Smoothed `q̄_it` per partition; NaN marks "no observation yet".
    q_avg: Vec<f64>,
    /// Smoothed `t̄r_ikt`, `[dc][partition]` flattened; NaN marks unset.
    traffic: Vec<f64>,
    /// Smoothed forwarding traffic (outflow), same layout.
    outflow: Vec<f64>,
}

impl TrafficSmoother {
    /// New smoother for the given shape and smoothing factor α.
    pub fn new(partitions: u32, dcs: u32, alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha) && alpha.is_finite(),
            "alpha must be in [0, 1], got {alpha}"
        );
        TrafficSmoother {
            alpha,
            partitions: partitions as usize,
            dcs: dcs as usize,
            q_avg: vec![f64::NAN; partitions as usize],
            traffic: vec![f64::NAN; dcs as usize * partitions as usize],
            outflow: vec![f64::NAN; dcs as usize * partitions as usize],
        }
    }

    fn smooth(alpha: f64, prev: f64, obs: f64) -> f64 {
        if prev.is_nan() {
            obs
        } else {
            alpha * prev + (1.0 - alpha) * obs
        }
    }

    /// Fold one epoch's raw observations into the smoothed state.
    pub fn update(&mut self, load: &QueryLoad, accounts: &TrafficAccounts) {
        debug_assert_eq!(load.partitions() as usize, self.partitions);
        for p in 0..self.partitions {
            let obs = load.system_average(PartitionId::new(p as u32));
            self.q_avg[p] = Self::smooth(self.alpha, self.q_avg[p], obs);
        }
        for dc in 0..self.dcs {
            for p in 0..self.partitions {
                let i = dc * self.partitions + p;
                let obs = accounts.dc_traffic.get(dc, p);
                self.traffic[i] = Self::smooth(self.alpha, self.traffic[i], obs);
                let out = accounts.dc_outflow.get(dc, p);
                self.outflow[i] = Self::smooth(self.alpha, self.outflow[i], out);
            }
        }
    }

    /// Smoothed system query average `q̄_it` for a partition (eq. 10);
    /// zero before any update.
    pub fn q_avg(&self, p: PartitionId) -> f64 {
        let v = self.q_avg[p.index()];
        if v.is_nan() {
            0.0
        } else {
            v
        }
    }

    /// Smoothed traffic `t̄r_ikt` of a datacenter for a partition
    /// (eq. 11); zero before any update.
    pub fn traffic(&self, dc: DatacenterId, p: PartitionId) -> f64 {
        let v = self.traffic[dc.index() * self.partitions + p.index()];
        if v.is_nan() {
            0.0
        } else {
            v
        }
    }

    /// Smoothed *forwarding* traffic of a datacenter for a partition:
    /// the residual it passes onward after local absorption. This is the
    /// "most forwarding traffic" quantity RFH ranks hubs by (§I); zero
    /// before any update.
    pub fn outflow(&self, dc: DatacenterId, p: PartitionId) -> f64 {
        let v = self.outflow[dc.index() * self.partitions + p.index()];
        if v.is_nan() {
            0.0
        } else {
            v
        }
    }

    /// Average smoothed traffic over all datacenters for a partition —
    /// `t̄r_i` of eq. (17), the migration-benefit baseline.
    pub fn mean_traffic(&self, p: PartitionId) -> f64 {
        if self.dcs == 0 {
            return 0.0;
        }
        let sum: f64 = (0..self.dcs).map(|dc| self.traffic(DatacenterId::new(dc as u32), p)).sum();
        sum / self.dcs as f64
    }

    /// Forget the traffic history of one datacenter (used when all its
    /// servers failed: stale history must not drive decisions after
    /// recovery).
    pub fn reset_dc(&mut self, dc: DatacenterId) {
        for p in 0..self.partitions {
            self.traffic[dc.index() * self.partitions + p] = f64::NAN;
            self.outflow[dc.index() * self.partitions + p] = f64::NAN;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    fn p(i: u32) -> PartitionId {
        PartitionId::new(i)
    }
    fn d(i: u32) -> DatacenterId {
        DatacenterId::new(i)
    }

    /// Build a TrafficAccounts with chosen dc_traffic values.
    fn accounts(dcs: usize, parts: usize, cells: &[(usize, usize, f64)]) -> TrafficAccounts {
        let mut dc_traffic = Grid::zeros(dcs, parts);
        for &(dc, pp, v) in cells {
            dc_traffic.set(dc, pp, v);
        }
        TrafficAccounts {
            dc_traffic,
            dc_outflow: Grid::zeros(dcs, parts),
            served: Grid::zeros(1, parts),
            unserved: vec![0.0; parts],
            holder_dc: vec![DatacenterId::new(0); parts],
            hops_weighted: 0.0,
            latency_weighted_ms: 0.0,
            sla_within: 0.0,
            served_total: 0.0,
            unserved_total: 0.0,
        }
    }

    #[test]
    fn before_any_update_everything_is_zero() {
        let s = TrafficSmoother::new(4, 3, 0.2);
        assert_eq!(s.q_avg(p(0)), 0.0);
        assert_eq!(s.traffic(d(2), p(3)), 0.0);
        assert_eq!(s.mean_traffic(p(1)), 0.0);
    }

    #[test]
    fn first_update_initialises_without_bias() {
        let mut s = TrafficSmoother::new(1, 2, 0.2);
        let mut load = QueryLoad::zeros(1, 2);
        load.add(p(0), d(0), 10); // system average = 10/2 = 5
        let acc = accounts(2, 1, &[(0, 0, 8.0), (1, 0, 2.0)]);
        s.update(&load, &acc);
        assert_eq!(s.q_avg(p(0)), 5.0, "first observation taken as-is");
        assert_eq!(s.traffic(d(0), p(0)), 8.0);
        assert_eq!(s.traffic(d(1), p(0)), 2.0);
        assert_eq!(s.mean_traffic(p(0)), 5.0);
    }

    #[test]
    fn subsequent_updates_follow_eq_10_11() {
        let mut s = TrafficSmoother::new(1, 1, 0.2);
        let mut load = QueryLoad::zeros(1, 1);
        load.add(p(0), d(0), 10);
        s.update(&load, &accounts(1, 1, &[(0, 0, 10.0)]));
        // Second epoch: zero observation.
        let load2 = QueryLoad::zeros(1, 1);
        s.update(&load2, &accounts(1, 1, &[(0, 0, 0.0)]));
        // α·prev + (1−α)·obs = 0.2·10 + 0.8·0 = 2.
        assert!((s.q_avg(p(0)) - 2.0).abs() < 1e-12);
        assert!((s.traffic(d(0), p(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_dc_forgets_history() {
        let mut s = TrafficSmoother::new(1, 2, 0.5);
        let load = QueryLoad::zeros(1, 2);
        s.update(&load, &accounts(2, 1, &[(0, 0, 100.0), (1, 0, 40.0)]));
        s.reset_dc(d(0));
        assert_eq!(s.traffic(d(0), p(0)), 0.0);
        assert_eq!(s.traffic(d(1), p(0)), 40.0, "other DCs keep history");
        // The next observation re-initialises rather than smoothing
        // against stale state.
        s.update(&load, &accounts(2, 1, &[(0, 0, 10.0), (1, 0, 0.0)]));
        assert_eq!(s.traffic(d(0), p(0)), 10.0);
        assert_eq!(s.traffic(d(1), p(0)), 20.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn invalid_alpha_rejected() {
        let _ = TrafficSmoother::new(1, 1, 1.5);
    }
}
