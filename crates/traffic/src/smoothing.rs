//! EWMA state of eqs. (9)–(11).
//!
//! "In order to compensate for steep changes of the query rate, we take
//! historical data into account and use a smoothing factor α":
//!
//! ```text
//! q̄_it  = α·q̄_i(t−1)  + (1 − α)·q_it         (eq. 10)
//! t̄r_ikt = α·t̄r_ik(t−1) + (1 − α)·tr_ikt      (eq. 11)
//! ```
//!
//! One smoother instance holds the per-partition smoothed system query
//! average and the per-(datacenter, partition) smoothed traffic the
//! decision thresholds (eqs. 12, 13, 15) compare against.

use crate::absorption::TrafficAccounts;
use rfh_types::{DatacenterId, PartitionId};
use rfh_workload::QueryLoad;

/// Smoothed query and traffic state across epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSmoother {
    alpha: f64,
    partitions: usize,
    dcs: usize,
    /// Smoothed `q̄_it` per partition; NaN marks "no observation yet".
    q_avg: Vec<f64>,
    /// Smoothed `t̄r_ikt`, `[dc][partition]` flattened; NaN marks unset.
    traffic: Vec<f64>,
    /// Smoothed forwarding traffic (outflow), same layout.
    outflow: Vec<f64>,
    /// Sparse-update bookkeeping: the pass at which each partition's
    /// cells were last brought current (0 = never). Only
    /// [`update_active`](Self::update_active) maintains these.
    stamps: Vec<u64>,
    /// Number of [`update_active`](Self::update_active) passes so far.
    pass: u64,
    /// Pass at which each datacenter's history was last forgotten via
    /// [`reset_dc`](Self::reset_dc) (0 = never). Caps the zero-fold gap
    /// for that datacenter's cells: zeros before the reset are moot.
    dc_reset_pass: Vec<u64>,
}

impl TrafficSmoother {
    /// New smoother for the given shape and smoothing factor α.
    pub fn new(partitions: u32, dcs: u32, alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha) && alpha.is_finite(),
            "alpha must be in [0, 1], got {alpha}"
        );
        TrafficSmoother {
            alpha,
            partitions: partitions as usize,
            dcs: dcs as usize,
            q_avg: vec![f64::NAN; partitions as usize],
            traffic: vec![f64::NAN; dcs as usize * partitions as usize],
            outflow: vec![f64::NAN; dcs as usize * partitions as usize],
            stamps: vec![0; partitions as usize],
            pass: 0,
            dc_reset_pass: vec![0; dcs as usize],
        }
    }

    fn smooth(alpha: f64, prev: f64, obs: f64) -> f64 {
        if prev.is_nan() {
            obs
        } else {
            alpha * prev + (1.0 - alpha) * obs
        }
    }

    /// Fold one epoch's raw observations into the smoothed state.
    pub fn update(&mut self, load: &QueryLoad, accounts: &TrafficAccounts) {
        debug_assert_eq!(load.partitions() as usize, self.partitions);
        for p in 0..self.partitions {
            let obs = load.system_average(PartitionId::new(p as u32));
            self.q_avg[p] = Self::smooth(self.alpha, self.q_avg[p], obs);
        }
        for dc in 0..self.dcs {
            for p in 0..self.partitions {
                let i = dc * self.partitions + p;
                let obs = accounts.dc_traffic.get(dc, p);
                self.traffic[i] = Self::smooth(self.alpha, self.traffic[i], obs);
                let out = accounts.dc_outflow.get(dc, p);
                self.outflow[i] = Self::smooth(self.alpha, self.outflow[i], out);
            }
        }
    }

    /// Sparse variant of [`update`](Self::update): fold one epoch's
    /// observations for the `active` partitions only (sorted ascending,
    /// deduplicated), catching each one's cells up over the epochs it
    /// sat untouched first.
    ///
    /// An inactive partition carries no load and no traffic, so the
    /// dense pass would have fed its cells exact-zero observations every
    /// epoch. Those zero steps are folded lazily here via
    /// [`rfh_stats::decay_zeros`], which is bit-identical to the
    /// explicit recurrence — a smoother driven by `update_active` with
    /// supersets of the touched partitions equals one driven by the
    /// dense [`update`](Self::update), bit for bit, on every cell a
    /// decision ever reads (cells of partitions that were *never*
    /// active stay lazily unfolded until first activation).
    ///
    /// A smoother must be driven exclusively through `update` or
    /// exclusively through `update_active`; mixing the two desynchronises
    /// the pass stamps.
    pub fn update_active(&mut self, load: &QueryLoad, accounts: &TrafficAccounts, active: &[u32]) {
        debug_assert_eq!(load.partitions() as usize, self.partitions);
        debug_assert!(
            active.windows(2).all(|w| w[0] < w[1]),
            "active set must be sorted ascending and deduplicated"
        );
        self.pass += 1;
        let alpha = self.alpha;
        for &pu in active {
            let p = pu as usize;
            // Zero observations the dense pass would have applied since
            // this partition's cells were last brought current.
            let stamp = self.stamps[p];
            let gap = self.pass - 1 - stamp;
            self.stamps[p] = self.pass;

            let obs = load.system_average(PartitionId::new(pu));
            Self::fold_gap(alpha, &mut self.q_avg[p], gap);
            self.q_avg[p] = Self::smooth(alpha, self.q_avg[p], obs);

            for dc in 0..self.dcs {
                // A reset_dc wipes the cell to NaN; zeros that the dense
                // pass applied *before* the reset are irrelevant, so the
                // fold only covers epochs after the later of the two.
                let dc_gap = (self.pass - 1).saturating_sub(stamp.max(self.dc_reset_pass[dc]));
                let i = dc * self.partitions + p;
                let obs = accounts.dc_traffic.get(dc, p);
                Self::fold_gap(alpha, &mut self.traffic[i], dc_gap);
                self.traffic[i] = Self::smooth(alpha, self.traffic[i], obs);
                let out = accounts.dc_outflow.get(dc, p);
                Self::fold_gap(alpha, &mut self.outflow[i], dc_gap);
                self.outflow[i] = Self::smooth(alpha, self.outflow[i], out);
            }
        }
    }

    /// Apply `gap` zero-observation smoothing steps to one cell, exactly
    /// as `gap` dense updates with a 0.0 observation would have: an
    /// unset (NaN) cell is seeded to 0.0 by the first zero and every
    /// further step keeps it at exactly 0.0.
    fn fold_gap(alpha: f64, cell: &mut f64, gap: u64) {
        if gap == 0 {
            return;
        }
        *cell = if cell.is_nan() { 0.0 } else { rfh_stats::decay_zeros(alpha, *cell, gap) };
    }

    /// Smoothed system query average `q̄_it` for a partition (eq. 10);
    /// zero before any update.
    pub fn q_avg(&self, p: PartitionId) -> f64 {
        let v = self.q_avg[p.index()];
        if v.is_nan() {
            0.0
        } else {
            v
        }
    }

    /// Smoothed traffic `t̄r_ikt` of a datacenter for a partition
    /// (eq. 11); zero before any update.
    pub fn traffic(&self, dc: DatacenterId, p: PartitionId) -> f64 {
        let v = self.traffic[dc.index() * self.partitions + p.index()];
        if v.is_nan() {
            0.0
        } else {
            v
        }
    }

    /// Smoothed *forwarding* traffic of a datacenter for a partition:
    /// the residual it passes onward after local absorption. This is the
    /// "most forwarding traffic" quantity RFH ranks hubs by (§I); zero
    /// before any update.
    pub fn outflow(&self, dc: DatacenterId, p: PartitionId) -> f64 {
        let v = self.outflow[dc.index() * self.partitions + p.index()];
        if v.is_nan() {
            0.0
        } else {
            v
        }
    }

    /// Average smoothed traffic over all datacenters for a partition —
    /// `t̄r_i` of eq. (17), the migration-benefit baseline.
    pub fn mean_traffic(&self, p: PartitionId) -> f64 {
        if self.dcs == 0 {
            return 0.0;
        }
        let sum: f64 = (0..self.dcs).map(|dc| self.traffic(DatacenterId::new(dc as u32), p)).sum();
        sum / self.dcs as f64
    }

    /// Forget the traffic history of one datacenter (used when all its
    /// servers failed: stale history must not drive decisions after
    /// recovery).
    pub fn reset_dc(&mut self, dc: DatacenterId) {
        for p in 0..self.partitions {
            self.traffic[dc.index() * self.partitions + p] = f64::NAN;
            self.outflow[dc.index() * self.partitions + p] = f64::NAN;
        }
        self.dc_reset_pass[dc.index()] = self.pass;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    fn p(i: u32) -> PartitionId {
        PartitionId::new(i)
    }
    fn d(i: u32) -> DatacenterId {
        DatacenterId::new(i)
    }

    /// Build a TrafficAccounts with chosen dc_traffic values.
    fn accounts(dcs: usize, parts: usize, cells: &[(usize, usize, f64)]) -> TrafficAccounts {
        let mut dc_traffic = Grid::zeros(dcs, parts);
        for &(dc, pp, v) in cells {
            dc_traffic.set(dc, pp, v);
        }
        TrafficAccounts {
            dc_traffic,
            dc_outflow: Grid::zeros(dcs, parts),
            served: Grid::zeros(1, parts),
            unserved: vec![0.0; parts],
            holder_dc: vec![DatacenterId::new(0); parts],
            server_loads: vec![0.0; 1],
            hops_weighted: 0.0,
            latency_weighted_ms: 0.0,
            sla_within: 0.0,
            served_total: 0.0,
            unserved_total: 0.0,
        }
    }

    #[test]
    fn before_any_update_everything_is_zero() {
        let s = TrafficSmoother::new(4, 3, 0.2);
        assert_eq!(s.q_avg(p(0)), 0.0);
        assert_eq!(s.traffic(d(2), p(3)), 0.0);
        assert_eq!(s.mean_traffic(p(1)), 0.0);
    }

    #[test]
    fn first_update_initialises_without_bias() {
        let mut s = TrafficSmoother::new(1, 2, 0.2);
        let mut load = QueryLoad::zeros(1, 2);
        load.add(p(0), d(0), 10); // system average = 10/2 = 5
        let acc = accounts(2, 1, &[(0, 0, 8.0), (1, 0, 2.0)]);
        s.update(&load, &acc);
        assert_eq!(s.q_avg(p(0)), 5.0, "first observation taken as-is");
        assert_eq!(s.traffic(d(0), p(0)), 8.0);
        assert_eq!(s.traffic(d(1), p(0)), 2.0);
        assert_eq!(s.mean_traffic(p(0)), 5.0);
    }

    #[test]
    fn subsequent_updates_follow_eq_10_11() {
        let mut s = TrafficSmoother::new(1, 1, 0.2);
        let mut load = QueryLoad::zeros(1, 1);
        load.add(p(0), d(0), 10);
        s.update(&load, &accounts(1, 1, &[(0, 0, 10.0)]));
        // Second epoch: zero observation.
        let load2 = QueryLoad::zeros(1, 1);
        s.update(&load2, &accounts(1, 1, &[(0, 0, 0.0)]));
        // α·prev + (1−α)·obs = 0.2·10 + 0.8·0 = 2.
        assert!((s.q_avg(p(0)) - 2.0).abs() < 1e-12);
        assert!((s.traffic(d(0), p(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_dc_forgets_history() {
        let mut s = TrafficSmoother::new(1, 2, 0.5);
        let load = QueryLoad::zeros(1, 2);
        s.update(&load, &accounts(2, 1, &[(0, 0, 100.0), (1, 0, 40.0)]));
        s.reset_dc(d(0));
        assert_eq!(s.traffic(d(0), p(0)), 0.0);
        assert_eq!(s.traffic(d(1), p(0)), 40.0, "other DCs keep history");
        // The next observation re-initialises rather than smoothing
        // against stale state.
        s.update(&load, &accounts(2, 1, &[(0, 0, 10.0), (1, 0, 0.0)]));
        assert_eq!(s.traffic(d(0), p(0)), 10.0);
        assert_eq!(s.traffic(d(1), p(0)), 20.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn invalid_alpha_rejected() {
        let _ = TrafficSmoother::new(1, 1, 1.5);
    }

    /// Drive one smoother densely and one sparsely through the same
    /// observation stream and require bitwise-equal state on every cell
    /// the sparse side ever brought current.
    #[test]
    fn sparse_update_bit_equals_dense_update() {
        let (parts, dcs) = (6u32, 3usize);
        // Epoch → (partition, per-dc traffic) observations. Partitions
        // 4 and 5 stay cold for long stretches; partition 3 is never
        // touched at all.
        let epochs: Vec<Vec<(u32, [f64; 3])>> = vec![
            vec![(0, [8.0, 2.0, 0.0]), (1, [1.0, 0.0, 3.0])],
            vec![(0, [4.0, 4.0, 4.0])],
            vec![],
            vec![(4, [9.0, 0.0, 1.0])],
            vec![(0, [1.0, 1.0, 1.0]), (5, [0.5, 0.25, 0.0])],
            vec![],
            vec![],
            vec![(4, [2.0, 2.0, 2.0]), (1, [0.0, 7.0, 0.0])],
        ];
        let mut dense = TrafficSmoother::new(parts, dcs as u32, 0.2);
        let mut sparse = TrafficSmoother::new(parts, dcs as u32, 0.2);
        for obs in &epochs {
            let mut load = QueryLoad::zeros(parts, dcs as u32);
            let mut cells = Vec::new();
            for &(pp, traffic) in obs {
                load.add(p(pp), d(0), (traffic[0] * 4.0) as u32 + 1);
                for (dc, &v) in traffic.iter().enumerate() {
                    cells.push((dc, pp as usize, v));
                }
            }
            let acc = accounts(dcs, parts as usize, &cells);
            dense.update(&load, &acc);
            let mut active: Vec<u32> = obs.iter().map(|&(pp, _)| pp).collect();
            active.sort_unstable();
            sparse.update_active(&load, &acc, &active);
        }
        // Catch every partition up (an all-active epoch with zero load),
        // then compare all cells bitwise.
        let load = QueryLoad::zeros(parts, dcs as u32);
        let acc = accounts(dcs, parts as usize, &[]);
        dense.update(&load, &acc);
        sparse.update_active(&load, &acc, &[0, 1, 2, 3, 4, 5]);
        for pp in 0..parts {
            assert_eq!(
                sparse.q_avg(p(pp)).to_bits(),
                dense.q_avg(p(pp)).to_bits(),
                "q_avg partition {pp}"
            );
            for dc in 0..dcs as u32 {
                assert_eq!(
                    sparse.traffic(d(dc), p(pp)).to_bits(),
                    dense.traffic(d(dc), p(pp)).to_bits(),
                    "traffic dc {dc} partition {pp}"
                );
                assert_eq!(
                    sparse.outflow(d(dc), p(pp)).to_bits(),
                    dense.outflow(d(dc), p(pp)).to_bits(),
                    "outflow dc {dc} partition {pp}"
                );
            }
        }
    }

    /// `reset_dc` between sparse passes: cells wiped mid-gap must not
    /// fold pre-reset zeros, exactly like the dense smoother.
    #[test]
    fn sparse_update_matches_dense_across_dc_reset() {
        let (parts, dcs) = (3u32, 2usize);
        let mut dense = TrafficSmoother::new(parts, dcs as u32, 0.5);
        let mut sparse = TrafficSmoother::new(parts, dcs as u32, 0.5);
        let seed = accounts(dcs, parts as usize, &[(0, 0, 32.0), (1, 0, 16.0), (0, 2, 8.0)]);
        let mut load = QueryLoad::zeros(parts, dcs as u32);
        load.add(p(0), d(0), 6);
        load.add(p(2), d(1), 2);
        dense.update(&load, &seed);
        sparse.update_active(&load, &seed, &[0, 2]);

        // Partitions go quiet, then DC 0 loses its history.
        let quiet = accounts(dcs, parts as usize, &[]);
        let none = QueryLoad::zeros(parts, dcs as u32);
        dense.update(&none, &quiet);
        dense.update(&none, &quiet);
        sparse.update_active(&none, &quiet, &[]);
        sparse.update_active(&none, &quiet, &[]);
        dense.reset_dc(d(0));
        sparse.reset_dc(d(0));

        // Partition 0 reactivates on the very next pass (the seed-vs-
        // fold edge), partition 2 only one pass later.
        let obs = accounts(dcs, parts as usize, &[(0, 0, 4.0), (1, 0, 4.0)]);
        load.clear();
        load.add(p(0), d(0), 4);
        dense.update(&load, &obs);
        sparse.update_active(&load, &obs, &[0]);
        let late = accounts(dcs, parts as usize, &[(0, 2, 2.0)]);
        let mut load2 = QueryLoad::zeros(parts, dcs as u32);
        load2.add(p(2), d(0), 2);
        dense.update(&load2, &late);
        sparse.update_active(&load2, &late, &[2]);

        // Catch every cell up before comparing: sparse cells are stale
        // by design until their partition next activates.
        let none2 = QueryLoad::zeros(parts, dcs as u32);
        dense.update(&none2, &quiet);
        sparse.update_active(&none2, &quiet, &[0, 1, 2]);

        for pp in [0u32, 2] {
            for dc in 0..dcs as u32 {
                assert_eq!(
                    sparse.traffic(d(dc), p(pp)).to_bits(),
                    dense.traffic(d(dc), p(pp)).to_bits(),
                    "traffic dc {dc} partition {pp}"
                );
            }
            assert_eq!(sparse.q_avg(p(pp)).to_bits(), dense.q_avg(p(pp)).to_bits());
        }
    }
}
