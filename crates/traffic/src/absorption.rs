//! The traffic pass: eqs. (2)–(8) evaluated for one epoch.
//!
//! For every `(partition, requester)` cell of the query matrix, queries
//! walk the WAN path toward the partition holder. At each datacenter the
//! *residual* (queries not yet served) is recorded as that node's
//! traffic — eq. (5) makes the requester node's traffic the full query
//! count, and eq. (4) peels off replica capacity hop by hop:
//!
//! ```text
//! tr_ijkt = max(0, q_ijt − Σ_{k^x ∈ A_jk} Σ_l C_ik^x l)      (eq. 6)
//! ```
//!
//! Replica capacity is shared across requesters within an epoch, so the
//! pass processes requesters in ascending datacenter order against a
//! single pool of remaining capacity (the paper leaves the intra-epoch
//! service order unspecified; a deterministic order keeps runs
//! reproducible). Queries still unserved at the holder are *unserved
//! residual* — demand the current replica set cannot absorb, which is
//! what drives the replication decisions.
//!
//! The pass also accounts response latency: a query's response time is
//! one round trip from its requester datacenter to the datacenter that
//! served it (link latencies from the topology), plus
//! [`INTRA_DC_LATENCY_MS`] for the local fabric. The paper's
//! introduction motivates the whole design with Amazon's SLA — "a
//! response within 300 ms for 99.9% of its requests" — so the accounts
//! report the fraction of demand answered within
//! [`SLA_TARGET_MS`]; unserved queries are SLA violations by
//! definition.

use crate::grid::Grid;
use crate::placement::PlacementView;
use rfh_topology::Topology;
use rfh_types::{DatacenterId, PartitionId, ServerId};
use rfh_workload::QueryLoad;

/// Response-time SLA bound from the paper's introduction (ms).
pub const SLA_TARGET_MS: f64 = 300.0;

/// Latency charged for the intra-datacenter fabric hop (ms).
pub const INTRA_DC_LATENCY_MS: f64 = 1.0;

/// Everything the traffic pass learns about one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficAccounts {
    /// `dc_traffic[dc][partition]` — residual query flow arriving at
    /// each datacenter for each partition (`tr_ikt` summed over
    /// requesters, at datacenter granularity).
    pub dc_traffic: Grid,
    /// `dc_outflow[dc][partition]` — residual query flow each datacenter
    /// *forwards onward* after its local replicas absorbed what they
    /// could (the "forwarding traffic" of §I; zero at the terminal hop).
    pub dc_outflow: Grid,
    /// `served[server][partition]` — queries actually served by replicas
    /// on each server.
    pub served: Grid,
    /// Residual demand per partition that no replica (including the
    /// holder) could serve this epoch.
    pub unserved: Vec<f64>,
    /// Datacenter of each partition's holder at the time of the pass.
    ///
    /// Dense passes rebuild every entry; sparse passes only re-assign
    /// the entries of active partitions (an inactive partition's holder
    /// cannot have moved since the pass that last wrote it, because
    /// every placement action marks its partition dirty).
    pub holder_dc: Vec<DatacenterId>,
    /// Per-server total served queries (`l_i`), cached by the engine at
    /// the end of every pass so [`server_load`](Self::server_load) is
    /// O(1) instead of an O(partitions) row sum per call.
    pub(crate) server_loads: Vec<f64>,
    /// Queries served, weighted by the hop at which they were served.
    pub(crate) hops_weighted: f64,
    /// Served queries weighted by round-trip response latency (ms).
    pub(crate) latency_weighted_ms: f64,
    /// Demand (served queries) answered within [`SLA_TARGET_MS`].
    pub(crate) sla_within: f64,
    /// Total queries that found a replica.
    pub(crate) served_total: f64,
    /// Total queries dropped (they travelled the full path in vain).
    pub(crate) unserved_total: f64,
}

impl TrafficAccounts {
    /// A zero-shaped accounts block for engine reuse; the first
    /// [`reset`](Self::reset) gives it its real shape.
    pub(crate) fn empty() -> Self {
        TrafficAccounts {
            dc_traffic: Grid::zeros(0, 0),
            dc_outflow: Grid::zeros(0, 0),
            served: Grid::zeros(0, 0),
            unserved: Vec::new(),
            holder_dc: Vec::new(),
            server_loads: Vec::new(),
            hops_weighted: 0.0,
            latency_weighted_ms: 0.0,
            sla_within: 0.0,
            served_total: 0.0,
            unserved_total: 0.0,
        }
    }

    /// Reshape for a fresh pass and zero every account, reusing all
    /// backing allocations.
    pub(crate) fn reset(&mut self, n_dcs: usize, n_parts: usize, n_servers: usize) {
        self.dc_traffic.reset(n_dcs, n_parts);
        self.dc_outflow.reset(n_dcs, n_parts);
        self.served.reset(n_servers, n_parts);
        self.unserved.clear();
        self.unserved.resize(n_parts, 0.0);
        self.holder_dc.clear();
        self.server_loads.clear();
        self.server_loads.resize(n_servers, 0.0);
        self.hops_weighted = 0.0;
        self.latency_weighted_ms = 0.0;
        self.sla_within = 0.0;
        self.served_total = 0.0;
        self.unserved_total = 0.0;
    }

    /// Sparse-pass reset: zero only the per-partition cells the previous
    /// sparse pass wrote (`prev`) plus every pass-global accumulator.
    /// All other per-partition cells are already zero by the sparse
    /// invariant — a partition outside the active set carries no load —
    /// so this is equivalent to [`reset`](Self::reset) at the same shape
    /// in O(prev × (datacenters + servers)) instead of O(partitions).
    /// `holder_dc` is deliberately left alone: it is a persistent map in
    /// sparse mode, not a per-pass account.
    pub(crate) fn clear_sparse(&mut self, prev: &[u32]) {
        let n_dcs = self.dc_traffic.rows();
        let n_servers = self.served.rows();
        for &p in prev {
            let p = p as usize;
            for dc in 0..n_dcs {
                self.dc_traffic.set(dc, p, 0.0);
                self.dc_outflow.set(dc, p, 0.0);
            }
            for s in 0..n_servers {
                self.served.set(s, p, 0.0);
            }
            self.unserved[p] = 0.0;
        }
        self.server_loads.fill(0.0);
        self.hops_weighted = 0.0;
        self.latency_weighted_ms = 0.0;
        self.sla_within = 0.0;
        self.served_total = 0.0;
        self.unserved_total = 0.0;
    }

    /// Traffic arriving at the holder of partition `p` (`tr_iit`,
    /// the quantity eq. 12 compares against `β·q̄`).
    pub fn holder_traffic(&self, p: PartitionId) -> f64 {
        self.dc_traffic.get(self.holder_dc[p.index()].index(), p.index())
    }

    /// Total queries served across the cluster this epoch.
    pub fn served_total(&self) -> f64 {
        self.served_total
    }

    /// Total queries that could not be served this epoch.
    pub fn unserved_total(&self) -> f64 {
        self.unserved_total
    }

    /// Mean lookup path length in WAN hops: how far a query travelled
    /// before a replica served it (unserved queries count the full path
    /// they travelled). 0 when no queries flowed.
    pub fn mean_path_length(&self) -> f64 {
        let total = self.served_total + self.unserved_total;
        if total == 0.0 {
            0.0
        } else {
            self.hops_weighted / total
        }
    }

    /// Queries served by one server across all partitions (its workload
    /// `l_i` for the load-imbalance metric). Reads the per-pass cache —
    /// O(1), bit-identical to summing the server's `served` row.
    pub fn server_load(&self, s: ServerId) -> f64 {
        self.server_loads[s.index()]
    }

    /// Mean round-trip response latency of *served* queries (ms); 0 when
    /// nothing was served.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.served_total == 0.0 {
            0.0
        } else {
            self.latency_weighted_ms / self.served_total
        }
    }

    /// Fraction of the epoch's total demand answered within
    /// [`SLA_TARGET_MS`] (unserved queries violate by definition);
    /// 1.0 when there was no demand.
    pub fn sla_fraction(&self) -> f64 {
        let total = self.served_total + self.unserved_total;
        if total == 0.0 {
            1.0
        } else {
            // The two accumulators sum the same `take` values in
            // different groupings; clamp the ulp-level excess.
            (self.sla_within / total).clamp(0.0, 1.0)
        }
    }
}

/// Run the traffic pass for one epoch.
///
/// `view` must describe the same cluster as `topo` (same server count)
/// and the same partition count as `load`.
///
/// This is the one-shot compatibility entry point: it builds a
/// throwaway [`crate::engine::TrafficEngine`], runs a single
/// [`account`](crate::engine::TrafficEngine::account) pass, and hands
/// the accounts back by value. Callers in a loop should hold an engine
/// instead and reuse its buffers across epochs.
pub fn compute_traffic(topo: &Topology, load: &QueryLoad, view: &PlacementView) -> TrafficAccounts {
    let mut engine = crate::engine::TrafficEngine::new();
    engine.account(topo, load, view);
    engine.into_accounts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_topology::TopologyBuilder;
    use rfh_types::{Continent, GeoPoint};

    /// Chain A(0) — B(1) — C(2), one server per datacenter
    /// (server ids 0, 1, 2).
    fn chain() -> Topology {
        let mut b = TopologyBuilder::new();
        let a = b
            .datacenter("A", Continent::NorthAmerica, "USA", "A1", GeoPoint::new(0.0, 0.0), 1, 1, 1)
            .unwrap();
        let m = b
            .datacenter(
                "B",
                Continent::NorthAmerica,
                "USA",
                "B1",
                GeoPoint::new(0.0, 10.0),
                1,
                1,
                1,
            )
            .unwrap();
        let c = b
            .datacenter("C", Continent::Asia, "CHN", "C1", GeoPoint::new(0.0, 20.0), 1, 1, 1)
            .unwrap();
        b.link(a, m, 10.0).unwrap();
        b.link(m, c, 10.0).unwrap();
        b.build(0.0, 0).unwrap()
    }

    fn p0() -> PartitionId {
        PartitionId::new(0)
    }
    fn d(i: u32) -> DatacenterId {
        DatacenterId::new(i)
    }
    fn s(i: u32) -> ServerId {
        ServerId::new(i)
    }

    /// Holder on server 0 (DC A) with given capacity; queries from C.
    fn view_with(capacities: &[(u32, f64)]) -> PlacementView {
        let mut v = PlacementView::new(1, 3, vec![s(0)]);
        for &(srv, cap) in capacities {
            v.add_capacity(p0(), s(srv), cap);
        }
        v
    }

    #[test]
    fn full_query_reaches_holder_without_replicas() {
        let topo = chain();
        let mut load = QueryLoad::zeros(1, 3);
        load.add(p0(), d(2), 10); // 10 queries from C toward holder in A
        let view = view_with(&[(0, 100.0)]);
        let acc = compute_traffic(&topo, &load, &view);
        // eq. 5: traffic at the requester (C) is the full load; no
        // absorption en route, so every hop sees 10.
        assert_eq!(acc.dc_traffic.get(2, 0), 10.0);
        assert_eq!(acc.dc_traffic.get(1, 0), 10.0);
        assert_eq!(acc.dc_traffic.get(0, 0), 10.0);
        assert_eq!(acc.holder_traffic(p0()), 10.0);
        // Holder serves everything: 2 hops each.
        assert_eq!(acc.served.get(0, 0), 10.0);
        assert_eq!(acc.served_total(), 10.0);
        assert_eq!(acc.unserved_total(), 0.0);
        assert_eq!(acc.mean_path_length(), 2.0);
    }

    #[test]
    fn on_path_replica_absorbs_and_shields_holder() {
        let topo = chain();
        let mut load = QueryLoad::zeros(1, 3);
        load.add(p0(), d(2), 10);
        // Replica at B (server 1) with capacity 6; holder has plenty.
        let view = view_with(&[(0, 100.0), (1, 6.0)]);
        let acc = compute_traffic(&topo, &load, &view);
        assert_eq!(acc.dc_traffic.get(2, 0), 10.0, "requester sees all");
        assert_eq!(acc.dc_traffic.get(1, 0), 10.0, "traffic *arriving* at B is still 10");
        assert_eq!(acc.dc_traffic.get(0, 0), 4.0, "eq. 4: residual after B's capacity");
        assert_eq!(acc.served.get(1, 0), 6.0);
        assert_eq!(acc.served.get(0, 0), 4.0);
        // 6 queries at hop 1, 4 at hop 2 → mean 1.4.
        assert!((acc.mean_path_length() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn requester_local_replica_gives_zero_hops() {
        let topo = chain();
        let mut load = QueryLoad::zeros(1, 3);
        load.add(p0(), d(2), 5);
        let view = view_with(&[(0, 100.0), (2, 50.0)]);
        let acc = compute_traffic(&topo, &load, &view);
        assert_eq!(acc.served.get(2, 0), 5.0);
        assert_eq!(acc.mean_path_length(), 0.0);
        assert_eq!(acc.dc_traffic.get(1, 0), 0.0, "nothing forwarded");
        assert_eq!(acc.holder_traffic(p0()), 0.0);
    }

    #[test]
    fn off_path_replica_serves_nothing() {
        // Queries from A to holder at A never pass C; a replica at C is
        // useless — the mechanism behind the random baseline's low
        // utilization.
        let topo = chain();
        let mut load = QueryLoad::zeros(1, 3);
        load.add(p0(), d(0), 8);
        let view = view_with(&[(0, 100.0), (2, 50.0)]);
        let acc = compute_traffic(&topo, &load, &view);
        assert_eq!(acc.served.get(2, 0), 0.0);
        assert_eq!(acc.served.get(0, 0), 8.0);
        assert_eq!(acc.mean_path_length(), 0.0, "holder is local to requester");
    }

    #[test]
    fn capacity_is_shared_across_requesters() {
        let topo = chain();
        let mut load = QueryLoad::zeros(1, 3);
        load.add(p0(), d(1), 4); // B's queries processed first (lower id)
        load.add(p0(), d(2), 4);
        // Replica at B with capacity 6, holder tiny.
        let view = view_with(&[(0, 1.0), (1, 6.0)]);
        let acc = compute_traffic(&topo, &load, &view);
        // B's own 4 queries absorb locally; C's 4 find only 2 left at B,
        // 1 at the holder, and 1 is unserved.
        assert_eq!(acc.served.get(1, 0), 6.0);
        assert_eq!(acc.served.get(0, 0), 1.0);
        assert_eq!(acc.unserved[0], 1.0);
        assert_eq!(acc.unserved_total(), 1.0);
        assert_eq!(acc.served_total(), 7.0);
    }

    #[test]
    fn failed_server_serves_nothing() {
        let mut topo = chain();
        topo.fail_server(s(1)).unwrap();
        let mut load = QueryLoad::zeros(1, 3);
        load.add(p0(), d(2), 10);
        let view = view_with(&[(0, 100.0), (1, 50.0)]);
        let acc = compute_traffic(&topo, &load, &view);
        assert_eq!(acc.served.get(1, 0), 0.0, "dead replica is skipped");
        assert_eq!(acc.served.get(0, 0), 10.0);
    }

    #[test]
    fn unserved_queries_count_full_path() {
        let topo = chain();
        let mut load = QueryLoad::zeros(1, 3);
        load.add(p0(), d(2), 10);
        let view = view_with(&[(0, 3.0)]); // holder can take only 3
        let acc = compute_traffic(&topo, &load, &view);
        assert_eq!(acc.served_total(), 3.0);
        assert_eq!(acc.unserved_total(), 7.0);
        assert_eq!(acc.unserved[0], 7.0);
        // All 10 travelled 2 hops.
        assert_eq!(acc.mean_path_length(), 2.0);
        assert_eq!(acc.holder_traffic(p0()), 10.0, "overload shows at the holder");
    }

    #[test]
    fn multiple_partitions_are_independent() {
        let topo = chain();
        let mut load = QueryLoad::zeros(2, 3);
        load.add(PartitionId::new(0), d(2), 5);
        load.add(PartitionId::new(1), d(0), 7);
        let mut view = PlacementView::new(2, 3, vec![s(0), s(2)]);
        view.add_capacity(PartitionId::new(0), s(0), 100.0);
        view.add_capacity(PartitionId::new(1), s(2), 100.0);
        let acc = compute_traffic(&topo, &load, &view);
        assert_eq!(acc.served.get(0, 0), 5.0);
        assert_eq!(acc.served.get(2, 1), 7.0);
        assert_eq!(acc.server_load(s(0)), 5.0);
        assert_eq!(acc.server_load(s(2)), 7.0);
        assert_eq!(acc.server_load(s(1)), 0.0);
        // Partition 1's queries from A travel A→B→C.
        assert_eq!(acc.dc_traffic.get(1, 1), 7.0);
        assert_eq!(acc.holder_dc[1], d(2));
    }

    #[test]
    fn latency_accounts_round_trips() {
        // Chain links are 10 ms each. Queries from C (dc 2) served at
        // B (dc 1): one hop each way → 2·10 + 1 = 21 ms.
        let topo = chain();
        let mut load = QueryLoad::zeros(1, 3);
        load.add(p0(), d(2), 10);
        let view = view_with(&[(0, 100.0), (1, 100.0)]);
        let acc = compute_traffic(&topo, &load, &view);
        assert!((acc.mean_latency_ms() - 21.0).abs() < 1e-9, "{}", acc.mean_latency_ms());
        assert_eq!(acc.sla_fraction(), 1.0, "21 ms ≪ 300 ms");
    }

    #[test]
    fn local_service_is_one_fabric_hop() {
        let topo = chain();
        let mut load = QueryLoad::zeros(1, 3);
        load.add(p0(), d(2), 4);
        let view = view_with(&[(0, 1.0), (2, 100.0)]);
        let acc = compute_traffic(&topo, &load, &view);
        assert!((acc.mean_latency_ms() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unserved_queries_violate_the_sla() {
        let topo = chain();
        let mut load = QueryLoad::zeros(1, 3);
        load.add(p0(), d(2), 10);
        let view = view_with(&[(0, 4.0)]); // holder can serve only 4
        let acc = compute_traffic(&topo, &load, &view);
        // 4 served (within SLA), 6 unserved → 40% attainment.
        assert!((acc.sla_fraction() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn no_demand_means_perfect_sla() {
        let topo = chain();
        let load = QueryLoad::zeros(1, 3);
        let view = view_with(&[(0, 10.0)]);
        let acc = compute_traffic(&topo, &load, &view);
        assert_eq!(acc.sla_fraction(), 1.0);
        assert_eq!(acc.mean_latency_ms(), 0.0);
    }

    #[test]
    fn zero_load_zero_everything() {
        let topo = chain();
        let load = QueryLoad::zeros(1, 3);
        let view = view_with(&[(0, 10.0)]);
        let acc = compute_traffic(&topo, &load, &view);
        assert_eq!(acc.served_total(), 0.0);
        assert_eq!(acc.unserved_total(), 0.0);
        assert_eq!(acc.mean_path_length(), 0.0);
        assert_eq!(acc.dc_traffic.total(), 0.0);
    }
}
