//! The per-epoch placement view the traffic pass reads.
//!
//! The replica manager (in `rfh-core`) owns the authoritative replica
//! map; each epoch it renders this flattened view: for every
//! `(partition, server)` pair, the total query-processing capacity the
//! replicas of that partition on that server offer this epoch
//! (`Σ_l C_ikl` in the paper's notation, zero when the server hosts no
//! replica of the partition), plus each partition's primary holder.

use crate::grid::Grid;
use rfh_types::{PartitionId, ServerId};

/// Flattened placement + capacity view for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementView {
    /// `capacity[partition][server]` = Σ over replicas of per-replica
    /// capacity, queries/epoch.
    capacity: Grid,
    /// Primary holder server of each partition.
    holders: Vec<ServerId>,
}

impl PlacementView {
    /// Empty view: no capacity anywhere; holders must be set for every
    /// partition before use.
    pub fn new(partitions: u32, servers: u32, holders: Vec<ServerId>) -> Self {
        assert_eq!(
            holders.len(),
            partitions as usize,
            "one holder per partition required"
        );
        PlacementView {
            capacity: Grid::zeros(partitions as usize, servers as usize),
            holders,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.capacity.rows() as u32
    }

    /// Number of servers.
    pub fn servers(&self) -> u32 {
        self.capacity.cols() as u32
    }

    /// Primary holder of a partition.
    #[inline]
    pub fn holder(&self, p: PartitionId) -> ServerId {
        self.holders[p.index()]
    }

    /// Capacity of partition `p` replicas on server `s`.
    #[inline]
    pub fn capacity(&self, p: PartitionId, s: ServerId) -> f64 {
        self.capacity.get(p.index(), s.index())
    }

    /// Add replica capacity for `(p, s)`.
    pub fn add_capacity(&mut self, p: PartitionId, s: ServerId, queries_per_epoch: f64) {
        debug_assert!(queries_per_epoch >= 0.0);
        self.capacity.add(p.index(), s.index(), queries_per_epoch);
    }

    /// Per-server capacities for one partition.
    #[inline]
    pub fn partition_capacities(&self, p: PartitionId) -> &[f64] {
        self.capacity.row(p.index())
    }

    /// Total capacity provisioned for a partition across the cluster.
    pub fn partition_capacity_total(&self, p: PartitionId) -> f64 {
        self.capacity.row_sum(p.index())
    }

    /// Servers hosting any replica of `p` (capacity > 0), ascending id.
    pub fn replica_servers(&self, p: PartitionId) -> impl Iterator<Item = ServerId> + '_ {
        self.capacity
            .row(p.index())
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0.0)
            .map(|(s, _)| ServerId::new(s as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PartitionId {
        PartitionId::new(i)
    }
    fn s(i: u32) -> ServerId {
        ServerId::new(i)
    }

    #[test]
    fn empty_view() {
        let v = PlacementView::new(2, 3, vec![s(0), s(2)]);
        assert_eq!(v.partitions(), 2);
        assert_eq!(v.servers(), 3);
        assert_eq!(v.holder(p(1)), s(2));
        assert_eq!(v.capacity(p(0), s(0)), 0.0);
        assert_eq!(v.partition_capacity_total(p(0)), 0.0);
        assert_eq!(v.replica_servers(p(0)).count(), 0);
    }

    #[test]
    fn capacities_accumulate() {
        let mut v = PlacementView::new(2, 3, vec![s(0), s(2)]);
        v.add_capacity(p(0), s(1), 10.0);
        v.add_capacity(p(0), s(1), 5.0);
        v.add_capacity(p(0), s(2), 20.0);
        assert_eq!(v.capacity(p(0), s(1)), 15.0);
        assert_eq!(v.partition_capacity_total(p(0)), 35.0);
        assert_eq!(v.partition_capacities(p(0)), &[0.0, 15.0, 20.0]);
        let hosts: Vec<u32> = v.replica_servers(p(0)).map(u32::from).collect();
        assert_eq!(hosts, vec![1, 2]);
        assert_eq!(v.partition_capacity_total(p(1)), 0.0, "partitions are independent");
    }

    #[test]
    #[should_panic(expected = "one holder per partition")]
    fn holder_count_must_match() {
        let _ = PlacementView::new(3, 3, vec![s(0)]);
    }
}
