//! The per-epoch placement view the traffic pass reads.
//!
//! The replica manager (in `rfh-core`) owns the authoritative replica
//! map; each epoch it renders this flattened view: for every
//! `(partition, server)` pair, the total query-processing capacity the
//! replicas of that partition on that server offer this epoch
//! (`Σ_l C_ikl` in the paper's notation, zero when the server hosts no
//! replica of the partition), plus each partition's primary holder.

use crate::grid::Grid;
use rfh_types::{PartitionId, ServerId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Stamp source for [`PlacementView::version`]. Every mutation takes a
/// globally fresh value, so two views with equal versions necessarily
/// hold identical content (one is an unmutated clone of the other).
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// Flattened placement + capacity view for one epoch.
#[derive(Debug, Clone)]
pub struct PlacementView {
    /// `capacity[partition][server]` = Σ over replicas of per-replica
    /// capacity, queries/epoch.
    capacity: Grid,
    /// Primary holder server of each partition.
    holders: Vec<ServerId>,
    /// Number of `(partition, server)` cells with positive capacity,
    /// maintained on every mutation so sparse consumers can learn the
    /// replica-cell population without an O(partitions × servers) scan.
    nonzero: usize,
    /// Content stamp, see [`version`](Self::version).
    version: u64,
}

impl PartialEq for PlacementView {
    /// Content equality: the version stamp is bookkeeping, not state.
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity && self.holders == other.holders
    }
}

impl PlacementView {
    /// Empty view: no capacity anywhere; holders must be set for every
    /// partition before use.
    pub fn new(partitions: u32, servers: u32, holders: Vec<ServerId>) -> Self {
        assert_eq!(holders.len(), partitions as usize, "one holder per partition required");
        PlacementView {
            capacity: Grid::zeros(partitions as usize, servers as usize),
            holders,
            nonzero: 0,
            version: next_version(),
        }
    }

    /// Content stamp. Every mutation moves it to a globally fresh
    /// value, so equal versions imply identical capacities and holders
    /// — an unmutated clone keeps its original's stamp. Consumers
    /// (e.g. the traffic engine) key caches on it.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.capacity.rows() as u32
    }

    /// Number of servers.
    pub fn servers(&self) -> u32 {
        self.capacity.cols() as u32
    }

    /// Primary holder of a partition.
    #[inline]
    pub fn holder(&self, p: PartitionId) -> ServerId {
        self.holders[p.index()]
    }

    /// Capacity of partition `p` replicas on server `s`.
    #[inline]
    pub fn capacity(&self, p: PartitionId, s: ServerId) -> f64 {
        self.capacity.get(p.index(), s.index())
    }

    /// Add replica capacity for `(p, s)`.
    pub fn add_capacity(&mut self, p: PartitionId, s: ServerId, queries_per_epoch: f64) {
        debug_assert!(queries_per_epoch >= 0.0);
        if queries_per_epoch > 0.0 && self.capacity.get(p.index(), s.index()) == 0.0 {
            self.nonzero += 1;
        }
        self.capacity.add(p.index(), s.index(), queries_per_epoch);
        self.version = next_version();
    }

    /// Per-server capacities for one partition.
    #[inline]
    pub fn partition_capacities(&self, p: PartitionId) -> &[f64] {
        self.capacity.row(p.index())
    }

    /// Total capacity provisioned for a partition across the cluster.
    pub fn partition_capacity_total(&self, p: PartitionId) -> f64 {
        self.capacity.row_sum(p.index())
    }

    /// Reshape in place to `partitions × servers`, zeroing all capacity
    /// and resetting every holder to server 0 (callers re-set holders
    /// before use). Reuses both backing allocations — this is the
    /// "rebuild" half of delta maintenance when the cluster shape moved.
    pub fn reset(&mut self, partitions: u32, servers: u32) {
        self.capacity.reset(partitions as usize, servers as usize);
        self.holders.clear();
        self.holders.resize(partitions as usize, ServerId::new(0));
        self.nonzero = 0;
        self.version = next_version();
    }

    /// Re-point a partition's primary holder (delta update).
    pub fn set_holder(&mut self, p: PartitionId, holder: ServerId) {
        self.holders[p.index()] = holder;
        self.version = next_version();
    }

    /// Zero one partition's capacity row (delta update: callers then
    /// re-add the partition's current replica capacities).
    pub fn clear_partition(&mut self, p: PartitionId) {
        let row = self.capacity.row_mut(p.index());
        self.nonzero -= row.iter().filter(|&&c| c > 0.0).count();
        row.fill(0.0);
        self.version = next_version();
    }

    /// Number of `(partition, server)` cells holding positive capacity —
    /// exactly the cells [`replica_servers`](Self::replica_servers)
    /// would yield over all partitions, in O(1).
    #[inline]
    pub fn nonzero_cells(&self) -> usize {
        self.nonzero
    }

    /// Servers hosting any replica of `p` (capacity > 0), ascending id.
    pub fn replica_servers(&self, p: PartitionId) -> impl Iterator<Item = ServerId> + '_ {
        self.capacity
            .row(p.index())
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0.0)
            .map(|(s, _)| ServerId::new(s as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PartitionId {
        PartitionId::new(i)
    }
    fn s(i: u32) -> ServerId {
        ServerId::new(i)
    }

    #[test]
    fn empty_view() {
        let v = PlacementView::new(2, 3, vec![s(0), s(2)]);
        assert_eq!(v.partitions(), 2);
        assert_eq!(v.servers(), 3);
        assert_eq!(v.holder(p(1)), s(2));
        assert_eq!(v.capacity(p(0), s(0)), 0.0);
        assert_eq!(v.partition_capacity_total(p(0)), 0.0);
        assert_eq!(v.replica_servers(p(0)).count(), 0);
    }

    #[test]
    fn capacities_accumulate() {
        let mut v = PlacementView::new(2, 3, vec![s(0), s(2)]);
        v.add_capacity(p(0), s(1), 10.0);
        v.add_capacity(p(0), s(1), 5.0);
        v.add_capacity(p(0), s(2), 20.0);
        assert_eq!(v.capacity(p(0), s(1)), 15.0);
        assert_eq!(v.partition_capacity_total(p(0)), 35.0);
        assert_eq!(v.partition_capacities(p(0)), &[0.0, 15.0, 20.0]);
        let hosts: Vec<u32> = v.replica_servers(p(0)).map(u32::from).collect();
        assert_eq!(hosts, vec![1, 2]);
        assert_eq!(v.partition_capacity_total(p(1)), 0.0, "partitions are independent");
    }

    #[test]
    #[should_panic(expected = "one holder per partition")]
    fn holder_count_must_match() {
        let _ = PlacementView::new(3, 3, vec![s(0)]);
    }

    #[test]
    fn version_moves_on_every_mutation_and_clones_keep_it() {
        let mut v = PlacementView::new(2, 3, vec![s(0), s(2)]);
        let clone = v.clone();
        assert_eq!(clone.version(), v.version(), "unmutated clone shares the stamp");

        let mut seen = vec![v.version()];
        v.add_capacity(p(0), s(1), 1.0);
        seen.push(v.version());
        v.set_holder(p(0), s(1));
        seen.push(v.version());
        v.clear_partition(p(0));
        seen.push(v.version());
        v.reset(2, 3);
        seen.push(v.version());
        let mut unique = seen.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seen.len(), "every mutation takes a fresh stamp");

        // The stamp is bookkeeping: equality is content-only.
        assert_ne!(clone.version(), v.version());
        let fresh = PlacementView::new(2, 3, vec![s(0), s(0)]);
        v.set_holder(p(1), s(0));
        assert_eq!(v, fresh);
    }

    #[test]
    fn nonzero_cells_tracks_every_mutation() {
        let mut v = PlacementView::new(3, 4, vec![s(0), s(1), s(2)]);
        let recount = |v: &PlacementView| {
            (0..v.partitions()).map(|pi| v.replica_servers(p(pi)).count()).sum::<usize>()
        };
        assert_eq!(v.nonzero_cells(), 0);
        v.add_capacity(p(0), s(1), 10.0);
        v.add_capacity(p(0), s(1), 5.0); // same cell: no new entry
        v.add_capacity(p(0), s(2), 1.0);
        v.add_capacity(p(2), s(3), 2.0);
        v.add_capacity(p(1), s(0), 0.0); // zero capacity is not a cell
        assert_eq!(v.nonzero_cells(), 3);
        assert_eq!(v.nonzero_cells(), recount(&v));
        v.clear_partition(p(0));
        assert_eq!(v.nonzero_cells(), 1);
        assert_eq!(v.nonzero_cells(), recount(&v));
        v.reset(2, 4);
        assert_eq!(v.nonzero_cells(), 0);
    }

    #[test]
    fn delta_updates_match_fresh_construction() {
        let mut v = PlacementView::new(2, 3, vec![s(0), s(2)]);
        v.add_capacity(p(0), s(1), 10.0);
        v.add_capacity(p(1), s(2), 4.0);

        // Partition 0 moves: clear its row, re-add, re-point the holder.
        v.clear_partition(p(0));
        v.set_holder(p(0), s(2));
        v.add_capacity(p(0), s(2), 7.0);

        let mut fresh = PlacementView::new(2, 3, vec![s(2), s(2)]);
        fresh.add_capacity(p(0), s(2), 7.0);
        fresh.add_capacity(p(1), s(2), 4.0);
        assert_eq!(v, fresh);

        // Shape change: reset rebuilds in place.
        v.reset(1, 4);
        v.set_holder(p(0), s(3));
        v.add_capacity(p(0), s(3), 2.0);
        let mut fresh = PlacementView::new(1, 4, vec![s(3)]);
        fresh.add_capacity(p(0), s(3), 2.0);
        assert_eq!(v, fresh);
    }
}
