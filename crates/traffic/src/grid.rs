//! Dense 2-D arrays.
//!
//! The traffic pass is the simulator's hot loop; all its state is dense
//! `rows × cols` matrices over small index spaces (datacenters ×
//! partitions, servers × partitions), stored flat for cache-friendly
//! scans — per the HPC guidance of preferring flat arrays over maps on
//! hot paths.

/// A dense row-major 2-D array of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Grid {
    /// Zero-filled grid.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Grid { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of {}×{}",
            self.rows,
            self.cols
        );
        r * self.cols + c
    }

    /// Read one cell.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[self.idx(r, c)]
    }

    /// Write one cell.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self.idx(r, c);
        self.data[i] = v;
    }

    /// Add to one cell.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        let i = self.idx(r, c);
        self.data[i] += v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Sum of one row.
    pub fn row_sum(&self, r: usize) -> f64 {
        self.row(r).iter().sum()
    }

    /// Sum of one column.
    pub fn col_sum(&self, c: usize) -> f64 {
        (0..self.rows).map(|r| self.get(r, c)).sum()
    }

    /// Sum of every cell.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Reset every cell to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshape to `rows × cols` and zero every cell, reusing the
    /// backing allocation when it is already large enough.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let g = Grid::zeros(3, 4);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.total(), 0.0);
        assert_eq!(g.get(2, 3), 0.0);
    }

    #[test]
    fn set_add_get() {
        let mut g = Grid::zeros(2, 2);
        g.set(0, 1, 5.0);
        g.add(0, 1, 2.5);
        g.add(1, 0, 1.0);
        assert_eq!(g.get(0, 1), 7.5);
        assert_eq!(g.get(1, 0), 1.0);
        assert_eq!(g.total(), 8.5);
    }

    #[test]
    fn row_and_column_sums() {
        let mut g = Grid::zeros(2, 3);
        g.set(0, 0, 1.0);
        g.set(0, 2, 2.0);
        g.set(1, 2, 4.0);
        assert_eq!(g.row(0), &[1.0, 0.0, 2.0]);
        assert_eq!(g.row_sum(0), 3.0);
        assert_eq!(g.row_sum(1), 4.0);
        assert_eq!(g.col_sum(2), 6.0);
        assert_eq!(g.col_sum(1), 0.0);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut g = Grid::zeros(2, 2);
        g.set(1, 1, 9.0);
        g.clear();
        assert_eq!(g.total(), 0.0);
        assert_eq!(g.rows(), 2);
    }

    #[test]
    fn reset_reshapes_and_zeroes() {
        let mut g = Grid::zeros(2, 2);
        g.set(1, 1, 9.0);
        g.reset(3, 4);
        assert_eq!((g.rows(), g.cols()), (3, 4));
        assert_eq!(g.total(), 0.0);
        g.set(2, 3, 1.0);
        g.reset(2, 2);
        assert_eq!((g.rows(), g.cols()), (2, 2));
        assert_eq!(g.total(), 0.0);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut g = Grid::zeros(2, 3);
        g.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(g.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(g.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_bounds_panics_in_debug() {
        let g = Grid::zeros(2, 2);
        let _ = g.get(2, 0);
    }
}
