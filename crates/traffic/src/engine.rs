//! The reusable per-epoch traffic engine.
//!
//! [`compute_traffic`](crate::absorption::compute_traffic) allocates
//! its whole working set — three grids, the remaining-capacity matrix,
//! and a routing path per `(requester, holder)` pair — on every call.
//! Inside a simulation that pass runs once per epoch per policy, so the
//! allocations and the repeated shortest-path walks dominate the hot
//! loop.
//!
//! [`TrafficEngine`] hoists all of that into reusable state:
//!
//! * a [`RouteTable`] caching every DC pair's path *and* the cumulative
//!   latency at each hop, refreshed only when the topology's
//!   [`generation`](rfh_topology::Topology::generation) moves;
//! * per-generation membership caches (each server's datacenter, each
//!   datacenter's alive servers in `server_ids()` order);
//! * a capacity index keyed on [`PlacementView::version`]: which
//!   servers are worth visiting per `(partition, datacenter)` pair;
//! * per-shard working buffers, zeroed in place each pass.
//!
//! ## Sharded pass, canonical merge
//!
//! Partitions are independent in the traffic pass: remaining capacity
//! is a per-partition row, every grid write lands in a per-partition
//! column, and the within-partition accounting order (requesters
//! ascending, hops in path order, indexed servers in visit order) fixes
//! every cell's value exactly. Only five scalar totals (`hops_weighted`,
//! `latency_weighted_ms`, `sla_within`, `served_total`,
//! `unserved_total`) cross partitions, and `f64` addition is not
//! associative — so the engine defines their *canonical* value as
//! per-partition subtotals folded in ascending partition order.
//!
//! The pass therefore runs as contiguous partition shards (one shard
//! serially; [`account_sharded`](TrafficEngine::account_sharded) fans
//! shards out over a [`WorkerPool`]) followed by a serial merge that
//! walks shards — hence partitions — in ascending order. Serial and
//! parallel execution share the shard code and the merge, so the output
//! is bit-identical for any thread count (property-tested in
//! `tests/prop_parallel.rs`), and `compute_traffic` (a one-shot,
//! single-shard engine) stays the semantic reference.

use rfh_obs::MetricsRegistry;
use rfh_pool::{shard_bounds, WorkerPool};
use rfh_topology::{RouteTable, Topology};
use rfh_types::{DatacenterId, PartitionId, ServerId};
use rfh_workload::QueryLoad;

use crate::absorption::{TrafficAccounts, INTRA_DC_LATENCY_MS, SLA_TARGET_MS};
use crate::grid::Grid;
use crate::placement::PlacementView;

/// A stateful traffic pass: all buffers preallocated, routes cached.
///
/// One engine serves one topology lineage: it keys its caches on
/// [`Topology::generation`] and refreshes them lazily inside
/// [`account`](Self::account). Engines are cheap to create but only pay
/// off when reused; they are deliberately *not* shared between policy
/// threads — give each thread its own (share-nothing).
#[derive(Debug, Clone)]
pub struct TrafficEngine {
    routes: RouteTable,
    /// Generation the membership caches below were built for.
    synced: Option<u64>,
    /// Datacenter of each server, indexed by server id.
    server_dc: Vec<DatacenterId>,
    /// Alive servers of each datacenter, in `server_ids()` order —
    /// the exact order the legacy pass visits them.
    dc_alive: Vec<Vec<ServerId>>,
    /// Per-(partition, datacenter) segment bounds into
    /// [`cap_servers`](Self::cap_servers): `partition * n_dcs + dc`
    /// and the next entry delimit that pair's capacity-bearing servers.
    cap_offsets: Vec<u32>,
    /// Alive servers holding non-zero capacity, grouped per
    /// (partition, datacenter) in visit order. Skipping the rest up
    /// front is behavior-neutral: the pass performs no arithmetic on a
    /// zero-capacity server.
    cap_servers: Vec<ServerId>,
    /// [`PlacementView::version`] the capacity index above was built
    /// for: while neither it nor the topology generation moves, the
    /// index stays valid and each pass only reloads the indexed cells.
    view_version: Option<u64>,
    /// Per-shard working buffers; one shard on the serial path.
    shards: Vec<Shard>,
    accounts: TrafficAccounts,
    stats: EngineStats,
}

/// Shard-local working state for a contiguous partition range
/// `[lo, hi)`. Everything a shard writes during the pass lands here;
/// the global accounts are assembled afterwards by the canonical merge.
#[derive(Debug, Clone)]
struct Shard {
    /// First partition (global index).
    lo: usize,
    /// One past the last partition.
    hi: usize,
    /// Remaining per-(local partition, server) capacity scratch.
    /// Only indexed cells are loaded and read; the rest is stale.
    remaining: Grid,
    /// Per-(local partition, datacenter) arrival traffic. Partition-
    /// major (transposed vs. the global grid) so each partition's
    /// writes stay on one contiguous row.
    dc_traffic: Grid,
    /// Per-(local partition, datacenter) forwarding traffic.
    dc_outflow: Grid,
    /// Served events per local partition, in emission order: replayed
    /// into the global served grid by the merge. All events for one
    /// `(server, partition)` cell occur within one partition's pass, so
    /// replay-in-order reproduces the cell bit for bit.
    served: Vec<Vec<(u32, f64)>>,
    /// Holder datacenter per local partition.
    holder_dc: Vec<DatacenterId>,
    /// Unserved residual per local partition. The partition's
    /// contribution to `unserved_total` is this same subtotal.
    unserved: Vec<f64>,
    /// Per-partition subtotals of the cross-partition scalars.
    hops_weighted: Vec<f64>,
    latency_weighted_ms: Vec<f64>,
    sla_within: Vec<f64>,
    served_total: Vec<f64>,
}

impl Default for Shard {
    fn default() -> Self {
        Shard {
            lo: 0,
            hi: 0,
            remaining: Grid::zeros(0, 0),
            dc_traffic: Grid::zeros(0, 0),
            dc_outflow: Grid::zeros(0, 0),
            served: Vec::new(),
            holder_dc: Vec::new(),
            unserved: Vec::new(),
            hops_weighted: Vec::new(),
            latency_weighted_ms: Vec::new(),
            sla_within: Vec::new(),
            served_total: Vec::new(),
        }
    }
}

impl Shard {
    /// Point this shard at `[lo, hi)` and (re)shape its buffers. Grid
    /// reshapes zero-fill; contents are otherwise left stale — the pass
    /// re-derives everything it reads.
    fn layout(&mut self, lo: usize, hi: usize, n_dcs: usize, n_servers: usize) {
        self.lo = lo;
        self.hi = hi;
        let span = hi - lo;
        if self.remaining.rows() != span || self.remaining.cols() != n_servers {
            self.remaining.reset(span, n_servers);
        }
        if self.dc_traffic.rows() != span || self.dc_traffic.cols() != n_dcs {
            self.dc_traffic.reset(span, n_dcs);
            self.dc_outflow.reset(span, n_dcs);
        }
        self.served.resize(span, Vec::new());
        self.holder_dc.resize(span, DatacenterId::new(0));
        self.unserved.resize(span, 0.0);
        self.hops_weighted.resize(span, 0.0);
        self.latency_weighted_ms.resize(span, 0.0);
        self.sla_within.resize(span, 0.0);
        self.served_total.resize(span, 0.0);
    }
}

/// The read-only inputs a shard pass needs — all `Sync`, shared by
/// every worker.
struct PassCtx<'a> {
    routes: &'a RouteTable,
    server_dc: &'a [DatacenterId],
    cap_offsets: &'a [u32],
    cap_servers: &'a [ServerId],
    n_dcs: usize,
    load: &'a QueryLoad,
    view: &'a PlacementView,
}

/// Cache-effectiveness counters of a [`TrafficEngine`]: how often the
/// per-epoch pass got away with the fast capacity-restore path versus
/// paying a topology rebuild or a full capacity re-index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Traffic passes run ([`TrafficEngine::account`] calls).
    pub passes: u64,
    /// Route/membership cache rebuilds (topology generation moved).
    pub topo_rebuilds: u64,
    /// Full capacity-index sweeps (rebuild, reshape, or the
    /// [`PlacementView::version`] stamp moved).
    pub index_rebuilds: u64,
    /// Fast-path passes: index valid, only consumed capacities restored
    /// — the capacity sweep was skipped entirely.
    pub fast_restores: u64,
}

impl EngineStats {
    /// Export the counters into a metrics registry under
    /// `traffic.engine.*`. The stats are lifetime totals, written
    /// set-style so re-collecting into the same registry is idempotent.
    pub fn collect_metrics(&self, registry: &mut MetricsRegistry) {
        registry.counter_total("traffic.engine.passes", self.passes);
        registry.counter_total("traffic.engine.topo_rebuilds", self.topo_rebuilds);
        registry.counter_total("traffic.engine.index_rebuilds", self.index_rebuilds);
        registry.counter_total("traffic.engine.fast_restores", self.fast_restores);
    }
}

impl Default for TrafficEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl TrafficEngine {
    /// A fresh engine with empty buffers; the first
    /// [`account`](Self::account) sizes everything.
    pub fn new() -> Self {
        TrafficEngine {
            routes: RouteTable::new(),
            synced: None,
            server_dc: Vec::new(),
            dc_alive: Vec::new(),
            cap_offsets: Vec::new(),
            cap_servers: Vec::new(),
            view_version: None,
            shards: Vec::new(),
            accounts: TrafficAccounts::empty(),
            stats: EngineStats::default(),
        }
    }

    /// Cache-effectiveness counters accumulated over this engine's life.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The topology generation the caches are currently valid for.
    pub fn generation(&self) -> Option<u64> {
        self.synced
    }

    /// Refresh route + membership caches if `topo`'s generation moved
    /// (or on first use). Called by [`account`](Self::account); exposed
    /// for tests and for callers that want to pay the rebuild outside
    /// the measured pass.
    pub fn sync_topology(&mut self, topo: &Topology) -> bool {
        self.routes.sync(topo);
        if self.synced == Some(topo.generation()) && self.server_dc.len() == topo.server_count() {
            return false;
        }
        self.server_dc.clear();
        self.server_dc.extend(topo.servers().iter().map(|s| s.datacenter));

        let n_dcs = topo.datacenters().len();
        self.dc_alive.truncate(n_dcs);
        while self.dc_alive.len() < n_dcs {
            self.dc_alive.push(Vec::new());
        }
        for (d, alive) in self.dc_alive.iter_mut().enumerate() {
            alive.clear();
            let dc = topo.datacenter(DatacenterId::new(d as u32)).expect("dense dc ids");
            for server in dc.server_ids() {
                if topo.servers()[server.index()].alive {
                    alive.push(server);
                }
            }
        }
        self.synced = Some(topo.generation());
        self.stats.topo_rebuilds += 1;
        true
    }

    /// Run the traffic pass for one epoch, reusing every buffer.
    ///
    /// Semantics (and bit-level output) match
    /// [`compute_traffic`](crate::absorption::compute_traffic):
    /// `view` must describe the same cluster as `topo` (same server
    /// count) and the same partition count as `load`. The returned
    /// borrow is valid until the next call on this engine.
    pub fn account(
        &mut self,
        topo: &Topology,
        load: &QueryLoad,
        view: &PlacementView,
    ) -> &TrafficAccounts {
        self.account_with(topo, load, view, None)
    }

    /// [`account`](Self::account), with the shard passes fanned out
    /// over `pool` (one contiguous partition shard per worker). The
    /// merge is serial and walks partitions in ascending order, so the
    /// result is bit-identical to the serial pass for any pool size.
    pub fn account_sharded(
        &mut self,
        topo: &Topology,
        load: &QueryLoad,
        view: &PlacementView,
        pool: &WorkerPool,
    ) -> &TrafficAccounts {
        self.account_with(topo, load, view, Some(pool))
    }

    fn account_with(
        &mut self,
        topo: &Topology,
        load: &QueryLoad,
        view: &PlacementView,
        pool: Option<&WorkerPool>,
    ) -> &TrafficAccounts {
        let rebuilt = self.sync_topology(topo);
        self.stats.passes += 1;

        let n_dcs = topo.datacenters().len();
        let n_parts = load.partitions() as usize;
        let n_servers = topo.server_count();
        debug_assert_eq!(view.partitions() as usize, n_parts);
        debug_assert_eq!(view.servers() as usize, n_servers);

        self.accounts.reset(n_dcs, n_parts, n_servers);
        let shape_ok = self.cap_offsets.len() == n_parts * n_dcs + 1;
        if rebuilt || !shape_ok || self.view_version != Some(view.version()) {
            self.stats.index_rebuilds += 1;
            // Full sweep: index which servers are worth visiting — most
            // (partition, datacenter) pairs hold no capacity at all, and
            // the one-shot pass burns its time discovering that inside
            // the hot loop. The shard passes load remaining capacity
            // from this index each epoch.
            self.cap_servers.clear();
            self.cap_offsets.clear();
            self.cap_offsets.reserve(n_parts * n_dcs + 1);
            for p_idx in 0..n_parts {
                let caps = view.partition_capacities(PartitionId::new(p_idx as u32));
                for alive in &self.dc_alive {
                    self.cap_offsets.push(self.cap_servers.len() as u32);
                    for &server in alive {
                        if caps[server.index()] > 0.0 {
                            self.cap_servers.push(server);
                        }
                    }
                }
            }
            self.cap_offsets.push(self.cap_servers.len() as u32);
            self.view_version = Some(view.version());
        } else {
            self.stats.fast_restores += 1;
        }

        // Lay the shards out over the partitions. The serial path is
        // the one-shard case of the same code, which is what makes
        // serial ≡ parallel structural rather than coincidental.
        let n_shards = pool.map_or(1, WorkerPool::size).max(1);
        self.shards.resize_with(n_shards, Shard::default);
        for (k, shard) in self.shards.iter_mut().enumerate() {
            let (lo, hi) = shard_bounds(n_parts, n_shards, k);
            shard.layout(lo, hi, n_dcs, n_servers);
        }

        let ctx = PassCtx {
            routes: &self.routes,
            server_dc: &self.server_dc,
            cap_offsets: &self.cap_offsets,
            cap_servers: &self.cap_servers,
            n_dcs,
            load,
            view,
        };
        match pool {
            Some(pool) if n_shards > 1 => {
                let ctx = &ctx;
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = self
                    .shards
                    .iter_mut()
                    .map(|shard| {
                        Box::new(move || run_shard(ctx, shard)) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                pool.run(jobs);
            }
            _ => {
                for shard in &mut self.shards {
                    run_shard(&ctx, shard);
                }
            }
        }

        // Canonical merge: shards ascending — hence partitions
        // ascending — regardless of how many shards ran or on which
        // threads they finished.
        let acc = &mut self.accounts;
        for shard in &self.shards {
            for (i, p_idx) in (shard.lo..shard.hi).enumerate() {
                acc.holder_dc.push(shard.holder_dc[i]);
                let tr = shard.dc_traffic.row(i);
                let of = shard.dc_outflow.row(i);
                for d in 0..n_dcs {
                    // Zero means untouched (the pass only adds positive
                    // amounts), and the global grids were just reset.
                    if tr[d] != 0.0 {
                        acc.dc_traffic.set(d, p_idx, tr[d]);
                    }
                    if of[d] != 0.0 {
                        acc.dc_outflow.set(d, p_idx, of[d]);
                    }
                }
                for &(server, take) in &shard.served[i] {
                    acc.served.add(server as usize, p_idx, take);
                }
                acc.unserved[p_idx] = shard.unserved[i];
                acc.hops_weighted += shard.hops_weighted[i];
                acc.latency_weighted_ms += shard.latency_weighted_ms[i];
                acc.sla_within += shard.sla_within[i];
                acc.served_total += shard.served_total[i];
                acc.unserved_total += shard.unserved[i];
            }
        }

        &self.accounts
    }

    /// The accounts from the most recent pass (all-zero shapes before
    /// the first).
    pub fn accounts(&self) -> &TrafficAccounts {
        &self.accounts
    }

    /// Consume the engine, keeping only the last pass's accounts — the
    /// one-shot path [`compute_traffic`](crate::absorption::compute_traffic)
    /// uses.
    pub fn into_accounts(self) -> TrafficAccounts {
        self.accounts
    }
}

/// The accounting pass over one shard's partitions. Reads only the
/// shared [`PassCtx`]; writes only shard-local buffers. The
/// within-partition order is the legacy accounting order — requesters
/// ascending, hops in path order, indexed servers in visit order — so
/// every per-partition quantity is computed by the exact `f64` sequence
/// the one-shot pass uses.
fn run_shard(ctx: &PassCtx<'_>, shard: &mut Shard) {
    let Shard {
        lo,
        hi,
        remaining,
        dc_traffic,
        dc_outflow,
        served,
        holder_dc,
        unserved,
        hops_weighted,
        latency_weighted_ms,
        sla_within,
        served_total,
    } = shard;
    let n_dcs = ctx.n_dcs;

    for (i, p_idx) in (*lo..*hi).enumerate() {
        let p = PartitionId::new(p_idx as u32);
        let caps = ctx.view.partition_capacities(p);
        let rem_row = remaining.row_mut(i);
        // Load remaining capacity for the indexed cells only; stale
        // cells are never read because the absorption loop below visits
        // indexed servers exclusively.
        let seg_start = ctx.cap_offsets[p_idx * n_dcs] as usize;
        let seg_end = ctx.cap_offsets[(p_idx + 1) * n_dcs] as usize;
        for &server in &ctx.cap_servers[seg_start..seg_end] {
            rem_row[server.index()] = caps[server.index()];
        }
        let tr_row = dc_traffic.row_mut(i);
        let of_row = dc_outflow.row_mut(i);
        tr_row.fill(0.0);
        of_row.fill(0.0);
        let served_i = &mut served[i];
        served_i.clear();
        let mut unserved_p = 0.0;
        let mut hops_p = 0.0;
        let mut latency_p = 0.0;
        let mut sla_p = 0.0;
        let mut served_p = 0.0;

        let holder = ctx.view.holder(p);
        let hdc = ctx.server_dc.get(holder.index()).copied().unwrap_or(DatacenterId::new(0));
        holder_dc[i] = hdc;

        for j_idx in 0..ctx.load.datacenters() {
            let j = DatacenterId::new(j_idx);
            let q = ctx.load.get(p, j) as f64;
            if q == 0.0 {
                continue;
            }
            let Some((hops, cum_ms)) = ctx.routes.route(j, hdc) else {
                // Holder unreachable (partitioned WAN): everything
                // drops without travelling.
                unserved_p += q;
                continue;
            };
            let mut residual = q;
            let mut served_here = 0.0;
            for (hop, &dc) in hops.iter().enumerate() {
                // One-way latency from the requester to this hop,
                // precomputed in path order by the route table.
                let lat_ms = cum_ms[hop];
                // eq. 4/5: the node's traffic is the residual
                // reaching it.
                tr_row[dc.index()] += residual;
                // Replicas in this datacenter absorb what they can:
                // only the prefiltered capacity-bearing servers,
                // in the same order the legacy pass visits them.
                let seg = p_idx * n_dcs + dc.index();
                let servers = &ctx.cap_servers
                    [ctx.cap_offsets[seg] as usize..ctx.cap_offsets[seg + 1] as usize];
                for &server in servers {
                    let cap = &mut rem_row[server.index()];
                    if *cap <= 0.0 {
                        continue;
                    }
                    let take = cap.min(residual);
                    if take > 0.0 {
                        *cap -= take;
                        served_i.push((server.0, take));
                        hops_p += hop as f64 * take;
                        let rtt = 2.0 * lat_ms + INTRA_DC_LATENCY_MS;
                        latency_p += rtt * take;
                        if rtt <= SLA_TARGET_MS {
                            sla_p += take;
                        }
                        served_here += take;
                        residual -= take;
                    }
                    if residual <= 0.0 {
                        break;
                    }
                }
                if residual <= 0.0 {
                    break;
                }
                // What leaves this DC toward the next hop is its
                // forwarding traffic (the terminal hop forwards
                // nothing).
                if hop + 1 < hops.len() {
                    of_row[dc.index()] += residual;
                }
            }
            served_p += served_here;
            if residual > 0.0 {
                // Travelled the whole path and still unserved.
                unserved_p += residual;
                hops_p += (hops.len() - 1) as f64 * residual;
            }
        }

        unserved[i] = unserved_p;
        hops_weighted[i] = hops_p;
        latency_weighted_ms[i] = latency_p;
        sla_within[i] = sla_p;
        served_total[i] = served_p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absorption::compute_traffic;
    use rfh_topology::TopologyBuilder;
    use rfh_types::{Continent, GeoPoint};
    use rfh_workload::QueryLoad;

    /// Chain A(0) — B(1) — C(2), one server per datacenter.
    fn chain() -> Topology {
        let mut b = TopologyBuilder::new();
        let a = b
            .datacenter("A", Continent::NorthAmerica, "USA", "A1", GeoPoint::new(0.0, 0.0), 1, 1, 1)
            .unwrap();
        let m = b
            .datacenter(
                "B",
                Continent::NorthAmerica,
                "USA",
                "B1",
                GeoPoint::new(0.0, 10.0),
                1,
                1,
                1,
            )
            .unwrap();
        let c = b
            .datacenter(
                "C",
                Continent::NorthAmerica,
                "USA",
                "C1",
                GeoPoint::new(0.0, 20.0),
                1,
                1,
                1,
            )
            .unwrap();
        b.link(a, m, 10.0).unwrap();
        b.link(m, c, 10.0).unwrap();
        b.build(0.0, 1).unwrap()
    }

    fn sample_load(parts: u32, dcs: u32) -> QueryLoad {
        let mut load = QueryLoad::zeros(parts, dcs);
        for p in 0..parts {
            for d in 0..dcs {
                load.add(PartitionId::new(p), DatacenterId::new(d), p * 7 + d * 3 + 1);
            }
        }
        load
    }

    fn sample_view(parts: u32, servers: u32) -> PlacementView {
        let holders: Vec<ServerId> = (0..parts).map(|p| ServerId::new(p % servers)).collect();
        let mut view = PlacementView::new(parts, servers, holders);
        for p in 0..parts {
            view.add_capacity(PartitionId::new(p), ServerId::new((p + 1) % servers), 8.0);
        }
        view
    }

    #[test]
    fn reused_engine_is_bit_identical_to_one_shot_pass() {
        let topo = chain();
        let load = sample_load(4, 3);
        let view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        // Run twice on the same engine: the second pass exercises the
        // zero-in-place reset path.
        engine.account(&topo, &load, &view);
        let reused = engine.account(&topo, &load, &view).clone();
        assert_eq!(reused, compute_traffic(&topo, &load, &view));
    }

    #[test]
    fn sharded_pass_is_bit_identical_for_any_pool_size() {
        let topo = chain();
        let load = sample_load(5, 3);
        let view = sample_view(5, 3);
        let serial = compute_traffic(&topo, &load, &view);
        for workers in [1, 2, 3, 7, 11] {
            let pool = WorkerPool::new(workers);
            let mut engine = TrafficEngine::new();
            // Twice: both the index-rebuild and the fast-restore pass.
            engine.account_sharded(&topo, &load, &view, &pool);
            let sharded = engine.account_sharded(&topo, &load, &view, &pool).clone();
            assert_eq!(sharded, serial, "{workers} workers");
        }
    }

    #[test]
    fn shard_layout_survives_pool_size_changes() {
        // The same engine alternates serial and pooled passes: shard
        // buffers must relayout without residue.
        let topo = chain();
        let load = sample_load(4, 3);
        let view = sample_view(4, 3);
        let serial = compute_traffic(&topo, &load, &view);
        let mut engine = TrafficEngine::new();
        let big = WorkerPool::new(6);
        let small = WorkerPool::new(2);
        assert_eq!(engine.account_sharded(&topo, &load, &view, &big), &serial);
        assert_eq!(engine.account(&topo, &load, &view), &serial);
        assert_eq!(engine.account_sharded(&topo, &load, &view, &small), &serial);
        assert_eq!(engine.account_sharded(&topo, &load, &view, &big), &serial);
    }

    #[test]
    fn view_mutation_between_passes_invalidates_capacity_index() {
        let topo = chain();
        let load = sample_load(4, 3);
        let mut view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        engine.account(&topo, &load, &view);
        // Same view object, same version: the fast reload path.
        assert_eq!(engine.account(&topo, &load, &view), &compute_traffic(&topo, &load, &view));

        // Mutate the view in place (capacity appears on a new server
        // and a holder moves): the version stamp must force a full
        // re-index, keeping the engine bit-identical to the one-shot.
        view.add_capacity(PartitionId::new(2), ServerId::new(0), 3.0);
        view.set_holder(PartitionId::new(0), ServerId::new(2));
        assert_eq!(engine.account(&topo, &load, &view), &compute_traffic(&topo, &load, &view));
    }

    #[test]
    fn stats_count_fast_and_slow_paths() {
        let topo = chain();
        let load = sample_load(4, 3);
        let mut view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        engine.account(&topo, &load, &view);
        engine.account(&topo, &load, &view);
        engine.account(&topo, &load, &view);
        assert_eq!(
            engine.stats(),
            EngineStats { passes: 3, topo_rebuilds: 1, index_rebuilds: 1, fast_restores: 2 }
        );
        // A placement change forces a re-index on the next pass only.
        view.add_capacity(PartitionId::new(1), ServerId::new(0), 2.0);
        engine.account(&topo, &load, &view);
        engine.account(&topo, &load, &view);
        let stats = engine.stats();
        assert_eq!((stats.index_rebuilds, stats.fast_restores), (2, 3));

        let mut reg = MetricsRegistry::new();
        stats.collect_metrics(&mut reg);
        assert_eq!(reg.get("traffic.engine.passes"), Some(&rfh_obs::Metric::Counter(5)));
        assert_eq!(reg.get("traffic.engine.fast_restores"), Some(&rfh_obs::Metric::Counter(3)));
    }

    #[test]
    fn generation_bump_invalidates_caches() {
        let mut topo = chain();
        let load = sample_load(4, 3);
        let view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        engine.account(&topo, &load, &view);
        assert_eq!(engine.generation(), Some(topo.generation()));
        assert!(!engine.sync_topology(&topo), "same generation must not rebuild");

        // Kill the middle server: the engine must notice and match a
        // fresh engine built against the failed topology.
        topo.fail_server(ServerId::new(1)).unwrap();
        assert_ne!(engine.generation(), Some(topo.generation()));
        let stale_refreshed = engine.account(&topo, &load, &view).clone();
        let mut fresh = TrafficEngine::new();
        assert_eq!(&stale_refreshed, fresh.account(&topo, &load, &view));
        assert_eq!(engine.generation(), Some(topo.generation()));
    }
}
