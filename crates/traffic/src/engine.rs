//! The reusable per-epoch traffic engine.
//!
//! [`compute_traffic`](crate::absorption::compute_traffic) allocates
//! its whole working set — three grids, the remaining-capacity matrix,
//! and a routing path per `(requester, holder)` pair — on every call.
//! Inside a simulation that pass runs once per epoch per policy, so the
//! allocations and the repeated shortest-path walks dominate the hot
//! loop.
//!
//! [`TrafficEngine`] hoists all of that into reusable state:
//!
//! * a [`RouteTable`] caching every DC pair's path *and* the cumulative
//!   latency at each hop, refreshed only when the topology's
//!   [`generation`](rfh_topology::Topology::generation) moves;
//! * per-generation membership caches (each server's datacenter, each
//!   datacenter's alive servers in `server_ids()` order);
//! * the [`TrafficAccounts`] block and the remaining-capacity scratch
//!   grid, zeroed in place each pass.
//!
//! The pass itself replays the legacy accounting loop *verbatim* — same
//! iteration order, same `f64` accumulation sequence — so an engine's
//! output is bit-identical to `compute_traffic` on the same inputs
//! (property-tested in `tests/prop_engine.rs`). Determinism of the
//! simulator therefore survives the refactor unchanged.

use rfh_obs::MetricsRegistry;
use rfh_topology::{RouteTable, Topology};
use rfh_types::{DatacenterId, PartitionId, ServerId};
use rfh_workload::QueryLoad;

use crate::absorption::{TrafficAccounts, INTRA_DC_LATENCY_MS, SLA_TARGET_MS};
use crate::grid::Grid;
use crate::placement::PlacementView;

/// A stateful traffic pass: all buffers preallocated, routes cached.
///
/// One engine serves one topology lineage: it keys its caches on
/// [`Topology::generation`] and refreshes them lazily inside
/// [`account`](Self::account). Engines are cheap to create but only pay
/// off when reused; they are deliberately *not* shared between policy
/// threads — give each thread its own (share-nothing).
#[derive(Debug, Clone)]
pub struct TrafficEngine {
    routes: RouteTable,
    /// Generation the membership caches below were built for.
    synced: Option<u64>,
    /// Datacenter of each server, indexed by server id.
    server_dc: Vec<DatacenterId>,
    /// Alive servers of each datacenter, in `server_ids()` order —
    /// the exact order the legacy pass visits them.
    dc_alive: Vec<Vec<ServerId>>,
    /// Remaining per-(partition, server) capacity scratch.
    remaining: Grid,
    /// Per-(partition, datacenter) segment bounds into
    /// [`cap_servers`](Self::cap_servers): `partition * n_dcs + dc`
    /// and the next entry delimit that pair's capacity-bearing servers.
    cap_offsets: Vec<u32>,
    /// Alive servers holding non-zero capacity, grouped per
    /// (partition, datacenter) in visit order. Skipping the rest up
    /// front is behavior-neutral: the pass performs no arithmetic on a
    /// zero-capacity server.
    cap_servers: Vec<ServerId>,
    /// [`PlacementView::version`] the capacity index above was built
    /// for: while neither it nor the topology generation moves, the
    /// index stays valid and only the consumed capacities need
    /// restoring between passes.
    view_version: Option<u64>,
    accounts: TrafficAccounts,
    stats: EngineStats,
}

/// Cache-effectiveness counters of a [`TrafficEngine`]: how often the
/// per-epoch pass got away with the fast capacity-restore path versus
/// paying a topology rebuild or a full capacity re-index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Traffic passes run ([`TrafficEngine::account`] calls).
    pub passes: u64,
    /// Route/membership cache rebuilds (topology generation moved).
    pub topo_rebuilds: u64,
    /// Full capacity-index sweeps (rebuild, reshape, or the
    /// [`PlacementView::version`] stamp moved).
    pub index_rebuilds: u64,
    /// Fast-path passes: index valid, only consumed capacities restored
    /// — the capacity sweep was skipped entirely.
    pub fast_restores: u64,
}

impl EngineStats {
    /// Export the counters into a metrics registry under
    /// `traffic.engine.*`. The stats are lifetime totals, written
    /// set-style so re-collecting into the same registry is idempotent.
    pub fn collect_metrics(&self, registry: &mut MetricsRegistry) {
        registry.counter_total("traffic.engine.passes", self.passes);
        registry.counter_total("traffic.engine.topo_rebuilds", self.topo_rebuilds);
        registry.counter_total("traffic.engine.index_rebuilds", self.index_rebuilds);
        registry.counter_total("traffic.engine.fast_restores", self.fast_restores);
    }
}

impl Default for TrafficEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl TrafficEngine {
    /// A fresh engine with empty buffers; the first
    /// [`account`](Self::account) sizes everything.
    pub fn new() -> Self {
        TrafficEngine {
            routes: RouteTable::new(),
            synced: None,
            server_dc: Vec::new(),
            dc_alive: Vec::new(),
            remaining: Grid::zeros(0, 0),
            cap_offsets: Vec::new(),
            cap_servers: Vec::new(),
            view_version: None,
            accounts: TrafficAccounts::empty(),
            stats: EngineStats::default(),
        }
    }

    /// Cache-effectiveness counters accumulated over this engine's life.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The topology generation the caches are currently valid for.
    pub fn generation(&self) -> Option<u64> {
        self.synced
    }

    /// Refresh route + membership caches if `topo`'s generation moved
    /// (or on first use). Called by [`account`](Self::account); exposed
    /// for tests and for callers that want to pay the rebuild outside
    /// the measured pass.
    pub fn sync_topology(&mut self, topo: &Topology) -> bool {
        self.routes.sync(topo);
        if self.synced == Some(topo.generation()) && self.server_dc.len() == topo.server_count() {
            return false;
        }
        self.server_dc.clear();
        self.server_dc.extend(topo.servers().iter().map(|s| s.datacenter));

        let n_dcs = topo.datacenters().len();
        self.dc_alive.truncate(n_dcs);
        while self.dc_alive.len() < n_dcs {
            self.dc_alive.push(Vec::new());
        }
        for (d, alive) in self.dc_alive.iter_mut().enumerate() {
            alive.clear();
            let dc = topo.datacenter(DatacenterId::new(d as u32)).expect("dense dc ids");
            for server in dc.server_ids() {
                if topo.servers()[server.index()].alive {
                    alive.push(server);
                }
            }
        }
        self.synced = Some(topo.generation());
        self.stats.topo_rebuilds += 1;
        true
    }

    /// Run the traffic pass for one epoch, reusing every buffer.
    ///
    /// Semantics (and bit-level output) match
    /// [`compute_traffic`](crate::absorption::compute_traffic):
    /// `view` must describe the same cluster as `topo` (same server
    /// count) and the same partition count as `load`. The returned
    /// borrow is valid until the next call on this engine.
    pub fn account(
        &mut self,
        topo: &Topology,
        load: &QueryLoad,
        view: &PlacementView,
    ) -> &TrafficAccounts {
        let rebuilt = self.sync_topology(topo);
        self.stats.passes += 1;

        let n_dcs = topo.datacenters().len();
        let n_parts = load.partitions() as usize;
        let n_servers = topo.server_count();
        debug_assert_eq!(view.partitions() as usize, n_parts);
        debug_assert_eq!(view.servers() as usize, n_servers);

        self.accounts.reset(n_dcs, n_parts, n_servers);
        // The scratch grid only needs reshaping (with its zero-fill) on
        // shape change: the sweeps below rewrite every cell the pass
        // will read (zero-capacity and dead servers are never read).
        let shape_ok = self.remaining.rows() == n_parts
            && self.remaining.cols() == n_servers
            && self.cap_offsets.len() == n_parts * n_dcs + 1;
        if !shape_ok {
            self.remaining.reset(n_parts, n_servers);
        }
        if rebuilt || !shape_ok || self.view_version != Some(view.version()) {
            self.stats.index_rebuilds += 1;
            // Full sweep: load the remaining-capacity scratch and, in
            // the same pass, index which servers are worth visiting —
            // most (partition, datacenter) pairs hold no capacity at
            // all, and the legacy pass burns its time discovering that
            // inside the hot loop.
            self.cap_servers.clear();
            self.cap_offsets.clear();
            self.cap_offsets.reserve(n_parts * n_dcs + 1);
            for p_idx in 0..n_parts {
                let caps = view.partition_capacities(PartitionId::new(p_idx as u32));
                let row = self.remaining.row_mut(p_idx);
                for alive in &self.dc_alive {
                    self.cap_offsets.push(self.cap_servers.len() as u32);
                    for &server in alive {
                        let cap = caps[server.index()];
                        if cap > 0.0 {
                            row[server.index()] = cap;
                            self.cap_servers.push(server);
                        }
                    }
                }
            }
            self.cap_offsets.push(self.cap_servers.len() as u32);
            self.view_version = Some(view.version());
        } else {
            self.stats.fast_restores += 1;
            // Neither the membership nor the placement moved since the
            // index was built: only the capacities the last pass
            // consumed need restoring, and the index already knows
            // exactly which cells those are.
            for p_idx in 0..n_parts {
                let caps = view.partition_capacities(PartitionId::new(p_idx as u32));
                let row = self.remaining.row_mut(p_idx);
                let start = self.cap_offsets[p_idx * n_dcs] as usize;
                let end = self.cap_offsets[(p_idx + 1) * n_dcs] as usize;
                for &server in &self.cap_servers[start..end] {
                    row[server.index()] = caps[server.index()];
                }
            }
        }

        let acc = &mut self.accounts;
        let routes = &self.routes;
        let remaining = &mut self.remaining;
        let server_dc = &self.server_dc;
        let cap_offsets = &self.cap_offsets;
        let cap_servers = &self.cap_servers;

        for p_idx in 0..n_parts {
            let p = PartitionId::new(p_idx as u32);
            let holder = view.holder(p);
            let hdc = server_dc.get(holder.index()).copied().unwrap_or(DatacenterId::new(0));
            acc.holder_dc.push(hdc);

            for j_idx in 0..load.datacenters() {
                let j = DatacenterId::new(j_idx);
                let q = load.get(p, j) as f64;
                if q == 0.0 {
                    continue;
                }
                let Some((hops, cum_ms)) = routes.route(j, hdc) else {
                    // Holder unreachable (partitioned WAN): everything
                    // drops without travelling.
                    acc.unserved[p_idx] += q;
                    acc.unserved_total += q;
                    continue;
                };
                let mut residual = q;
                let mut served_here = 0.0;
                let row = remaining.row_mut(p_idx);
                for (hop, &dc) in hops.iter().enumerate() {
                    // One-way latency from the requester to this hop,
                    // precomputed in path order by the route table.
                    let lat_ms = cum_ms[hop];
                    // eq. 4/5: the node's traffic is the residual
                    // reaching it.
                    acc.dc_traffic.add(dc.index(), p_idx, residual);
                    // Replicas in this datacenter absorb what they can:
                    // only the prefiltered capacity-bearing servers,
                    // in the same order the legacy pass visits them.
                    let seg = p_idx * n_dcs + dc.index();
                    let servers =
                        &cap_servers[cap_offsets[seg] as usize..cap_offsets[seg + 1] as usize];
                    for &server in servers {
                        let cap = &mut row[server.index()];
                        if *cap <= 0.0 {
                            continue;
                        }
                        let take = cap.min(residual);
                        if take > 0.0 {
                            *cap -= take;
                            acc.served.add(server.index(), p_idx, take);
                            acc.hops_weighted += hop as f64 * take;
                            let rtt = 2.0 * lat_ms + INTRA_DC_LATENCY_MS;
                            acc.latency_weighted_ms += rtt * take;
                            if rtt <= SLA_TARGET_MS {
                                acc.sla_within += take;
                            }
                            served_here += take;
                            residual -= take;
                        }
                        if residual <= 0.0 {
                            break;
                        }
                    }
                    if residual <= 0.0 {
                        break;
                    }
                    // What leaves this DC toward the next hop is its
                    // forwarding traffic (the terminal hop forwards
                    // nothing).
                    if hop + 1 < hops.len() {
                        acc.dc_outflow.add(dc.index(), p_idx, residual);
                    }
                }
                acc.served_total += served_here;
                if residual > 0.0 {
                    // Travelled the whole path and still unserved.
                    acc.unserved[p_idx] += residual;
                    acc.unserved_total += residual;
                    acc.hops_weighted += (hops.len() - 1) as f64 * residual;
                }
            }
        }

        &self.accounts
    }

    /// The accounts from the most recent pass (all-zero shapes before
    /// the first).
    pub fn accounts(&self) -> &TrafficAccounts {
        &self.accounts
    }

    /// Consume the engine, keeping only the last pass's accounts — the
    /// one-shot path [`compute_traffic`](crate::absorption::compute_traffic)
    /// uses.
    pub fn into_accounts(self) -> TrafficAccounts {
        self.accounts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absorption::compute_traffic;
    use rfh_topology::TopologyBuilder;
    use rfh_types::{Continent, GeoPoint};
    use rfh_workload::QueryLoad;

    /// Chain A(0) — B(1) — C(2), one server per datacenter.
    fn chain() -> Topology {
        let mut b = TopologyBuilder::new();
        let a = b
            .datacenter("A", Continent::NorthAmerica, "USA", "A1", GeoPoint::new(0.0, 0.0), 1, 1, 1)
            .unwrap();
        let m = b
            .datacenter(
                "B",
                Continent::NorthAmerica,
                "USA",
                "B1",
                GeoPoint::new(0.0, 10.0),
                1,
                1,
                1,
            )
            .unwrap();
        let c = b
            .datacenter(
                "C",
                Continent::NorthAmerica,
                "USA",
                "C1",
                GeoPoint::new(0.0, 20.0),
                1,
                1,
                1,
            )
            .unwrap();
        b.link(a, m, 10.0).unwrap();
        b.link(m, c, 10.0).unwrap();
        b.build(0.0, 1).unwrap()
    }

    fn sample_load(parts: u32, dcs: u32) -> QueryLoad {
        let mut load = QueryLoad::zeros(parts, dcs);
        for p in 0..parts {
            for d in 0..dcs {
                load.add(PartitionId::new(p), DatacenterId::new(d), p * 7 + d * 3 + 1);
            }
        }
        load
    }

    fn sample_view(parts: u32, servers: u32) -> PlacementView {
        let holders: Vec<ServerId> = (0..parts).map(|p| ServerId::new(p % servers)).collect();
        let mut view = PlacementView::new(parts, servers, holders);
        for p in 0..parts {
            view.add_capacity(PartitionId::new(p), ServerId::new((p + 1) % servers), 8.0);
        }
        view
    }

    #[test]
    fn reused_engine_is_bit_identical_to_one_shot_pass() {
        let topo = chain();
        let load = sample_load(4, 3);
        let view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        // Run twice on the same engine: the second pass exercises the
        // zero-in-place reset path.
        engine.account(&topo, &load, &view);
        let reused = engine.account(&topo, &load, &view).clone();
        assert_eq!(reused, compute_traffic(&topo, &load, &view));
    }

    #[test]
    fn view_mutation_between_passes_invalidates_capacity_index() {
        let topo = chain();
        let load = sample_load(4, 3);
        let mut view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        engine.account(&topo, &load, &view);
        // Same view object, same version: the fast reload path.
        assert_eq!(engine.account(&topo, &load, &view), &compute_traffic(&topo, &load, &view));

        // Mutate the view in place (capacity appears on a new server
        // and a holder moves): the version stamp must force a full
        // re-index, keeping the engine bit-identical to the one-shot.
        view.add_capacity(PartitionId::new(2), ServerId::new(0), 3.0);
        view.set_holder(PartitionId::new(0), ServerId::new(2));
        assert_eq!(engine.account(&topo, &load, &view), &compute_traffic(&topo, &load, &view));
    }

    #[test]
    fn stats_count_fast_and_slow_paths() {
        let topo = chain();
        let load = sample_load(4, 3);
        let mut view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        engine.account(&topo, &load, &view);
        engine.account(&topo, &load, &view);
        engine.account(&topo, &load, &view);
        assert_eq!(
            engine.stats(),
            EngineStats { passes: 3, topo_rebuilds: 1, index_rebuilds: 1, fast_restores: 2 }
        );
        // A placement change forces a re-index on the next pass only.
        view.add_capacity(PartitionId::new(1), ServerId::new(0), 2.0);
        engine.account(&topo, &load, &view);
        engine.account(&topo, &load, &view);
        let stats = engine.stats();
        assert_eq!((stats.index_rebuilds, stats.fast_restores), (2, 3));

        let mut reg = MetricsRegistry::new();
        stats.collect_metrics(&mut reg);
        assert_eq!(reg.get("traffic.engine.passes"), Some(&rfh_obs::Metric::Counter(5)));
        assert_eq!(reg.get("traffic.engine.fast_restores"), Some(&rfh_obs::Metric::Counter(3)));
    }

    #[test]
    fn generation_bump_invalidates_caches() {
        let mut topo = chain();
        let load = sample_load(4, 3);
        let view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        engine.account(&topo, &load, &view);
        assert_eq!(engine.generation(), Some(topo.generation()));
        assert!(!engine.sync_topology(&topo), "same generation must not rebuild");

        // Kill the middle server: the engine must notice and match a
        // fresh engine built against the failed topology.
        topo.fail_server(ServerId::new(1)).unwrap();
        assert_ne!(engine.generation(), Some(topo.generation()));
        let stale_refreshed = engine.account(&topo, &load, &view).clone();
        let mut fresh = TrafficEngine::new();
        assert_eq!(&stale_refreshed, fresh.account(&topo, &load, &view));
        assert_eq!(engine.generation(), Some(topo.generation()));
    }
}
