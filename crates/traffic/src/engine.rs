//! The reusable per-epoch traffic engine.
//!
//! [`compute_traffic`](crate::absorption::compute_traffic) allocates
//! its whole working set — three grids, the remaining-capacity matrix,
//! and a routing path per `(requester, holder)` pair — on every call.
//! Inside a simulation that pass runs once per epoch per policy, so the
//! allocations and the repeated shortest-path walks dominate the hot
//! loop.
//!
//! [`TrafficEngine`] hoists all of that into reusable state:
//!
//! * a [`RouteTable`] caching every DC pair's path *and* the cumulative
//!   latency at each hop, refreshed only when the topology's
//!   [`generation`](rfh_topology::Topology::generation) moves;
//! * per-generation membership caches (each server's datacenter, each
//!   datacenter's alive servers in `server_ids()` order);
//! * a capacity index keyed on [`PlacementView::version`]: which
//!   servers are worth visiting per `(partition, datacenter)` pair;
//! * per-shard working buffers, zeroed in place each pass.
//!
//! ## Sharded pass, canonical merge
//!
//! Partitions are independent in the traffic pass: remaining capacity
//! is a per-partition row, every grid write lands in a per-partition
//! column, and the within-partition accounting order (requesters
//! ascending, hops in path order, indexed servers in visit order) fixes
//! every cell's value exactly. Only five scalar totals (`hops_weighted`,
//! `latency_weighted_ms`, `sla_within`, `served_total`,
//! `unserved_total`) cross partitions, and `f64` addition is not
//! associative — so the engine defines their *canonical* value as
//! per-partition subtotals folded in ascending partition order.
//!
//! The pass therefore runs as contiguous partition shards (one shard
//! serially; [`account_sharded`](TrafficEngine::account_sharded) fans
//! shards out over a [`WorkerPool`]) followed by a serial merge that
//! walks shards — hence partitions — in ascending order. Serial and
//! parallel execution share the shard code and the merge, so the output
//! is bit-identical for any thread count (property-tested in
//! `tests/prop_parallel.rs`), and `compute_traffic` (a one-shot,
//! single-shard engine) stays the semantic reference.

use rfh_obs::MetricsRegistry;
use rfh_pool::{shard_bounds, WorkerPool};
use rfh_topology::{RouteTable, Topology};
use rfh_types::{DatacenterId, PartitionId, ServerId};
use rfh_workload::QueryLoad;

use crate::absorption::{TrafficAccounts, INTRA_DC_LATENCY_MS, SLA_TARGET_MS};
use crate::grid::Grid;
use crate::placement::PlacementView;

/// A stateful traffic pass: all buffers preallocated, routes cached.
///
/// One engine serves one topology lineage: it keys its caches on
/// [`Topology::generation`] and refreshes them lazily inside
/// [`account`](Self::account). Engines are cheap to create but only pay
/// off when reused; they are deliberately *not* shared between policy
/// threads — give each thread its own (share-nothing).
#[derive(Debug, Clone)]
pub struct TrafficEngine {
    routes: RouteTable,
    /// Generation the membership caches below were built for.
    synced: Option<u64>,
    /// Datacenter of each server, indexed by server id.
    server_dc: Vec<DatacenterId>,
    /// Alive servers of each datacenter, in `server_ids()` order —
    /// the exact order the legacy pass visits them.
    dc_alive: Vec<Vec<ServerId>>,
    /// Per-(partition, datacenter) segment bounds into
    /// [`cap_servers`](Self::cap_servers): `partition * n_dcs + dc`
    /// and the next entry delimit that pair's capacity-bearing servers.
    cap_offsets: Vec<u32>,
    /// Alive servers holding non-zero capacity, grouped per
    /// (partition, datacenter) in visit order. Skipping the rest up
    /// front is behavior-neutral: the pass performs no arithmetic on a
    /// zero-capacity server.
    cap_servers: Vec<ServerId>,
    /// [`PlacementView::version`] the capacity index above was built
    /// for: while neither it nor the topology generation moves, the
    /// index stays valid and each pass only reloads the indexed cells.
    view_version: Option<u64>,
    /// Per-shard working buffers; one shard on the serial path.
    shards: Vec<Shard>,
    accounts: TrafficAccounts,
    /// Active set of the previous *sparse* pass: the partitions whose
    /// account cells that pass wrote. `Some` ⇒ the accounts can be
    /// cleared in O(prev) instead of O(partitions) by the next sparse
    /// pass; `None` (after a dense pass, a shape change, or at birth)
    /// forces a full reset first.
    sparse_prev: Option<Vec<u32>>,
    stats: EngineStats,
}

/// Shard-local working state for a contiguous partition range
/// `[lo, hi)`. Everything a shard writes during the pass lands here;
/// the global accounts are assembled afterwards by the canonical merge.
#[derive(Debug, Clone)]
struct Shard {
    /// First position of the shard's partition range (a global
    /// partition index on the dense path; an index into the pass's
    /// active list on the sparse path).
    lo: usize,
    /// One past the last position.
    hi: usize,
    /// Remaining per-server capacity scratch for the partition being
    /// processed. Partitions are sequential within a shard and each one
    /// loads its indexed cells before reading them, so one row serves
    /// the whole shard; stale cells are never read.
    remaining: Vec<f64>,
    /// Per-(local partition, datacenter) arrival traffic. Partition-
    /// major (transposed vs. the global grid) so each partition's
    /// writes stay on one contiguous row.
    dc_traffic: Grid,
    /// Per-(local partition, datacenter) forwarding traffic.
    dc_outflow: Grid,
    /// Served events per local partition, in emission order: replayed
    /// into the global served grid by the merge. All events for one
    /// `(server, partition)` cell occur within one partition's pass, so
    /// replay-in-order reproduces the cell bit for bit.
    served: Vec<Vec<(u32, f64)>>,
    /// Holder datacenter per local partition.
    holder_dc: Vec<DatacenterId>,
    /// Unserved residual per local partition. The partition's
    /// contribution to `unserved_total` is this same subtotal.
    unserved: Vec<f64>,
    /// Per-partition subtotals of the cross-partition scalars.
    hops_weighted: Vec<f64>,
    latency_weighted_ms: Vec<f64>,
    sla_within: Vec<f64>,
    served_total: Vec<f64>,
}

impl Default for Shard {
    fn default() -> Self {
        Shard {
            lo: 0,
            hi: 0,
            remaining: Vec::new(),
            dc_traffic: Grid::zeros(0, 0),
            dc_outflow: Grid::zeros(0, 0),
            served: Vec::new(),
            holder_dc: Vec::new(),
            unserved: Vec::new(),
            hops_weighted: Vec::new(),
            latency_weighted_ms: Vec::new(),
            sla_within: Vec::new(),
            served_total: Vec::new(),
        }
    }
}

impl Shard {
    /// Point this shard at `[lo, hi)` and (re)shape its buffers. Grid
    /// reshapes zero-fill; contents are otherwise left stale — the pass
    /// re-derives everything it reads.
    fn layout(&mut self, lo: usize, hi: usize, n_dcs: usize, n_servers: usize) {
        self.lo = lo;
        self.hi = hi;
        let span = hi - lo;
        self.remaining.resize(n_servers, 0.0);
        if self.dc_traffic.rows() != span || self.dc_traffic.cols() != n_dcs {
            self.dc_traffic.reset(span, n_dcs);
            self.dc_outflow.reset(span, n_dcs);
        }
        self.served.resize(span, Vec::new());
        self.holder_dc.resize(span, DatacenterId::new(0));
        self.unserved.resize(span, 0.0);
        self.hops_weighted.resize(span, 0.0);
        self.latency_weighted_ms.resize(span, 0.0);
        self.sla_within.resize(span, 0.0);
        self.served_total.resize(span, 0.0);
    }
}

/// The read-only inputs a shard pass needs — all `Sync`, shared by
/// every worker.
struct PassCtx<'a> {
    routes: &'a RouteTable,
    server_dc: &'a [DatacenterId],
    cap_offsets: &'a [u32],
    cap_servers: &'a [ServerId],
    n_dcs: usize,
    load: &'a QueryLoad,
    view: &'a PlacementView,
    /// Sparse pass: positions map through this active list to global
    /// partition ids, and the capacity index is keyed by *position*.
    /// Dense pass (`None`): position == partition id.
    parts: Option<&'a [u32]>,
}

/// Cache-effectiveness counters of a [`TrafficEngine`]: how often the
/// per-epoch pass got away with the fast capacity-restore path versus
/// paying a topology rebuild or a full capacity re-index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Traffic passes run ([`TrafficEngine::account`] calls).
    pub passes: u64,
    /// Route/membership cache rebuilds (topology generation moved).
    pub topo_rebuilds: u64,
    /// Full capacity-index sweeps (rebuild, reshape, or the
    /// [`PlacementView::version`] stamp moved).
    pub index_rebuilds: u64,
    /// Fast-path passes: index valid, only consumed capacities restored
    /// — the capacity sweep was skipped entirely.
    pub fast_restores: u64,
    /// Sparse passes run ([`TrafficEngine::account_active`] calls),
    /// also counted in [`passes`](Self::passes).
    pub sparse_passes: u64,
    /// Partitions visited by sparse passes, cumulative: the dirty-set
    /// work the engine actually performed.
    pub dirty_partitions: u64,
    /// Partitions sparse passes skipped, cumulative: the dense work the
    /// dirty-set pass avoided.
    pub skipped_partitions: u64,
}

impl EngineStats {
    /// Export the counters into a metrics registry under
    /// `traffic.engine.*`. The stats are lifetime totals, written
    /// set-style so re-collecting into the same registry is idempotent.
    pub fn collect_metrics(&self, registry: &mut MetricsRegistry) {
        registry.counter_total("traffic.engine.passes", self.passes);
        registry.counter_total("traffic.engine.topo_rebuilds", self.topo_rebuilds);
        registry.counter_total("traffic.engine.index_rebuilds", self.index_rebuilds);
        registry.counter_total("traffic.engine.fast_restores", self.fast_restores);
        registry.counter_total("traffic.engine.sparse_passes", self.sparse_passes);
        registry.counter_total("traffic.engine.dirty_partitions", self.dirty_partitions);
        registry.counter_total("traffic.engine.skipped_partitions", self.skipped_partitions);
    }
}

impl Default for TrafficEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl TrafficEngine {
    /// A fresh engine with empty buffers; the first
    /// [`account`](Self::account) sizes everything.
    pub fn new() -> Self {
        TrafficEngine {
            routes: RouteTable::new(),
            synced: None,
            server_dc: Vec::new(),
            dc_alive: Vec::new(),
            cap_offsets: Vec::new(),
            cap_servers: Vec::new(),
            view_version: None,
            shards: Vec::new(),
            accounts: TrafficAccounts::empty(),
            sparse_prev: None,
            stats: EngineStats::default(),
        }
    }

    /// Cache-effectiveness counters accumulated over this engine's life.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The topology generation the caches are currently valid for.
    pub fn generation(&self) -> Option<u64> {
        self.synced
    }

    /// Refresh route + membership caches if `topo`'s generation moved
    /// (or on first use). Called by [`account`](Self::account); exposed
    /// for tests and for callers that want to pay the rebuild outside
    /// the measured pass.
    pub fn sync_topology(&mut self, topo: &Topology) -> bool {
        self.routes.sync(topo);
        if self.synced == Some(topo.generation()) && self.server_dc.len() == topo.server_count() {
            return false;
        }
        self.server_dc.clear();
        self.server_dc.extend(topo.servers().iter().map(|s| s.datacenter));

        let n_dcs = topo.datacenters().len();
        self.dc_alive.truncate(n_dcs);
        while self.dc_alive.len() < n_dcs {
            self.dc_alive.push(Vec::new());
        }
        for (d, alive) in self.dc_alive.iter_mut().enumerate() {
            alive.clear();
            let dc = topo.datacenter(DatacenterId::new(d as u32)).expect("dense dc ids");
            for server in dc.server_ids() {
                if topo.servers()[server.index()].alive {
                    alive.push(server);
                }
            }
        }
        self.synced = Some(topo.generation());
        self.stats.topo_rebuilds += 1;
        true
    }

    /// Run the traffic pass for one epoch, reusing every buffer.
    ///
    /// Semantics (and bit-level output) match
    /// [`compute_traffic`](crate::absorption::compute_traffic):
    /// `view` must describe the same cluster as `topo` (same server
    /// count) and the same partition count as `load`. The returned
    /// borrow is valid until the next call on this engine.
    pub fn account(
        &mut self,
        topo: &Topology,
        load: &QueryLoad,
        view: &PlacementView,
    ) -> &TrafficAccounts {
        self.account_with(topo, load, view, None)
    }

    /// [`account`](Self::account), with the shard passes fanned out
    /// over `pool` (one contiguous partition shard per worker). The
    /// merge is serial and walks partitions in ascending order, so the
    /// result is bit-identical to the serial pass for any pool size.
    pub fn account_sharded(
        &mut self,
        topo: &Topology,
        load: &QueryLoad,
        view: &PlacementView,
        pool: &WorkerPool,
    ) -> &TrafficAccounts {
        self.account_with(topo, load, view, Some(pool))
    }

    fn account_with(
        &mut self,
        topo: &Topology,
        load: &QueryLoad,
        view: &PlacementView,
        pool: Option<&WorkerPool>,
    ) -> &TrafficAccounts {
        let rebuilt = self.sync_topology(topo);
        self.stats.passes += 1;

        let n_dcs = topo.datacenters().len();
        let n_parts = load.partitions() as usize;
        let n_servers = topo.server_count();
        debug_assert_eq!(view.partitions() as usize, n_parts);
        debug_assert_eq!(view.servers() as usize, n_servers);

        self.accounts.reset(n_dcs, n_parts, n_servers);
        // A dense pass rewrites every cell; the sparse partial-clear
        // bookkeeping no longer describes the accounts.
        self.sparse_prev = None;
        let shape_ok = self.cap_offsets.len() == n_parts * n_dcs + 1;
        if rebuilt || !shape_ok || self.view_version != Some(view.version()) {
            self.stats.index_rebuilds += 1;
            // Full sweep: index which servers are worth visiting — most
            // (partition, datacenter) pairs hold no capacity at all, and
            // the one-shot pass burns its time discovering that inside
            // the hot loop. The shard passes load remaining capacity
            // from this index each epoch.
            self.cap_servers.clear();
            self.cap_offsets.clear();
            self.cap_offsets.reserve(n_parts * n_dcs + 1);
            for p_idx in 0..n_parts {
                let caps = view.partition_capacities(PartitionId::new(p_idx as u32));
                for alive in &self.dc_alive {
                    self.cap_offsets.push(self.cap_servers.len() as u32);
                    for &server in alive {
                        if caps[server.index()] > 0.0 {
                            self.cap_servers.push(server);
                        }
                    }
                }
            }
            self.cap_offsets.push(self.cap_servers.len() as u32);
            self.view_version = Some(view.version());
        } else {
            self.stats.fast_restores += 1;
        }

        // Lay the shards out over the partitions. The serial path is
        // the one-shard case of the same code, which is what makes
        // serial ≡ parallel structural rather than coincidental.
        let n_shards = pool.map_or(1, WorkerPool::size).max(1);
        self.shards.resize_with(n_shards, Shard::default);
        for (k, shard) in self.shards.iter_mut().enumerate() {
            let (lo, hi) = shard_bounds(n_parts, n_shards, k);
            shard.layout(lo, hi, n_dcs, n_servers);
        }

        let ctx = PassCtx {
            routes: &self.routes,
            server_dc: &self.server_dc,
            cap_offsets: &self.cap_offsets,
            cap_servers: &self.cap_servers,
            n_dcs,
            load,
            view,
            parts: None,
        };
        run_shards(&mut self.shards, &ctx, pool);
        merge_shards(&mut self.accounts, &self.shards, None, n_dcs);

        // Cache per-server loads: the full row sum on the dense path.
        for s in 0..n_servers {
            self.accounts.server_loads[s] = self.accounts.served.row_sum(s);
        }

        &self.accounts
    }

    /// Sparse traffic pass: account only the `active` partitions
    /// (sorted ascending, deduplicated), leaving every other
    /// partition's account cells untouched.
    ///
    /// ## Contract
    ///
    /// `active` must contain **every partition with non-zero load this
    /// epoch** (supersets are fine). Under that contract the result is
    /// bit-identical to a dense [`account`](Self::account) pass on every
    /// account the callers read: an inactive partition carries zero
    /// load, so the dense pass would write exact zeros into its cells
    /// (which the sparse invariant already guarantees) and contribute
    /// exact `+0.0` terms to the five cross-partition scalars and the
    /// per-server load sums — the additive identity on these
    /// non-negative accumulators. The one deliberate exception is
    /// [`TrafficAccounts::holder_dc`], which sparse passes maintain as a
    /// persistent map: an inactive partition keeps its last-written
    /// holder datacenter (still correct — placement changes dirty their
    /// partition) instead of being re-derived each pass.
    pub fn account_active(
        &mut self,
        topo: &Topology,
        load: &QueryLoad,
        view: &PlacementView,
        active: &[u32],
    ) -> &TrafficAccounts {
        self.account_active_with(topo, load, view, active, None)
    }

    /// [`account_active`](Self::account_active) with the shard passes
    /// fanned out over `pool`, sharding the *active list* instead of the
    /// full partition range. Bit-identical to the serial sparse pass for
    /// any pool size (same shard code, same ascending canonical merge).
    pub fn account_active_sharded(
        &mut self,
        topo: &Topology,
        load: &QueryLoad,
        view: &PlacementView,
        active: &[u32],
        pool: &WorkerPool,
    ) -> &TrafficAccounts {
        self.account_active_with(topo, load, view, active, Some(pool))
    }

    fn account_active_with(
        &mut self,
        topo: &Topology,
        load: &QueryLoad,
        view: &PlacementView,
        active: &[u32],
        pool: Option<&WorkerPool>,
    ) -> &TrafficAccounts {
        self.sync_topology(topo);
        self.stats.passes += 1;
        self.stats.sparse_passes += 1;

        let n_dcs = topo.datacenters().len();
        let n_parts = load.partitions() as usize;
        let n_servers = topo.server_count();
        debug_assert_eq!(view.partitions() as usize, n_parts);
        debug_assert_eq!(view.servers() as usize, n_servers);
        debug_assert!(
            active.windows(2).all(|w| w[0] < w[1]),
            "active set must be sorted ascending and deduplicated"
        );
        debug_assert!(
            load.touched().iter().all(|t| active.binary_search(t).is_ok()),
            "active set must cover every partition with load"
        );
        self.stats.dirty_partitions += active.len() as u64;
        self.stats.skipped_partitions += (n_parts - active.len()) as u64;

        // Reset the accounts: O(prev) when the previous pass was sparse
        // at the same shape, full otherwise. Inactive cells stay zero
        // either way (the sparse invariant).
        let shape_ok = self.accounts.dc_traffic.rows() == n_dcs
            && self.accounts.dc_traffic.cols() == n_parts
            && self.accounts.served.rows() == n_servers
            && self.accounts.holder_dc.len() == n_parts;
        match self.sparse_prev.take() {
            Some(mut prev) if shape_ok => {
                self.accounts.clear_sparse(&prev);
                prev.clear();
                prev.extend_from_slice(active);
                self.sparse_prev = Some(prev);
            }
            _ => {
                self.accounts.reset(n_dcs, n_parts, n_servers);
                // holder_dc is a persistent map on the sparse path.
                self.accounts.holder_dc.resize(n_parts, DatacenterId::new(0));
                self.sparse_prev = Some(active.to_vec());
            }
        }

        // Build the capacity index over the active list, keyed by
        // *position* — the same per-partition build order as the dense
        // index, restricted to the partitions this pass visits. The
        // dense index cache is clobbered, so drop its validity stamp.
        self.cap_servers.clear();
        self.cap_offsets.clear();
        self.cap_offsets.reserve(active.len() * n_dcs + 1);
        for &pu in active {
            let caps = view.partition_capacities(PartitionId::new(pu));
            for alive in &self.dc_alive {
                self.cap_offsets.push(self.cap_servers.len() as u32);
                for &server in alive {
                    if caps[server.index()] > 0.0 {
                        self.cap_servers.push(server);
                    }
                }
            }
        }
        self.cap_offsets.push(self.cap_servers.len() as u32);
        self.view_version = None;

        let n_shards = pool.map_or(1, WorkerPool::size).max(1);
        self.shards.resize_with(n_shards, Shard::default);
        for (k, shard) in self.shards.iter_mut().enumerate() {
            let (lo, hi) = shard_bounds(active.len(), n_shards, k);
            shard.layout(lo, hi, n_dcs, n_servers);
        }

        let ctx = PassCtx {
            routes: &self.routes,
            server_dc: &self.server_dc,
            cap_offsets: &self.cap_offsets,
            cap_servers: &self.cap_servers,
            n_dcs,
            load,
            view,
            parts: Some(active),
        };
        run_shards(&mut self.shards, &ctx, pool);
        merge_shards(&mut self.accounts, &self.shards, Some(active), n_dcs);

        // Cache per-server loads by folding the active columns in
        // ascending order — bit-identical to the dense full row sum,
        // whose extra terms are all exact `+0.0`.
        for s in 0..n_servers {
            let row = self.accounts.served.row(s);
            let mut sum = 0.0;
            for &pu in active {
                sum += row[pu as usize];
            }
            self.accounts.server_loads[s] = sum;
        }

        &self.accounts
    }

    /// The accounts from the most recent pass (all-zero shapes before
    /// the first).
    pub fn accounts(&self) -> &TrafficAccounts {
        &self.accounts
    }

    /// Consume the engine, keeping only the last pass's accounts — the
    /// one-shot path [`compute_traffic`](crate::absorption::compute_traffic)
    /// uses.
    pub fn into_accounts(self) -> TrafficAccounts {
        self.accounts
    }
}

/// Run every shard, fanned out over `pool` when one is given and worth
/// using. Shared by the dense and sparse passes.
fn run_shards(shards: &mut [Shard], ctx: &PassCtx<'_>, pool: Option<&WorkerPool>) {
    match pool {
        Some(pool) if shards.len() > 1 => {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = shards
                .iter_mut()
                .map(|shard| {
                    Box::new(move || run_shard(ctx, shard)) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(jobs);
        }
        _ => {
            for shard in shards {
                run_shard(ctx, shard);
            }
        }
    }
}

/// Canonical merge: shards ascending — hence positions, hence
/// partitions ascending — regardless of how many shards ran or on which
/// threads they finished. On the sparse path (`parts` given) positions
/// map through the active list and `holder_dc` is written by index into
/// the persistent map; the dense path rebuilds `holder_dc` by push.
fn merge_shards(acc: &mut TrafficAccounts, shards: &[Shard], parts: Option<&[u32]>, n_dcs: usize) {
    for shard in shards {
        for (i, pos) in (shard.lo..shard.hi).enumerate() {
            let p_idx = match parts {
                Some(ps) => {
                    let p_idx = ps[pos] as usize;
                    acc.holder_dc[p_idx] = shard.holder_dc[i];
                    p_idx
                }
                None => {
                    acc.holder_dc.push(shard.holder_dc[i]);
                    pos
                }
            };
            let tr = shard.dc_traffic.row(i);
            let of = shard.dc_outflow.row(i);
            for d in 0..n_dcs {
                // Zero means untouched (the pass only adds positive
                // amounts), and the global cells were just reset.
                if tr[d] != 0.0 {
                    acc.dc_traffic.set(d, p_idx, tr[d]);
                }
                if of[d] != 0.0 {
                    acc.dc_outflow.set(d, p_idx, of[d]);
                }
            }
            for &(server, take) in &shard.served[i] {
                acc.served.add(server as usize, p_idx, take);
            }
            acc.unserved[p_idx] = shard.unserved[i];
            acc.hops_weighted += shard.hops_weighted[i];
            acc.latency_weighted_ms += shard.latency_weighted_ms[i];
            acc.sla_within += shard.sla_within[i];
            acc.served_total += shard.served_total[i];
            acc.unserved_total += shard.unserved[i];
        }
    }
}

/// The accounting pass over one shard's positions. Reads only the
/// shared [`PassCtx`]; writes only shard-local buffers. The
/// within-partition order is the legacy accounting order — requesters
/// ascending, hops in path order, indexed servers in visit order — so
/// every per-partition quantity is computed by the exact `f64` sequence
/// the one-shot pass uses, on the dense and sparse paths alike.
fn run_shard(ctx: &PassCtx<'_>, shard: &mut Shard) {
    let Shard {
        lo,
        hi,
        remaining,
        dc_traffic,
        dc_outflow,
        served,
        holder_dc,
        unserved,
        hops_weighted,
        latency_weighted_ms,
        sla_within,
        served_total,
    } = shard;
    let n_dcs = ctx.n_dcs;

    for (i, pos) in (*lo..*hi).enumerate() {
        let p_idx = match ctx.parts {
            Some(parts) => parts[pos] as usize,
            None => pos,
        };
        let p = PartitionId::new(p_idx as u32);
        let caps = ctx.view.partition_capacities(p);
        let rem_row = remaining.as_mut_slice();
        // Load remaining capacity for the indexed cells only; stale
        // cells (including leftovers from this shard's previous
        // partition) are never read because the absorption loop below
        // visits indexed servers exclusively. The index is keyed by
        // position: on the dense path position == partition id.
        let seg_start = ctx.cap_offsets[pos * n_dcs] as usize;
        let seg_end = ctx.cap_offsets[(pos + 1) * n_dcs] as usize;
        for &server in &ctx.cap_servers[seg_start..seg_end] {
            rem_row[server.index()] = caps[server.index()];
        }
        let tr_row = dc_traffic.row_mut(i);
        let of_row = dc_outflow.row_mut(i);
        tr_row.fill(0.0);
        of_row.fill(0.0);
        let served_i = &mut served[i];
        served_i.clear();
        let mut unserved_p = 0.0;
        let mut hops_p = 0.0;
        let mut latency_p = 0.0;
        let mut sla_p = 0.0;
        let mut served_p = 0.0;

        let holder = ctx.view.holder(p);
        let hdc = ctx.server_dc.get(holder.index()).copied().unwrap_or(DatacenterId::new(0));
        holder_dc[i] = hdc;

        for j_idx in 0..ctx.load.datacenters() {
            let j = DatacenterId::new(j_idx);
            let q = ctx.load.get(p, j) as f64;
            if q == 0.0 {
                continue;
            }
            let Some((hops, cum_ms)) = ctx.routes.route(j, hdc) else {
                // Holder unreachable (partitioned WAN): everything
                // drops without travelling.
                unserved_p += q;
                continue;
            };
            let mut residual = q;
            let mut served_here = 0.0;
            for (hop, &dc) in hops.iter().enumerate() {
                // One-way latency from the requester to this hop,
                // precomputed in path order by the route table.
                let lat_ms = cum_ms[hop];
                // eq. 4/5: the node's traffic is the residual
                // reaching it.
                tr_row[dc.index()] += residual;
                // Replicas in this datacenter absorb what they can:
                // only the prefiltered capacity-bearing servers,
                // in the same order the legacy pass visits them.
                let seg = pos * n_dcs + dc.index();
                let servers = &ctx.cap_servers
                    [ctx.cap_offsets[seg] as usize..ctx.cap_offsets[seg + 1] as usize];
                for &server in servers {
                    let cap = &mut rem_row[server.index()];
                    if *cap <= 0.0 {
                        continue;
                    }
                    let take = cap.min(residual);
                    if take > 0.0 {
                        *cap -= take;
                        served_i.push((server.0, take));
                        hops_p += hop as f64 * take;
                        let rtt = 2.0 * lat_ms + INTRA_DC_LATENCY_MS;
                        latency_p += rtt * take;
                        if rtt <= SLA_TARGET_MS {
                            sla_p += take;
                        }
                        served_here += take;
                        residual -= take;
                    }
                    if residual <= 0.0 {
                        break;
                    }
                }
                if residual <= 0.0 {
                    break;
                }
                // What leaves this DC toward the next hop is its
                // forwarding traffic (the terminal hop forwards
                // nothing).
                if hop + 1 < hops.len() {
                    of_row[dc.index()] += residual;
                }
            }
            served_p += served_here;
            if residual > 0.0 {
                // Travelled the whole path and still unserved.
                unserved_p += residual;
                hops_p += (hops.len() - 1) as f64 * residual;
            }
        }

        unserved[i] = unserved_p;
        hops_weighted[i] = hops_p;
        latency_weighted_ms[i] = latency_p;
        sla_within[i] = sla_p;
        served_total[i] = served_p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absorption::compute_traffic;
    use rfh_topology::TopologyBuilder;
    use rfh_types::{Continent, GeoPoint};
    use rfh_workload::QueryLoad;

    /// Chain A(0) — B(1) — C(2), one server per datacenter.
    fn chain() -> Topology {
        let mut b = TopologyBuilder::new();
        let a = b
            .datacenter("A", Continent::NorthAmerica, "USA", "A1", GeoPoint::new(0.0, 0.0), 1, 1, 1)
            .unwrap();
        let m = b
            .datacenter(
                "B",
                Continent::NorthAmerica,
                "USA",
                "B1",
                GeoPoint::new(0.0, 10.0),
                1,
                1,
                1,
            )
            .unwrap();
        let c = b
            .datacenter(
                "C",
                Continent::NorthAmerica,
                "USA",
                "C1",
                GeoPoint::new(0.0, 20.0),
                1,
                1,
                1,
            )
            .unwrap();
        b.link(a, m, 10.0).unwrap();
        b.link(m, c, 10.0).unwrap();
        b.build(0.0, 1).unwrap()
    }

    fn sample_load(parts: u32, dcs: u32) -> QueryLoad {
        let mut load = QueryLoad::zeros(parts, dcs);
        for p in 0..parts {
            for d in 0..dcs {
                load.add(PartitionId::new(p), DatacenterId::new(d), p * 7 + d * 3 + 1);
            }
        }
        load
    }

    fn sample_view(parts: u32, servers: u32) -> PlacementView {
        let holders: Vec<ServerId> = (0..parts).map(|p| ServerId::new(p % servers)).collect();
        let mut view = PlacementView::new(parts, servers, holders);
        for p in 0..parts {
            view.add_capacity(PartitionId::new(p), ServerId::new((p + 1) % servers), 8.0);
        }
        view
    }

    #[test]
    fn reused_engine_is_bit_identical_to_one_shot_pass() {
        let topo = chain();
        let load = sample_load(4, 3);
        let view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        // Run twice on the same engine: the second pass exercises the
        // zero-in-place reset path.
        engine.account(&topo, &load, &view);
        let reused = engine.account(&topo, &load, &view).clone();
        assert_eq!(reused, compute_traffic(&topo, &load, &view));
    }

    #[test]
    fn sharded_pass_is_bit_identical_for_any_pool_size() {
        let topo = chain();
        let load = sample_load(5, 3);
        let view = sample_view(5, 3);
        let serial = compute_traffic(&topo, &load, &view);
        for workers in [1, 2, 3, 7, 11] {
            let pool = WorkerPool::new(workers);
            let mut engine = TrafficEngine::new();
            // Twice: both the index-rebuild and the fast-restore pass.
            engine.account_sharded(&topo, &load, &view, &pool);
            let sharded = engine.account_sharded(&topo, &load, &view, &pool).clone();
            assert_eq!(sharded, serial, "{workers} workers");
        }
    }

    #[test]
    fn shard_layout_survives_pool_size_changes() {
        // The same engine alternates serial and pooled passes: shard
        // buffers must relayout without residue.
        let topo = chain();
        let load = sample_load(4, 3);
        let view = sample_view(4, 3);
        let serial = compute_traffic(&topo, &load, &view);
        let mut engine = TrafficEngine::new();
        let big = WorkerPool::new(6);
        let small = WorkerPool::new(2);
        assert_eq!(engine.account_sharded(&topo, &load, &view, &big), &serial);
        assert_eq!(engine.account(&topo, &load, &view), &serial);
        assert_eq!(engine.account_sharded(&topo, &load, &view, &small), &serial);
        assert_eq!(engine.account_sharded(&topo, &load, &view, &big), &serial);
    }

    #[test]
    fn view_mutation_between_passes_invalidates_capacity_index() {
        let topo = chain();
        let load = sample_load(4, 3);
        let mut view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        engine.account(&topo, &load, &view);
        // Same view object, same version: the fast reload path.
        assert_eq!(engine.account(&topo, &load, &view), &compute_traffic(&topo, &load, &view));

        // Mutate the view in place (capacity appears on a new server
        // and a holder moves): the version stamp must force a full
        // re-index, keeping the engine bit-identical to the one-shot.
        view.add_capacity(PartitionId::new(2), ServerId::new(0), 3.0);
        view.set_holder(PartitionId::new(0), ServerId::new(2));
        assert_eq!(engine.account(&topo, &load, &view), &compute_traffic(&topo, &load, &view));
    }

    #[test]
    fn stats_count_fast_and_slow_paths() {
        let topo = chain();
        let load = sample_load(4, 3);
        let mut view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        engine.account(&topo, &load, &view);
        engine.account(&topo, &load, &view);
        engine.account(&topo, &load, &view);
        assert_eq!(
            engine.stats(),
            EngineStats {
                passes: 3,
                topo_rebuilds: 1,
                index_rebuilds: 1,
                fast_restores: 2,
                ..EngineStats::default()
            }
        );
        // A placement change forces a re-index on the next pass only.
        view.add_capacity(PartitionId::new(1), ServerId::new(0), 2.0);
        engine.account(&topo, &load, &view);
        engine.account(&topo, &load, &view);
        let stats = engine.stats();
        assert_eq!((stats.index_rebuilds, stats.fast_restores), (2, 3));

        let mut reg = MetricsRegistry::new();
        stats.collect_metrics(&mut reg);
        assert_eq!(reg.get("traffic.engine.passes"), Some(&rfh_obs::Metric::Counter(5)));
        assert_eq!(reg.get("traffic.engine.fast_restores"), Some(&rfh_obs::Metric::Counter(3)));
    }

    /// Load touching only `touched` partitions, shaped like
    /// `sample_load` on those rows.
    fn sparse_load(parts: u32, dcs: u32, touched: &[u32]) -> QueryLoad {
        let mut load = QueryLoad::zeros(parts, dcs);
        for &p in touched {
            for d in 0..dcs {
                load.add(PartitionId::new(p), DatacenterId::new(d), p * 7 + d * 3 + 1);
            }
        }
        load
    }

    /// Assert a sparse pass result equals the dense reference on every
    /// account callers read. `holder_dc` entries of inactive partitions
    /// are persistent in sparse mode, so they are aligned to the dense
    /// value before the whole-struct comparison.
    fn assert_sparse_matches_dense(
        sparse: &TrafficAccounts,
        dense: &TrafficAccounts,
        active: &[u32],
    ) {
        let mut sparse = sparse.clone();
        for p in 0..dense.holder_dc.len() {
            if active.binary_search(&(p as u32)).is_err() {
                sparse.holder_dc[p] = dense.holder_dc[p];
            }
        }
        assert_eq!(&sparse, dense);
    }

    #[test]
    #[allow(clippy::identity_op)] // the 0 terms keep the per-epoch breakdown readable
    fn sparse_pass_bit_equals_dense_pass_across_epochs() {
        let topo = chain();
        let (parts, dcs, servers) = (8u32, 3u32, 3u32);
        let view = sample_view(parts, servers);
        let mut engine = TrafficEngine::new();
        // Epoch-by-epoch touched sets: shrinking, empty, growing, full.
        let epochs: Vec<Vec<u32>> = vec![
            vec![0, 1, 2, 5],
            vec![1, 5],
            vec![],
            vec![0, 3, 4, 6, 7],
            (0..parts).collect(),
            vec![7],
        ];
        for (e, active) in epochs.iter().enumerate() {
            let load = sparse_load(parts, dcs, active);
            let dense = compute_traffic(&topo, &load, &view);
            let sparse = engine.account_active(&topo, &load, &view, active).clone();
            assert_sparse_matches_dense(&sparse, &dense, active);
            for s in 0..servers {
                let sid = ServerId::new(s);
                assert_eq!(
                    sparse.server_load(sid).to_bits(),
                    dense.server_load(sid).to_bits(),
                    "server {s} load, epoch {e}"
                );
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.sparse_passes, 6);
        assert_eq!(stats.dirty_partitions, 4 + 2 + 0 + 5 + 8 + 1);
        assert_eq!(stats.skipped_partitions, 4 + 6 + 8 + 3 + 0 + 7);
    }

    #[test]
    fn sparse_pass_accepts_active_supersets() {
        let topo = chain();
        let view = sample_view(8, 3);
        let load = sparse_load(8, 3, &[2, 6]);
        let dense = compute_traffic(&topo, &load, &view);
        let mut engine = TrafficEngine::new();
        let active = [1, 2, 4, 6, 7];
        let sparse = engine.account_active(&topo, &load, &view, &active).clone();
        assert_sparse_matches_dense(&sparse, &dense, &active);
    }

    #[test]
    fn sharded_sparse_pass_is_bit_identical_for_any_pool_size() {
        let topo = chain();
        let view = sample_view(9, 3);
        let active: Vec<u32> = vec![0, 2, 3, 5, 8];
        let load = sparse_load(9, 3, &active);
        let dense = compute_traffic(&topo, &load, &view);
        for workers in [1, 2, 3, 7, 11] {
            let pool = WorkerPool::new(workers);
            let mut engine = TrafficEngine::new();
            // Twice: the second pass exercises the O(prev) partial clear.
            engine.account_active_sharded(&topo, &load, &view, &active, &pool);
            let sparse = engine.account_active_sharded(&topo, &load, &view, &active, &pool).clone();
            assert_sparse_matches_dense(&sparse, &dense, &active);
        }
    }

    #[test]
    fn alternating_dense_and_sparse_passes_stay_consistent() {
        // Dense passes clobber the sparse bookkeeping and vice versa;
        // every switch must land on the full-reset / full-reindex path.
        let topo = chain();
        let view = sample_view(6, 3);
        let full: Vec<u32> = (0..6).collect();
        let busy = sample_load(6, 3);
        let quiet = sparse_load(6, 3, &[4]);
        let dense_busy = compute_traffic(&topo, &busy, &view);
        let dense_quiet = compute_traffic(&topo, &quiet, &view);
        let mut engine = TrafficEngine::new();
        assert_eq!(engine.account(&topo, &busy, &view), &dense_busy);
        let sparse = engine.account_active(&topo, &quiet, &view, &[4]).clone();
        assert_sparse_matches_dense(&sparse, &dense_quiet, &[4]);
        assert_eq!(engine.account(&topo, &busy, &view), &dense_busy);
        let sparse = engine.account_active(&topo, &busy, &view, &full).clone();
        assert_sparse_matches_dense(&sparse, &dense_busy, &full);
        let sparse = engine.account_active(&topo, &quiet, &view, &[4]).clone();
        assert_sparse_matches_dense(&sparse, &dense_quiet, &[4]);
    }

    #[test]
    fn generation_bump_invalidates_caches() {
        let mut topo = chain();
        let load = sample_load(4, 3);
        let view = sample_view(4, 3);
        let mut engine = TrafficEngine::new();
        engine.account(&topo, &load, &view);
        assert_eq!(engine.generation(), Some(topo.generation()));
        assert!(!engine.sync_topology(&topo), "same generation must not rebuild");

        // Kill the middle server: the engine must notice and match a
        // fresh engine built against the failed topology.
        topo.fail_server(ServerId::new(1)).unwrap();
        assert_ne!(engine.generation(), Some(topo.generation()));
        let stale_refreshed = engine.account(&topo, &load, &view).clone();
        let mut fresh = TrafficEngine::new();
        assert_eq!(&stale_refreshed, fresh.account(&topo, &load, &view));
        assert_eq!(engine.generation(), Some(topo.generation()));
    }
}
