//! # rfh-traffic
//!
//! Traffic determination (§II-C): the paper's equations (2)–(11) turned
//! into an epoch-level accounting pass.
//!
//! The model: every query for partition `B_i` from requester datacenter
//! `j` travels the WAN routing path `A_ij` toward the partition holder.
//! Replicas sitting *on that path* absorb queries up to their processing
//! capacity; the residual flows to the next hop (eqs. 2–4). The traffic
//! of a node is the residual arriving at it, summed over requesters
//! (eqs. 6–8); the requester node itself sees the full query load
//! (eq. 5). Replicas *off* the path serve nothing — which is exactly why
//! randomly-placed replicas achieve poor utilization and why placing
//! replicas at high-traffic path conjunctions ("traffic hubs") works.
//!
//! * [`grid`] — dense 2-D arrays used by the accounting pass.
//! * [`placement`] — the per-epoch view of where replicas are and how
//!   much capacity each offers.
//! * [`absorption`] — the traffic pass semantics and the one-shot
//!   [`compute_traffic`] entry point.
//! * [`engine`] — the reusable [`TrafficEngine`]: route-cached,
//!   zero-allocation accounting for callers that run the pass every
//!   epoch.
//! * [`smoothing`] — the EWMA state of eqs. (9)–(11): smoothed system
//!   query averages `q̄_it` and smoothed per-node traffic `t̄r_ikt`.

#![warn(missing_docs)]

pub mod absorption;
pub mod engine;
pub mod grid;
pub mod placement;
pub mod smoothing;

pub use absorption::{compute_traffic, TrafficAccounts};
pub use engine::{EngineStats, TrafficEngine};
pub use grid::Grid;
pub use placement::PlacementView;
pub use smoothing::TrafficSmoother;
