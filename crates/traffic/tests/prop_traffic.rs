//! Property-based tests of the traffic pass: conservation laws and the
//! structural relations of eqs. (2)–(8) hold for arbitrary workloads and
//! placements on the paper topology.

use proptest::prelude::*;
use rfh_topology::{paper_topology, Topology};
use rfh_traffic::{compute_traffic, PlacementView};
use rfh_types::{DatacenterId, PartitionId, ServerId};
use rfh_workload::QueryLoad;

const PARTITIONS: u32 = 4;
const DCS: u32 = 10;
const SERVERS: u32 = 100;

fn topo() -> Topology {
    paper_topology(0.0, 1).unwrap()
}

#[derive(Debug, Clone)]
struct Setup {
    load: Vec<(u32, u32, u32)>,     // (partition, dc, count)
    capacity: Vec<(u32, u32, u16)>, // (partition, server, capacity)
    holders: Vec<u32>,              // per partition
}

fn arb_setup() -> impl Strategy<Value = Setup> {
    (
        proptest::collection::vec((0..PARTITIONS, 0..DCS, 1u32..60), 0..30),
        proptest::collection::vec((0..PARTITIONS, 0..SERVERS, 1u16..40), 0..40),
        proptest::collection::vec(0..SERVERS, PARTITIONS as usize),
    )
        .prop_map(|(load, capacity, holders)| Setup { load, capacity, holders })
}

fn build(setup: &Setup) -> (QueryLoad, PlacementView) {
    let mut load = QueryLoad::zeros(PARTITIONS, DCS);
    for &(p, dc, c) in &setup.load {
        load.add(PartitionId::new(p), DatacenterId::new(dc), c);
    }
    let holders = setup.holders.iter().map(|&h| ServerId::new(h)).collect();
    let mut view = PlacementView::new(PARTITIONS, SERVERS, holders);
    for &(p, s, c) in &setup.capacity {
        view.add_capacity(PartitionId::new(p), ServerId::new(s), c as f64);
    }
    (load, view)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn demand_is_conserved(setup in arb_setup()) {
        let topo = topo();
        let (load, view) = build(&setup);
        let acc = compute_traffic(&topo, &load, &view);
        let demand = load.total() as f64;
        prop_assert!(
            (acc.served_total() + acc.unserved_total() - demand).abs() < 1e-6,
            "served {} + unserved {} != demand {demand}",
            acc.served_total(),
            acc.unserved_total()
        );
        // Per-partition unserved is consistent with the total.
        let by_p: f64 = acc.unserved.iter().sum();
        prop_assert!((by_p - acc.unserved_total()).abs() < 1e-6);
    }

    #[test]
    fn served_never_exceeds_capacity(setup in arb_setup()) {
        let topo = topo();
        let (load, view) = build(&setup);
        let acc = compute_traffic(&topo, &load, &view);
        for p in 0..PARTITIONS {
            for s in 0..SERVERS {
                let served = acc.served.get(s as usize, p as usize);
                let cap = view.capacity(PartitionId::new(p), ServerId::new(s));
                prop_assert!(served <= cap + 1e-9, "server {s} over-served {served} > {cap}");
            }
        }
    }

    #[test]
    fn requester_traffic_covers_local_demand(setup in arb_setup()) {
        // eq. 5: tr_ijj = q_ijt — the requester node's arrival traffic is
        // at least its own demand (plus anything it forwards for others).
        let topo = topo();
        let (load, view) = build(&setup);
        let acc = compute_traffic(&topo, &load, &view);
        for p in 0..PARTITIONS {
            for dc in 0..DCS {
                let q = load.get(PartitionId::new(p), DatacenterId::new(dc)) as f64;
                let tr = acc.dc_traffic.get(dc as usize, p as usize);
                prop_assert!(tr >= q - 1e-9, "dc {dc}: arrival {tr} below local demand {q}");
            }
        }
    }

    #[test]
    fn outflow_bounded_by_arrival(setup in arb_setup()) {
        // A node cannot forward more than arrived at it (eq. 4's max(0, ·)).
        let topo = topo();
        let (load, view) = build(&setup);
        let acc = compute_traffic(&topo, &load, &view);
        for p in 0..PARTITIONS {
            for dc in 0..DCS {
                let arrival = acc.dc_traffic.get(dc as usize, p as usize);
                let outflow = acc.dc_outflow.get(dc as usize, p as usize);
                prop_assert!(outflow <= arrival + 1e-9, "dc {dc}: outflow {outflow} > arrival {arrival}");
                prop_assert!(outflow >= 0.0);
            }
        }
    }

    #[test]
    fn path_length_and_latency_are_bounded(setup in arb_setup()) {
        let topo = topo();
        let (load, view) = build(&setup);
        let acc = compute_traffic(&topo, &load, &view);
        // WAN diameter of the paper preset is 5 hops.
        prop_assert!(acc.mean_path_length() <= 5.0 + 1e-9);
        prop_assert!(acc.mean_path_length() >= 0.0);
        // Round trip over the worst route (≤ ~200 ms one way) plus fabric.
        prop_assert!(acc.mean_latency_ms() <= 500.0);
        let sla = acc.sla_fraction();
        prop_assert!((0.0..=1.0).contains(&sla));
    }

    #[test]
    fn more_capacity_never_increases_unserved(setup in arb_setup(), extra in 1u16..50) {
        // Monotonicity: adding capacity at the holder can only help.
        let topo = topo();
        let (load, view) = build(&setup);
        let base = compute_traffic(&topo, &load, &view);
        let mut bigger = view.clone();
        for p in 0..PARTITIONS {
            let pid = PartitionId::new(p);
            bigger.add_capacity(pid, bigger.holder(pid), extra as f64);
        }
        let better = compute_traffic(&topo, &load, &bigger);
        prop_assert!(
            better.unserved_total() <= base.unserved_total() + 1e-6,
            "{} > {}",
            better.unserved_total(),
            base.unserved_total()
        );
    }
}
