//! Property: a reused [`TrafficEngine`] is *bit-for-bit* equivalent to
//! the legacy one-shot `compute_traffic` pass — for arbitrary loads and
//! placements, and across arbitrary membership churn (failures,
//! recoveries, joins) that invalidates the engine's generation-keyed
//! caches between passes.

use proptest::prelude::*;
use rfh_topology::{paper_topology, Topology};
use rfh_traffic::{compute_traffic, PlacementView, TrafficEngine};
use rfh_types::{DatacenterId, PartitionId, RackId, RoomId, ServerId};
use rfh_workload::QueryLoad;

const PARTITIONS: u32 = 4;
const DCS: u32 = 10;
const SERVERS: u32 = 100;

fn topo() -> Topology {
    paper_topology(0.0, 1).unwrap()
}

#[derive(Debug, Clone)]
struct Setup {
    load: Vec<(u32, u32, u32)>,     // (partition, dc, count)
    capacity: Vec<(u32, u32, u16)>, // (partition, server, capacity)
    holders: Vec<u32>,              // per partition
}

/// One membership mutation between traffic passes.
#[derive(Debug, Clone)]
enum Churn {
    Fail(u32),
    Recover(u32),
    Join(u32),
}

fn arb_setup(servers: u32) -> impl Strategy<Value = Setup> {
    (
        proptest::collection::vec((0..PARTITIONS, 0..DCS, 1u32..60), 0..30),
        proptest::collection::vec((0..PARTITIONS, 0..servers, 1u16..40), 0..40),
        proptest::collection::vec(0..servers, PARTITIONS as usize),
    )
        .prop_map(|(load, capacity, holders)| Setup { load, capacity, holders })
}

fn arb_churn() -> impl Strategy<Value = Churn> {
    prop_oneof![
        (0..SERVERS).prop_map(Churn::Fail),
        (0..SERVERS).prop_map(Churn::Recover),
        (0..DCS).prop_map(Churn::Join),
    ]
}

fn build(setup: &Setup, servers: u32) -> (QueryLoad, PlacementView) {
    let mut load = QueryLoad::zeros(PARTITIONS, DCS);
    for &(p, dc, c) in &setup.load {
        load.add(PartitionId::new(p), DatacenterId::new(dc), c);
    }
    let holders = setup.holders.iter().map(|&h| ServerId::new(h)).collect();
    let mut view = PlacementView::new(PARTITIONS, servers, holders);
    for &(p, s, c) in &setup.capacity {
        view.add_capacity(PartitionId::new(p), ServerId::new(s), c as f64);
    }
    (load, view)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single pass: one engine call equals the legacy pass exactly
    /// (`TrafficAccounts` derives `PartialEq` over every grid cell and
    /// accumulator, so this is a full bitwise-f64 comparison).
    #[test]
    fn engine_equals_legacy_pass(setup in arb_setup(SERVERS)) {
        let topo = topo();
        let (load, view) = build(&setup, SERVERS);
        let legacy = compute_traffic(&topo, &load, &view);
        let mut engine = TrafficEngine::new();
        prop_assert_eq!(engine.account(&topo, &load, &view), &legacy);
    }

    /// Reuse under churn: one long-lived engine, mutated topology
    /// between passes. After every mutation batch the reused engine
    /// must still match both the legacy pass and a from-scratch engine.
    #[test]
    fn reused_engine_survives_membership_churn(
        setup in arb_setup(SERVERS),
        rounds in proptest::collection::vec(
            proptest::collection::vec(arb_churn(), 0..4), 1..4),
    ) {
        let mut topo = topo();
        let mut engine = TrafficEngine::new();
        for round in &rounds {
            for op in round {
                match *op {
                    Churn::Fail(s) => { topo.fail_server(ServerId::new(s)).unwrap(); }
                    Churn::Recover(s) => { topo.recover_server(ServerId::new(s)).unwrap(); }
                    Churn::Join(dc) => {
                        topo.add_server(
                            DatacenterId::new(dc), RoomId::new(0), RackId::new(0), 1.0,
                        ).unwrap();
                    }
                }
            }
            // The view must span however many servers the churn left us.
            let servers = topo.server_count() as u32;
            let (load, view) = build(&setup, servers);
            let legacy = compute_traffic(&topo, &load, &view);
            let reused = engine.account(&topo, &load, &view);
            prop_assert_eq!(reused, &legacy, "reused engine diverged from legacy pass");
            let mut fresh = TrafficEngine::new();
            prop_assert_eq!(fresh.account(&topo, &load, &view), &legacy,
                "fresh engine diverged from legacy pass");
        }
    }
}
