//! Property: the sharded traffic pass — per-shard accumulators merged
//! in canonical partition order — is *bit-for-bit* equal to the one-shot
//! `compute_traffic` pass for arbitrary topologies, workloads, and
//! worker counts, including pools wider than the partition count (some
//! shards then own zero partitions and must contribute nothing).

use proptest::prelude::*;
use rfh_pool::WorkerPool;
use rfh_topology::{paper_topology, Topology};
use rfh_traffic::{compute_traffic, PlacementView, TrafficEngine};
use rfh_types::{DatacenterId, PartitionId, ServerId};
use rfh_workload::QueryLoad;

const PARTITIONS: u32 = 4;
const DCS: u32 = 10;
const SERVERS: u32 = 100;

fn topo() -> Topology {
    paper_topology(0.0, 1).unwrap()
}

#[derive(Debug, Clone)]
struct Setup {
    load: Vec<(u32, u32, u32)>,     // (partition, dc, count)
    capacity: Vec<(u32, u32, u16)>, // (partition, server, capacity)
    holders: Vec<u32>,              // per partition
}

fn arb_setup() -> impl Strategy<Value = Setup> {
    (
        proptest::collection::vec((0..PARTITIONS, 0..DCS, 1u32..60), 0..30),
        proptest::collection::vec((0..PARTITIONS, 0..SERVERS, 1u16..40), 0..40),
        proptest::collection::vec(0..SERVERS, PARTITIONS as usize),
    )
        .prop_map(|(load, capacity, holders)| Setup { load, capacity, holders })
}

fn build(setup: &Setup) -> (QueryLoad, PlacementView) {
    let mut load = QueryLoad::zeros(PARTITIONS, DCS);
    for &(p, dc, c) in &setup.load {
        load.add(PartitionId::new(p), DatacenterId::new(dc), c);
    }
    let holders = setup.holders.iter().map(|&h| ServerId::new(h)).collect();
    let mut view = PlacementView::new(PARTITIONS, SERVERS, holders);
    for &(p, s, c) in &setup.capacity {
        view.add_capacity(PartitionId::new(p), ServerId::new(s), c as f64);
    }
    (load, view)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any pool size (1..=11, i.e. both divisors and non-divisors of
    /// the partition count, and pools wider than it) equals the legacy
    /// one-shot pass exactly. `TrafficAccounts` derives `PartialEq`
    /// over every grid cell and accumulator, so this is a full
    /// bitwise-f64 comparison.
    #[test]
    fn sharded_pass_equals_legacy_pass(setup in arb_setup(), workers in 1usize..12) {
        let topo = topo();
        let (load, view) = build(&setup);
        let legacy = compute_traffic(&topo, &load, &view);
        let pool = WorkerPool::new(workers);
        let mut engine = TrafficEngine::new();
        // Two passes through the same engine: the first builds the
        // capacity index, the second restores it from cache — both
        // sharded paths must match the legacy pass.
        prop_assert_eq!(engine.account_sharded(&topo, &load, &view, &pool), &legacy);
        prop_assert_eq!(engine.account_sharded(&topo, &load, &view, &pool), &legacy);
    }

    /// One engine, alternating pool widths between passes: the shard
    /// layout reshapes without residue from the previous width.
    #[test]
    fn pool_width_changes_leave_no_residue(
        setup in arb_setup(),
        widths in proptest::collection::vec(1usize..12, 2..5),
    ) {
        let topo = topo();
        let (load, view) = build(&setup);
        let legacy = compute_traffic(&topo, &load, &view);
        let mut engine = TrafficEngine::new();
        for &w in &widths {
            let pool = WorkerPool::new(w);
            prop_assert_eq!(
                engine.account_sharded(&topo, &load, &view, &pool), &legacy,
                "diverged at pool width {}", w
            );
        }
    }
}
