//! The serve telemetry plane: server-side phase histograms, the
//! controller's time-series ring, and the `rfh watch` dashboard model.
//!
//! Everything here is measured **where the work happens** — in the node
//! threads and the control loop — not at the client. Per request the
//! data plane records three phases:
//!
//! * **queue** — time spent waiting on the partition lock,
//! * **forward** — summed peer round-trips issued by the coordinator,
//! * **handle** — everything else (local store work, framing).
//!
//! Recording is mutex-sharded: each connection hashes onto one of
//! [`TELEMETRY_SHARDS`] shards, so concurrent handlers rarely contend
//! on the same lock. Request counters and per-partition hit counters
//! are plain relaxed atomics. With telemetry disabled no shard exists
//! and the per-request cost is one branch.
//!
//! The control loop drains a per-tick latency histogram every tick and
//! appends one [`TickSample`] to a fixed-capacity [`TelemetryRing`] —
//! the cluster timeline `rfh watch` renders and `/timeline` serves.

use rfh_obs::{MetricsRegistry, SpanLog};
use rfh_stats::Histogram;
use rfh_types::PartitionId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Mutex shards per node; connections hash onto one by accept order.
pub const TELEMETRY_SHARDS: usize = 4;

/// The four request kinds a node serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Client read, coordinated here.
    Get,
    /// Client write, coordinated here.
    Put,
    /// Read forwarded from a coordinator.
    ForwardGet,
    /// Write forwarded from a coordinator.
    ForwardPut,
}

impl ReqKind {
    /// All kinds, in wire-tag order.
    pub const ALL: [ReqKind; 4] =
        [ReqKind::Get, ReqKind::Put, ReqKind::ForwardGet, ReqKind::ForwardPut];

    /// Dense index for per-kind arrays.
    fn index(self) -> usize {
        match self {
            ReqKind::Get => 0,
            ReqKind::Put => 1,
            ReqKind::ForwardGet => 2,
            ReqKind::ForwardPut => 3,
        }
    }

    /// Metric / span label.
    pub fn as_str(self) -> &'static str {
        match self {
            ReqKind::Get => "get",
            ReqKind::Put => "put",
            ReqKind::ForwardGet => "fwd_get",
            ReqKind::ForwardPut => "fwd_put",
        }
    }
}

/// Phase timings of one served request, microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Partition-lock wait.
    pub queue_us: f64,
    /// Summed peer round-trips.
    pub forward_us: f64,
    /// Local work: total minus queue minus forward.
    pub handle_us: f64,
}

/// One shard's histograms: three phases per request kind, plus the
/// total-latency histogram the control loop drains each tick.
struct PhaseShard {
    queue: [Histogram; 4],
    handle: [Histogram; 4],
    forward: [Histogram; 4],
    tick: Histogram,
}

impl PhaseShard {
    fn new() -> Self {
        PhaseShard {
            queue: std::array::from_fn(|_| Histogram::latency()),
            handle: std::array::from_fn(|_| Histogram::latency()),
            forward: std::array::from_fn(|_| Histogram::latency()),
            tick: Histogram::latency(),
        }
    }
}

/// One node's server-side instrumentation.
pub struct NodeTelemetry {
    shards: Vec<Mutex<PhaseShard>>,
    requests: [AtomicU64; 4],
    partition_hits: Vec<AtomicU64>,
}

impl NodeTelemetry {
    fn new(partitions: u32) -> Self {
        NodeTelemetry {
            shards: (0..TELEMETRY_SHARDS).map(|_| Mutex::new(PhaseShard::new())).collect(),
            requests: std::array::from_fn(|_| AtomicU64::new(0)),
            partition_hits: (0..partitions).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one served request into the connection's shard.
    pub fn record(&self, conn_id: u64, kind: ReqKind, t: PhaseTimings) {
        self.requests[kind.index()].fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shards[conn_id as usize % self.shards.len()]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let k = kind.index();
        shard.queue[k].record(t.queue_us);
        shard.handle[k].record(t.handle_us);
        shard.forward[k].record(t.forward_us);
        shard.tick.record(t.queue_us + t.handle_us + t.forward_us);
    }

    /// Bump the hit counter of the partition a request keyed into.
    pub fn hit(&self, p: PartitionId) {
        self.partition_hits[p.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Merge-and-reset every shard's per-tick histogram into `into`.
    fn drain_tick(&self, into: &mut Histogram) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            if shard.tick.count() > 0 {
                into.merge(&shard.tick);
                shard.tick.clear();
            }
        }
    }

    /// Export this node's series: per-kind request counters, per-kind
    /// per-phase latency summaries, and nonzero per-partition hit
    /// counters. Lifetime totals throughout, so repeated collection
    /// into the same registry is idempotent.
    pub fn collect_metrics(&self, registry: &mut MetricsRegistry) {
        let mut merged = [(); 3].map(|_| Histogram::latency());
        for kind in ReqKind::ALL {
            let k = kind.index();
            registry.counter_total(
                &format!("serve.node.{}.count", kind.as_str()),
                self.requests[k].load(Ordering::Relaxed),
            );
            for h in &mut merged {
                h.clear();
            }
            for shard in &self.shards {
                let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
                if shard.queue[k].count() > 0 {
                    merged[0].merge(&shard.queue[k]);
                    merged[1].merge(&shard.handle[k]);
                    merged[2].merge(&shard.forward[k]);
                }
            }
            for (phase, hist) in ["queue_us", "handle_us", "forward_us"].iter().zip(&merged) {
                registry.histogram(&format!("serve.node.{}.{phase}", kind.as_str()), hist);
            }
        }
        for (p, hits) in self.partition_hits.iter().enumerate() {
            let n = hits.load(Ordering::Relaxed);
            if n > 0 {
                registry.counter_total(&format!("serve.node.hits.p{p}"), n);
            }
        }
    }
}

/// The whole cluster's telemetry plane, hung off the shared state.
///
/// With telemetry disabled ([`ClusterTelemetry::off`]) no node
/// instrumentation exists and [`nodes`](ClusterTelemetry::node) returns
/// `None` everywhere; the span log stays available regardless, because
/// span recording is driven by the op-ID on the wire (a client-side
/// sampling decision), not by the server-side flag.
pub struct ClusterTelemetry {
    nodes: Vec<NodeTelemetry>,
    spans: std::sync::Arc<SpanLog>,
    ring: Mutex<TelemetryRing>,
    registry: Mutex<MetricsRegistry>,
}

impl ClusterTelemetry {
    /// Instrumentation for `node_count` nodes over `partitions`.
    pub fn on(node_count: usize, partitions: u32) -> Self {
        ClusterTelemetry {
            nodes: (0..node_count).map(|_| NodeTelemetry::new(partitions)).collect(),
            spans: std::sync::Arc::new(SpanLog::new()),
            ring: Mutex::new(TelemetryRing::new(TIMELINE_CAPACITY)),
            registry: Mutex::new(MetricsRegistry::new()),
        }
    }

    /// The disabled plane: no per-node state, no recording.
    pub fn off() -> Self {
        ClusterTelemetry {
            nodes: Vec::new(),
            spans: std::sync::Arc::new(SpanLog::new()),
            ring: Mutex::new(TelemetryRing::new(TIMELINE_CAPACITY)),
            registry: Mutex::new(MetricsRegistry::new()),
        }
    }

    /// Whether server-side instrumentation is on.
    pub fn enabled(&self) -> bool {
        !self.nodes.is_empty()
    }

    /// Node `i`'s instrumentation, `None` when disabled.
    pub fn node(&self, i: usize) -> Option<&NodeTelemetry> {
        self.nodes.get(i)
    }

    /// The shared span log (always live; empty unless clients sample).
    pub fn spans(&self) -> &std::sync::Arc<SpanLog> {
        &self.spans
    }

    /// Merge-and-reset every node's per-tick histograms into `into`.
    pub fn drain_tick(&self, into: &mut Histogram) {
        for node in &self.nodes {
            node.drain_tick(into);
        }
    }

    /// Append one tick's sample to the timeline ring.
    pub fn push_sample(&self, sample: TickSample) {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).push(sample);
    }

    /// The timeline so far, oldest tick first.
    pub fn timeline(&self) -> Vec<TickSample> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).samples().iter().cloned().collect()
    }

    /// The timeline as JSONL, one tick per line.
    pub fn timeline_jsonl(&self) -> String {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).to_jsonl()
    }

    /// Replace the controller's published registry (scraped as
    /// `/metrics` on the controller endpoint).
    pub fn publish_registry(&self, registry: MetricsRegistry) {
        *self.registry.lock().unwrap_or_else(|e| e.into_inner()) = registry;
    }

    /// Snapshot of the controller's published registry.
    pub fn registry(&self) -> MetricsRegistry {
        self.registry.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Ticks retained by the controller's timeline ring (at the default
/// 200 ms cadence: two minutes of history).
pub const TIMELINE_CAPACITY: usize = 600;

/// One control tick's worth of cluster state, as the controller saw it.
///
/// Deltas (`ops`, `forwards`, acks, actions, repairs, violations) count
/// events since the previous tick; gauges (`replicas_total`, degraded /
/// unavailable partition counts) are point-in-time. Latency quantiles
/// come from the server-side per-tick histograms, not from any client.
#[derive(Debug, Clone, PartialEq)]
pub struct TickSample {
    /// Control tick index.
    pub tick: u64,
    /// Client operations (gets + puts) coordinated this tick.
    pub ops: u64,
    /// Peer forwards this tick.
    pub forwards: u64,
    /// Ok acks this tick.
    pub acks_ok: u64,
    /// Unavailable acks this tick.
    pub acks_unavailable: u64,
    /// Server-side median request latency this tick, µs (0 if idle).
    pub p50_us: f64,
    /// Server-side p99 request latency this tick, µs (0 if idle).
    pub p99_us: f64,
    /// Replicas placed across all partitions.
    pub replicas_total: u64,
    /// Partitions with fewer than `r_min` live replicas.
    pub degraded: u64,
    /// Partitions with zero live replicas.
    pub unavailable: u64,
    /// Replicate actions executed this tick.
    pub replications: u64,
    /// Migrate actions executed this tick.
    pub migrations: u64,
    /// Suicide actions executed this tick.
    pub suicides: u64,
    /// Deferred transfers completed this tick.
    pub repairs: u64,
    /// Invariant-auditor findings this tick.
    pub violations: u64,
    /// Fault-plan events this tick (`"kill s17"`, `"recover s17"`,
    /// ...). Plain words only — no quotes or commas — so the JSONL
    /// round-trip stays trivial.
    pub events: Vec<String>,
}

impl TickSample {
    /// Pinned-schema JSON object, fixed key order.
    pub fn to_json(&self) -> String {
        let events = self.events.iter().map(|e| format!("\"{e}\"")).collect::<Vec<_>>().join(",");
        format!(
            "{{\"tick\":{},\"ops\":{},\"forwards\":{},\"acks_ok\":{},\"acks_unavailable\":{},\
             \"p50_us\":{:.1},\"p99_us\":{:.1},\"replicas_total\":{},\"degraded\":{},\
             \"unavailable\":{},\"replications\":{},\"migrations\":{},\"suicides\":{},\
             \"repairs\":{},\"violations\":{},\"events\":[{events}]}}",
            self.tick,
            self.ops,
            self.forwards,
            self.acks_ok,
            self.acks_unavailable,
            self.p50_us,
            self.p99_us,
            self.replicas_total,
            self.degraded,
            self.unavailable,
            self.replications,
            self.migrations,
            self.suicides,
            self.repairs,
            self.violations,
        )
    }

    /// Parse one [`TickSample::to_json`] line back. Tolerates any key
    /// order; unknown keys are ignored, missing numeric keys default
    /// to zero.
    pub fn from_json(line: &str) -> Option<TickSample> {
        let num = |key: &str| -> f64 { json_number(line, key).unwrap_or(0.0) };
        // `tick` must be present for the line to count as a sample.
        json_number(line, "tick")?;
        Some(TickSample {
            tick: num("tick") as u64,
            ops: num("ops") as u64,
            forwards: num("forwards") as u64,
            acks_ok: num("acks_ok") as u64,
            acks_unavailable: num("acks_unavailable") as u64,
            p50_us: num("p50_us"),
            p99_us: num("p99_us"),
            replicas_total: num("replicas_total") as u64,
            degraded: num("degraded") as u64,
            unavailable: num("unavailable") as u64,
            replications: num("replications") as u64,
            migrations: num("migrations") as u64,
            suicides: num("suicides") as u64,
            repairs: num("repairs") as u64,
            violations: num("violations") as u64,
            events: json_string_array(line, "events"),
        })
    }
}

/// Extract the numeric value of `"key":<number>` from a flat JSON line.
fn json_number(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract `"key":["a","b",...]` as strings from a flat JSON line.
fn json_string_array(line: &str, key: &str) -> Vec<String> {
    let pat = format!("\"{key}\":[");
    let Some(start) = line.find(&pat).map(|i| i + pat.len()) else {
        return Vec::new();
    };
    let Some(end) = line[start..].find(']').map(|i| start + i) else {
        return Vec::new();
    };
    line[start..end]
        .split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Fixed-capacity ring of [`TickSample`]s, oldest first.
#[derive(Debug)]
pub struct TelemetryRing {
    capacity: usize,
    samples: std::collections::VecDeque<TickSample>,
    dropped: u64,
}

impl TelemetryRing {
    /// A ring retaining at most `capacity` ticks.
    pub fn new(capacity: usize) -> Self {
        TelemetryRing {
            capacity: capacity.max(1),
            samples: std::collections::VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append a tick, evicting the oldest at capacity.
    pub fn push(&mut self, sample: TickSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// Retained ticks, oldest first.
    pub fn samples(&self) -> &std::collections::VecDeque<TickSample> {
        &self.samples
    }

    /// Ticks evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring as JSONL, one tick per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.samples.len() * 220);
        for s in &self.samples {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// Parse a [`TelemetryRing::to_jsonl`] dump (or a `/timeline`
    /// response) back into samples, skipping unparseable lines.
    pub fn parse_jsonl(text: &str) -> Vec<TickSample> {
        text.lines().filter_map(TickSample::from_json).collect()
    }
}

/// Render the `rfh watch` terminal dashboard from a timeline: sparkline
/// rows for throughput, server-side p99, replica total and degraded
/// partitions, fault events inline, and the latest tick's stats. Runs
/// longer than `width` ticks are downsampled into `width` buckets with
/// a trouble-biased aggregate (max ops/p99/degraded, min replicas), so
/// a one-tick dip anywhere in the run stays visible. Pure text in,
/// text out — testable without a terminal.
pub fn render_dashboard(samples: &[TickSample], width: usize) -> String {
    if samples.is_empty() {
        return "rfh watch — no timeline samples yet\n".to_string();
    }
    let width = width.max(8);
    let bucket = samples.len().div_ceil(width);
    let series = |f: &dyn Fn(&TickSample) -> f64, minimize: bool| {
        samples
            .chunks(bucket)
            .map(|c| {
                let vals = c.iter().map(f);
                if minimize {
                    vals.fold(f64::INFINITY, f64::min)
                } else {
                    vals.fold(f64::NEG_INFINITY, f64::max)
                }
            })
            .collect::<Vec<f64>>()
    };
    let ops = series(&|s| s.ops as f64, false);
    let p99 = series(&|s| s.p99_us, false);
    let replicas = series(&|s| s.replicas_total as f64, true);
    let degraded = series(&|s| (s.degraded + s.unavailable) as f64, false);

    let total_ops: u64 = samples.iter().map(|s| s.ops).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "rfh watch — ticks {}..{}  ({} ops total)\n",
        samples[0].tick,
        samples[samples.len() - 1].tick,
        total_ops,
    ));
    let row = |label: &str, values: &[f64]| {
        let (lo, hi) = bounds(values);
        format!("{label:<10} {}  [{:.0}..{:.0}]\n", sparkline(values), lo, hi)
    };
    out.push_str(&row("ops/tick", &ops));
    out.push_str(&row("p99 µs", &p99));
    out.push_str(&row("replicas", &replicas));
    out.push_str(&row("degraded", &degraded));

    let events: Vec<String> = samples
        .iter()
        .flat_map(|s| s.events.iter().map(move |e| format!("t{} {e}", s.tick)))
        .collect();
    if !events.is_empty() {
        out.push_str(&format!("events: {}\n", events.join("; ")));
    }
    let last = &samples[samples.len() - 1];
    out.push_str(&format!(
        "tick {}: ops {}  fwd {}  p50 {:.0}µs  p99 {:.0}µs  replicas {}  degraded {}  \
         unavailable {}  violations {}\n",
        last.tick,
        last.ops,
        last.forwards,
        last.p50_us,
        last.p99_us,
        last.replicas_total,
        last.degraded,
        last.unavailable,
        last.violations,
    ));
    out
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo.is_finite() {
        (lo, hi)
    } else {
        (0.0, 0.0)
    }
}

/// Eight-level unicode sparkline, scaled to the series' own range.
fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (lo, hi) = bounds(values);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            let t = ((v - lo) / span * 7.0).round().clamp(0.0, 7.0) as usize;
            LEVELS[t]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tick: u64) -> TickSample {
        TickSample {
            tick,
            ops: 100 + tick,
            forwards: 30,
            acks_ok: 99,
            acks_unavailable: 1,
            p50_us: 250.0,
            p99_us: 900.5,
            replicas_total: 192,
            degraded: 2,
            unavailable: 0,
            replications: 1,
            migrations: 0,
            suicides: 0,
            repairs: 0,
            violations: 0,
            events: vec!["kill s17".to_string()],
        }
    }

    #[test]
    fn tick_sample_json_roundtrips() {
        let s = sample(7);
        let parsed = TickSample::from_json(&s.to_json()).expect("parse back");
        assert_eq!(parsed, s);
        let mut empty_events = sample(8);
        empty_events.events.clear();
        assert_eq!(TickSample::from_json(&empty_events.to_json()), Some(empty_events));
        assert_eq!(TickSample::from_json("not json"), None);
    }

    #[test]
    fn ring_bounds_and_jsonl_roundtrip() {
        let mut ring = TelemetryRing::new(3);
        for t in 0..5 {
            ring.push(sample(t));
        }
        assert_eq!(ring.samples().len(), 3);
        assert_eq!(ring.dropped(), 2);
        let ticks: Vec<u64> = ring.samples().iter().map(|s| s.tick).collect();
        assert_eq!(ticks, [2, 3, 4], "oldest evicted first");
        let parsed = TelemetryRing::parse_jsonl(&ring.to_jsonl());
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0], sample(2));
    }

    #[test]
    fn node_telemetry_records_phases_and_exports() {
        let node = NodeTelemetry::new(4);
        node.record(
            0,
            ReqKind::Put,
            PhaseTimings { queue_us: 10.0, forward_us: 200.0, handle_us: 40.0 },
        );
        node.record(
            1,
            ReqKind::Put,
            PhaseTimings { queue_us: 20.0, forward_us: 100.0, handle_us: 30.0 },
        );
        node.record(
            2,
            ReqKind::Get,
            PhaseTimings { queue_us: 0.0, forward_us: 0.0, handle_us: 15.0 },
        );
        node.hit(PartitionId::new(2));
        node.hit(PartitionId::new(2));

        let mut reg = MetricsRegistry::new();
        node.collect_metrics(&mut reg);
        assert_eq!(reg.get("serve.node.put.count"), Some(&rfh_obs::Metric::Counter(2)));
        assert_eq!(reg.get("serve.node.get.count"), Some(&rfh_obs::Metric::Counter(1)));
        assert_eq!(reg.get("serve.node.hits.p2"), Some(&rfh_obs::Metric::Counter(2)));
        assert_eq!(reg.get("serve.node.hits.p0"), None, "zero hits not exported");
        match reg.get("serve.node.put.forward_us") {
            Some(rfh_obs::Metric::Summary { count, mean, .. }) => {
                assert_eq!(*count, 2);
                assert!((mean - 150.0).abs() < 1e-9, "shards merged: {mean}");
            }
            other => panic!("expected summary, got {other:?}"),
        }
        // Collecting again overwrites rather than double-counting.
        node.collect_metrics(&mut reg);
        assert_eq!(reg.get("serve.node.put.count"), Some(&rfh_obs::Metric::Counter(2)));
    }

    #[test]
    fn tick_drain_merges_and_resets() {
        let tel = ClusterTelemetry::on(2, 4);
        assert!(tel.enabled());
        tel.node(0).unwrap().record(
            0,
            ReqKind::Get,
            PhaseTimings { queue_us: 0.0, forward_us: 0.0, handle_us: 100.0 },
        );
        tel.node(1).unwrap().record(
            3,
            ReqKind::Put,
            PhaseTimings { queue_us: 50.0, forward_us: 0.0, handle_us: 50.0 },
        );
        let mut hist = Histogram::latency();
        tel.drain_tick(&mut hist);
        assert_eq!(hist.count(), 2, "both nodes drained");
        hist.clear();
        tel.drain_tick(&mut hist);
        assert_eq!(hist.count(), 0, "drain resets the tick histograms");
    }

    #[test]
    fn disabled_plane_has_no_nodes() {
        let tel = ClusterTelemetry::off();
        assert!(!tel.enabled());
        assert!(tel.node(0).is_none());
        assert_eq!(tel.timeline_jsonl(), "");
    }

    #[test]
    fn dashboard_shows_kill_and_recovery() {
        // A chaos run in miniature: steady, kill (degraded spikes,
        // throughput dips), repair, recovery.
        let mut samples: Vec<TickSample> = (0..10).map(sample).collect();
        for s in samples.iter_mut() {
            s.events.clear();
            s.degraded = 0;
        }
        samples[4].events.push("kill s17".to_string());
        samples[4].degraded = 5;
        samples[4].ops = 40;
        samples[5].degraded = 3;
        samples[5].replications = 4;
        samples[6].events.push("recover s17".to_string());
        let text = render_dashboard(&samples, 80);
        assert!(text.contains("t4 kill s17"), "{text}");
        assert!(text.contains("t6 recover s17"), "{text}");
        assert!(text.contains("degraded"), "{text}");
        assert!(text.lines().count() >= 6);
        assert_eq!(render_dashboard(&[], 80), "rfh watch — no timeline samples yet\n");
    }
}
