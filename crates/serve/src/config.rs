//! Cluster and load-generator configuration, read through the shared
//! TOML-subset reader in `rfh_types::toml` (the same parser fault plans
//! use — one config dialect across the workspace).

use crate::wal::{FsyncPolicy, PersistenceConfig};
use rfh_core::PlacementMode;
use rfh_sim::PlannerConfig;
use rfh_types::toml::{self, BlockKind, TomlBlock, TomlDoc};
use rfh_types::{Result, RfhError, SimConfig};

/// Which connection-handling substrate the cluster's node listeners
/// run on. Both planes speak the identical wire protocol and share the
/// coordination logic — the choice is an operational one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlane {
    /// One OS thread per node listener plus one per accepted
    /// connection. Simple, and the differential baseline the reactor
    /// plane is tested against.
    Threaded,
    /// All node listeners multiplexed onto a small pool of epoll
    /// reactor threads (`min(cores, 4)`), with pipelined connections
    /// and multiplexed peer channels. Linux-only; construction falls
    /// back to [`DataPlane::Threaded`] elsewhere.
    Reactor,
}

/// Shape and cadence of a serving cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Servers per rack in the scaled paper topology: the cluster has
    /// `10 DCs × 2 racks × servers_per_rack` nodes (5 → the paper's
    /// 100-server deployment).
    pub servers_per_rack: u32,
    /// Number of partitions the key space hashes into.
    pub partitions: u32,
    /// Master seed (topology capacity factors, placement).
    pub seed: u64,
    /// Online control-loop period: one tick plays the role of one
    /// offline epoch (snapshot counters, run RFH, execute transfers).
    pub control_interval_ms: u64,
    /// Per-server capacity spread (Table I's heterogeneity).
    pub capacity_spread: f64,
    /// Worker threads for the control loop's hot path (traffic pass
    /// and RFH decision pass). `1` keeps the tick single-threaded; any
    /// value produces the same decisions from the same drained
    /// counters.
    pub threads: u64,
    /// Server-side telemetry plane: per-node phase histograms, the
    /// controller timeline ring, and the `/metrics` HTTP endpoints.
    /// Disabled, no metrics listener binds and no per-request recording
    /// happens — the data path is byte-identical to a pre-telemetry
    /// build.
    pub telemetry: bool,
    /// Durable per-node storage (the `[persistence]` table). `None` —
    /// the default, and what every pre-existing config parses to — runs
    /// purely in memory, byte-identical to a build without the WAL.
    pub persistence: Option<PersistenceConfig>,
    /// Connection-handling substrate for the node listeners.
    pub data_plane: DataPlane,
    /// Replica-placement ordering for the online RFH policy:
    /// [`PlacementMode::Traffic`] (the paper's, default) or
    /// [`PlacementMode::DomainSpread`] (targets ranked by rack/room/DC
    /// spread before traffic).
    pub placement: PlacementMode,
    /// Per-WAN-link byte budget per control tick. `None` — the default —
    /// executes transfers greedily, exactly as before the planner
    /// existed; `Some(b)` routes every transfer through the
    /// [`rfh_sim::TransferPlanner`], deferring over-budget moves to the
    /// repair lane with carried credit.
    pub link_budget_bytes: Option<u64>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            servers_per_rack: 5,
            partitions: 64,
            seed: 42,
            control_interval_ms: 200,
            capacity_spread: 0.25,
            threads: 1,
            telemetry: true,
            persistence: None,
            data_plane: DataPlane::Reactor,
            placement: PlacementMode::Traffic,
            link_budget_bytes: None,
        }
    }
}

impl ClusterConfig {
    /// The Table I simulation parameters this cluster config implies:
    /// defaults with the partition count overridden.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            partitions: self.partitions,
            capacity_spread: self.capacity_spread,
            ..SimConfig::default()
        }
    }

    /// Total node count of the scaled paper topology.
    pub fn nodes(&self) -> u32 {
        10 * 2 * self.servers_per_rack
    }

    /// The transfer-planner configuration this cluster config implies:
    /// disabled unless a link budget is set.
    pub fn planner(&self) -> PlannerConfig {
        match self.link_budget_bytes {
            Some(b) => PlannerConfig::budgeted(b),
            None => PlannerConfig::default(),
        }
    }

    /// Domain checks beyond parsing.
    pub fn validate(&self) -> Result<()> {
        let err = |reason: &str| RfhError::InvalidConfig {
            parameter: "serve_config",
            reason: reason.to_string(),
        };
        if self.servers_per_rack == 0 {
            return Err(err("servers_per_rack must be at least 1"));
        }
        if self.control_interval_ms == 0 {
            return Err(err("control_interval_ms must be at least 1"));
        }
        if self.threads == 0 {
            return Err(err("threads must be at least 1"));
        }
        if let Some(p) = &self.persistence {
            p.validate()?;
        }
        self.sim_config().validate()
    }

    /// Parse from the TOML subset. All scalar keys are top-level and
    /// optional; durability lives in an optional `[persistence]` table
    /// (absent = in-memory, the pre-durability behaviour):
    ///
    /// ```toml
    /// servers_per_rack = 3
    /// partitions = 64
    /// seed = 42
    /// control_interval_ms = 200
    /// capacity_spread = 0.25
    /// threads = 1
    /// telemetry = true
    /// data_plane = "reactor"   # or "threaded"
    /// placement = "traffic"    # or "domain-spread"
    /// link_budget_bytes = 1048576   # per-WAN-link per-tick; absent = greedy
    ///
    /// [persistence]
    /// dir = "/var/tmp/rfh-data"
    /// fsync = "never"          # "always", "never", or an int (every n)
    /// segment_bytes = 1048576
    /// checkpoint_every = 4096
    /// range_shards = 2
    /// ```
    pub fn from_toml_str(text: &str) -> Result<Self> {
        let doc = toml::parse_toml(text, "serve_config")?;
        let mut cfg = ClusterConfig::default();
        for block in &doc.blocks {
            match (block.kind, block.name.as_str()) {
                (BlockKind::Top, _) => {}
                (BlockKind::Table, "persistence") => {
                    if cfg.persistence.is_some() {
                        return Err(toml::config_err(
                            "serve_config",
                            block.line,
                            "duplicate [persistence] table".to_string(),
                        ));
                    }
                    cfg.persistence = Some(parse_persistence(block)?);
                }
                _ => {
                    return Err(toml::config_err(
                        "serve_config",
                        block.line,
                        format!("unknown table {:?}", block.name),
                    ))
                }
            }
        }
        for item in &doc.top().items {
            let (val, line) = (&item.value, item.line);
            let e = |reason: String| toml::config_err("serve_config", line, reason);
            match item.key.as_str() {
                "servers_per_rack" => {
                    cfg.servers_per_rack = val
                        .as_u64()
                        .filter(|&x| x >= 1)
                        .ok_or_else(|| e("servers_per_rack wants an int ≥ 1".into()))?
                        as u32
                }
                "partitions" => {
                    cfg.partitions = val
                        .as_u64()
                        .filter(|&x| x >= 1)
                        .ok_or_else(|| e("partitions wants an int ≥ 1".into()))?
                        as u32
                }
                "seed" => {
                    cfg.seed =
                        val.as_u64().ok_or_else(|| e("seed wants a non-negative int".into()))?
                }
                "control_interval_ms" => {
                    cfg.control_interval_ms = val
                        .as_u64()
                        .filter(|&x| x >= 1)
                        .ok_or_else(|| e("control_interval_ms wants an int ≥ 1".into()))?
                }
                "threads" => {
                    cfg.threads = val
                        .as_u64()
                        .filter(|&x| x >= 1)
                        .ok_or_else(|| e("threads wants an int ≥ 1".into()))?
                }
                "capacity_spread" => {
                    cfg.capacity_spread = val
                        .as_f64()
                        .filter(|&x| (0.0..1.0).contains(&x))
                        .ok_or_else(|| e("capacity_spread wants a number in [0, 1)".into()))?
                }
                "telemetry" => {
                    cfg.telemetry =
                        val.as_bool().ok_or_else(|| e("telemetry wants true or false".into()))?
                }
                "data_plane" => {
                    cfg.data_plane = match val.as_str() {
                        Some("threaded") => DataPlane::Threaded,
                        Some("reactor") => DataPlane::Reactor,
                        _ => return Err(e("data_plane wants \"threaded\" or \"reactor\"".into())),
                    }
                }
                "placement" => {
                    cfg.placement = match val.as_str() {
                        Some("traffic") => PlacementMode::Traffic,
                        Some("domain-spread") => PlacementMode::DomainSpread,
                        _ => {
                            return Err(
                                e("placement wants \"traffic\" or \"domain-spread\"".into()),
                            )
                        }
                    }
                }
                "link_budget_bytes" => {
                    cfg.link_budget_bytes = Some(
                        val.as_u64()
                            .filter(|&x| x >= 1)
                            .ok_or_else(|| e("link_budget_bytes wants an int ≥ 1".into()))?,
                    )
                }
                key => return Err(e(format!("unknown serve key {key:?}"))),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// How the load generator paces requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Each worker issues its next request as soon as the previous one
    /// completes — measures capacity.
    Closed,
    /// Requests arrive on a Poisson process at `rate` per second,
    /// independent of completions — measures latency under a fixed
    /// offered load (queueing delay counts against latency).
    Open,
}

/// Load-generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenConfig {
    /// Arrival pacing.
    pub mode: ArrivalMode,
    /// Concurrent client workers (each owns one connection set).
    pub workers: u32,
    /// Total operations to issue.
    pub ops: u64,
    /// Open-loop arrival rate, requests per second.
    pub rate: f64,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// Size of the key universe.
    pub keys: u64,
    /// Zipf skew over keys (0 = uniform), via `rfh_workload::Zipf`.
    pub zipf_s: f64,
    /// Payload bytes per write.
    pub value_bytes: u32,
    /// Seed for key popularity, origin datacenters and read/write mix.
    pub seed: u64,
    /// Span-trace sampling: `0` disables tracing (every frame encodes
    /// byte-identically to an untraced build); `n ≥ 1` stamps an op-ID
    /// onto every `n`-th operation, yielding one causal span chain per
    /// sampled request.
    pub trace_sample: u64,
    /// Closed-loop pipeline depth: each worker keeps up to this many
    /// operations in flight on one connection, correlating replies by
    /// arrival order (plus the op-ID echo on traced frames). `1` is
    /// the classic request/response loop. Open-loop mode requires `1` —
    /// its coordinated-omission-free latency accounting assumes each
    /// arrival is an independent request.
    pub pipeline: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            mode: ArrivalMode::Closed,
            workers: 8,
            ops: 10_000,
            rate: 2_000.0,
            read_fraction: 0.5,
            keys: 10_000,
            zipf_s: 0.9,
            value_bytes: 128,
            seed: 1,
            trace_sample: 0,
            pipeline: 1,
        }
    }
}

impl LoadGenConfig {
    /// Domain checks beyond parsing.
    pub fn validate(&self) -> Result<()> {
        let err = |reason: &str| RfhError::InvalidConfig {
            parameter: "loadgen_config",
            reason: reason.to_string(),
        };
        if self.workers == 0 {
            return Err(err("workers must be at least 1"));
        }
        if self.keys == 0 {
            return Err(err("keys must be at least 1"));
        }
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return Err(err("read_fraction must be in [0, 1]"));
        }
        if self.mode == ArrivalMode::Open && !(self.rate.is_finite() && self.rate > 0.0) {
            return Err(err("open-loop mode needs rate > 0"));
        }
        if self.zipf_s < 0.0 {
            return Err(err("zipf_s must be non-negative"));
        }
        if self.value_bytes as u64 > (crate::wire::MAX_FRAME as u64) / 2 {
            return Err(err("value_bytes larger than half a wire frame"));
        }
        if self.pipeline == 0 {
            return Err(err("pipeline must be at least 1"));
        }
        if self.mode == ArrivalMode::Open && self.pipeline != 1 {
            return Err(err("open-loop mode requires pipeline = 1"));
        }
        Ok(())
    }

    /// Parse from the TOML subset. All keys top-level and optional:
    ///
    /// ```toml
    /// mode = "closed"          # or "open"
    /// workers = 8
    /// ops = 10000
    /// rate = 2000.0            # open-loop arrivals/sec
    /// read_fraction = 0.5
    /// keys = 10000
    /// zipf_s = 0.9
    /// value_bytes = 128
    /// seed = 1
    /// trace_sample = 0         # 0 = off; n = trace every n-th op
    /// pipeline = 1             # closed-loop in-flight depth per worker
    /// ```
    pub fn from_toml_str(text: &str) -> Result<Self> {
        let doc = toml::parse_toml(text, "loadgen_config")?;
        reject_tables(&doc, "loadgen_config")?;
        let mut cfg = LoadGenConfig::default();
        for item in &doc.top().items {
            let (val, line) = (&item.value, item.line);
            let e = |reason: String| toml::config_err("loadgen_config", line, reason);
            match item.key.as_str() {
                "mode" => {
                    cfg.mode = match val.as_str() {
                        Some("closed") => ArrivalMode::Closed,
                        Some("open") => ArrivalMode::Open,
                        _ => return Err(e("mode wants \"closed\" or \"open\"".into())),
                    }
                }
                "workers" => {
                    cfg.workers = val
                        .as_u64()
                        .filter(|&x| x >= 1)
                        .ok_or_else(|| e("workers wants an int ≥ 1".into()))?
                        as u32
                }
                "ops" => cfg.ops = val.as_u64().ok_or_else(|| e("ops wants an int".into()))?,
                "rate" => {
                    cfg.rate = val
                        .as_f64()
                        .filter(|&x| x > 0.0)
                        .ok_or_else(|| e("rate wants a number > 0".into()))?
                }
                "read_fraction" => {
                    cfg.read_fraction = val
                        .as_f64()
                        .filter(|&x| (0.0..=1.0).contains(&x))
                        .ok_or_else(|| e("read_fraction wants a number in [0, 1]".into()))?
                }
                "keys" => {
                    cfg.keys = val
                        .as_u64()
                        .filter(|&x| x >= 1)
                        .ok_or_else(|| e("keys wants an int ≥ 1".into()))?
                }
                "zipf_s" => {
                    cfg.zipf_s = val
                        .as_f64()
                        .filter(|&x| x >= 0.0)
                        .ok_or_else(|| e("zipf_s wants a non-negative number".into()))?
                }
                "value_bytes" => {
                    cfg.value_bytes =
                        val.as_u64().ok_or_else(|| e("value_bytes wants an int".into()))? as u32
                }
                "seed" => {
                    cfg.seed =
                        val.as_u64().ok_or_else(|| e("seed wants a non-negative int".into()))?
                }
                "trace_sample" => {
                    cfg.trace_sample = val
                        .as_u64()
                        .ok_or_else(|| e("trace_sample wants a non-negative int".into()))?
                }
                "pipeline" => {
                    cfg.pipeline = val
                        .as_u64()
                        .filter(|&x| x >= 1)
                        .ok_or_else(|| e("pipeline wants an int ≥ 1".into()))?
                }
                key => return Err(e(format!("unknown loadgen key {key:?}"))),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Schema of the `[persistence]` table. `dir` is required; everything
/// else defaults as in [`PersistenceConfig::with_dir`].
fn parse_persistence(block: &TomlBlock) -> Result<PersistenceConfig> {
    let mut cfg = PersistenceConfig::with_dir("");
    let mut saw_dir = false;
    for item in &block.items {
        let (val, line) = (&item.value, item.line);
        let e = |reason: String| toml::config_err("serve_config", line, reason);
        match item.key.as_str() {
            "dir" => {
                cfg.dir = val
                    .as_str()
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| e("dir wants a non-empty string".into()))?
                    .to_string();
                saw_dir = true;
            }
            "fsync" => {
                cfg.fsync = match (val.as_str(), val.as_u64()) {
                    (Some("always"), _) => FsyncPolicy::Always,
                    (Some("never"), _) => FsyncPolicy::Never,
                    (None, Some(n)) if n >= 1 => FsyncPolicy::EveryN(n),
                    _ => return Err(e("fsync wants \"always\", \"never\" or an int ≥ 1".into())),
                }
            }
            "segment_bytes" => {
                cfg.segment_bytes = val
                    .as_u64()
                    .filter(|&x| x >= 1024)
                    .ok_or_else(|| e("segment_bytes wants an int ≥ 1024".into()))?
            }
            "checkpoint_every" => {
                cfg.checkpoint_every = val
                    .as_u64()
                    .filter(|&x| x >= 1)
                    .ok_or_else(|| e("checkpoint_every wants an int ≥ 1".into()))?
            }
            "range_shards" => {
                cfg.range_shards = val
                    .as_u64()
                    .filter(|&x| (1..=256).contains(&x))
                    .ok_or_else(|| e("range_shards wants an int in 1..=256".into()))?
                    as u32
            }
            key => return Err(e(format!("unknown [persistence] key {key:?}"))),
        }
    }
    if !saw_dir {
        return Err(toml::config_err(
            "serve_config",
            block.line,
            "[persistence] requires `dir`".to_string(),
        ));
    }
    Ok(cfg)
}

fn reject_tables(doc: &TomlDoc, parameter: &'static str) -> Result<()> {
    for block in &doc.blocks {
        if block.kind != BlockKind::Top {
            return Err(toml::config_err(
                parameter,
                block.line,
                format!("unknown table {:?}", block.name),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_config_parses_and_defaults() {
        let cfg = ClusterConfig::from_toml_str("servers_per_rack = 3\nseed = 9\n").unwrap();
        assert_eq!(cfg.servers_per_rack, 3);
        assert_eq!(cfg.nodes(), 60);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.partitions, 64, "unset keys keep defaults");
        assert_eq!(ClusterConfig::from_toml_str("").unwrap(), ClusterConfig::default());
    }

    #[test]
    fn cluster_config_rejects_bad_values() {
        for bad in [
            "servers_per_rack = 0",
            "partitions = -1",
            "capacity_spread = 1.5",
            "control_interval_ms = 0",
            "nope = 1",
            "[table]\nx = 1",
        ] {
            assert!(ClusterConfig::from_toml_str(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn loadgen_config_parses_modes() {
        let c = LoadGenConfig::from_toml_str("mode = \"open\"\nrate = 500.0\nops = 42\n").unwrap();
        assert_eq!(c.mode, ArrivalMode::Open);
        assert_eq!(c.ops, 42);
        let c = LoadGenConfig::from_toml_str("mode = \"closed\"\n").unwrap();
        assert_eq!(c.mode, ArrivalMode::Closed);
    }

    #[test]
    fn telemetry_and_trace_sample_keys_parse() {
        let c = ClusterConfig::from_toml_str("telemetry = false\n").unwrap();
        assert!(!c.telemetry);
        assert!(ClusterConfig::default().telemetry, "telemetry defaults on");
        assert!(ClusterConfig::from_toml_str("telemetry = 3\n").is_err());
        let l = LoadGenConfig::from_toml_str("trace_sample = 16\n").unwrap();
        assert_eq!(l.trace_sample, 16);
        assert_eq!(LoadGenConfig::default().trace_sample, 0, "tracing defaults off");
        assert!(LoadGenConfig::from_toml_str("trace_sample = \"x\"\n").is_err());
    }

    #[test]
    fn data_plane_and_pipeline_keys_parse() {
        assert_eq!(ClusterConfig::default().data_plane, DataPlane::Reactor);
        let c = ClusterConfig::from_toml_str("data_plane = \"threaded\"\n").unwrap();
        assert_eq!(c.data_plane, DataPlane::Threaded);
        let c = ClusterConfig::from_toml_str("data_plane = \"reactor\"\n").unwrap();
        assert_eq!(c.data_plane, DataPlane::Reactor);
        assert!(ClusterConfig::from_toml_str("data_plane = \"green\"\n").is_err());

        assert_eq!(LoadGenConfig::default().pipeline, 1);
        let l = LoadGenConfig::from_toml_str("pipeline = 8\n").unwrap();
        assert_eq!(l.pipeline, 8);
        assert!(LoadGenConfig::from_toml_str("pipeline = 0\n").is_err());
        assert!(
            LoadGenConfig::from_toml_str("mode = \"open\"\npipeline = 4\n").is_err(),
            "open-loop pacing is depth-1 by construction"
        );
        assert!(LoadGenConfig::from_toml_str("mode = \"open\"\npipeline = 1\n").is_ok());
    }

    #[test]
    fn placement_and_link_budget_keys_parse() {
        let d = ClusterConfig::default();
        assert_eq!(d.placement, PlacementMode::Traffic);
        assert_eq!(d.link_budget_bytes, None);
        assert!(!d.planner().enabled, "no budget = greedy execution");

        let c = ClusterConfig::from_toml_str("placement = \"domain-spread\"\n").unwrap();
        assert_eq!(c.placement, PlacementMode::DomainSpread);
        let c = ClusterConfig::from_toml_str("placement = \"traffic\"\n").unwrap();
        assert_eq!(c.placement, PlacementMode::Traffic);
        assert!(ClusterConfig::from_toml_str("placement = \"rackwise\"\n").is_err());

        let c = ClusterConfig::from_toml_str("link_budget_bytes = 1048576\n").unwrap();
        assert_eq!(c.link_budget_bytes, Some(1 << 20));
        let p = c.planner();
        assert!(p.enabled);
        assert_eq!(p.link_budget_bytes, Some(1 << 20));
        assert!(ClusterConfig::from_toml_str("link_budget_bytes = 0\n").is_err());
        assert!(ClusterConfig::from_toml_str("link_budget_bytes = \"big\"\n").is_err());
    }

    #[test]
    fn persistence_table_parses_and_defaults_off() {
        assert_eq!(ClusterConfig::from_toml_str("").unwrap().persistence, None);
        let cfg = ClusterConfig::from_toml_str(
            "partitions = 8\n[persistence]\ndir = \"/tmp/rfh-x\"\nfsync = \"always\"\n",
        )
        .unwrap();
        let p = cfg.persistence.unwrap();
        assert_eq!(p.dir, "/tmp/rfh-x");
        assert_eq!(p.fsync, FsyncPolicy::Always);
        assert_eq!(p.segment_bytes, 1 << 20, "unset keys keep defaults");
        assert_eq!(p.range_shards, 2);

        let p = ClusterConfig::from_toml_str(
            "[persistence]\ndir = \"d\"\nfsync = 64\nsegment_bytes = 4096\nrange_shards = 16\ncheckpoint_every = 100\n",
        )
        .unwrap()
        .persistence
        .unwrap();
        assert_eq!(p.fsync, FsyncPolicy::EveryN(64));
        assert_eq!((p.segment_bytes, p.range_shards, p.checkpoint_every), (4096, 16, 100));
    }

    #[test]
    fn persistence_table_rejects_bad_values() {
        for bad in [
            "[persistence]\nfsync = \"always\"",             // missing dir
            "[persistence]\ndir = \"\"",                     // empty dir
            "[persistence]\ndir = \"d\"\nfsync = \"wat\"",   // bad policy
            "[persistence]\ndir = \"d\"\nfsync = 0",         // zero interval
            "[persistence]\ndir = \"d\"\nsegment_bytes = 8", // too small
            "[persistence]\ndir = \"d\"\nrange_shards = 0",
            "[persistence]\ndir = \"d\"\nrange_shards = 500",
            "[persistence]\ndir = \"d\"\nmystery = 1",
            "[persistence]\ndir = \"d\"\n[persistence]\ndir = \"e\"", // duplicate
        ] {
            assert!(ClusterConfig::from_toml_str(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn loadgen_config_rejects_bad_values() {
        for bad in [
            "mode = \"wat\"",
            "workers = 0",
            "read_fraction = 2.0",
            "keys = 0",
            "zipf_s = -1.0",
            "value_bytes = 999999999",
            "mystery = true",
        ] {
            assert!(LoadGenConfig::from_toml_str(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
