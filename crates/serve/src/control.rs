//! The online RFH control loop.
//!
//! One thread owns the entire control plane — topology, ring, replica
//! manager, traffic engine/smoother, policy, fault injector, repair
//! queue, auditor — exactly the state the offline simulator's epoch
//! loop owns. Every `control_interval_ms` it runs one *tick*, which is
//! the offline epoch loop transplanted onto live counters:
//!
//! 1. drive the fault plan (kill/recover nodes, flip the data plane's
//!    alive flags, prune dead replicas, retry archive restores);
//! 2. atomically drain the live `q_ijt` counters into a `QueryLoad`;
//! 3. run the **real** traffic pass (`TrafficEngine`), EWMA smoothing,
//!    and Erlang-B blocking over the drained matrix;
//! 4. let the **real** `RfhPolicy` decide replicate/migrate/suicide;
//! 5. execute transfers through the `ReplicaManager`, deferring
//!    unreachable destinations to the PR 3 repair queue (retried with
//!    backoff ahead of new decisions), copying partition data and
//!    republishing routes under the per-partition lock;
//! 6. audit placement invariants.
//!
//! The loop is paced by wall-clock, so a live run is *not*
//! bit-deterministic — how many requests land in each tick depends on
//! scheduling. Everything downstream of the drained matrix is the same
//! deterministic code the simulator runs.

use crate::cluster::Shared;
use crate::store::Versioned;
use crate::telemetry::TickSample;
use crate::wal::StorageSnapshot;
use rfh_core::{
    server_blocking_probabilities, Action, EpochContext, PlacementMode, ReplicaManager,
    ReplicationPolicy, RfhPolicy,
};
use rfh_faults::{FaultInjector, FaultPlan, InvariantAuditor};
use rfh_obs::{MetricsRegistry, NullRecorder};
use rfh_pool::WorkerPool;
use rfh_ring::ConsistentHashRing;
use rfh_sim::{
    destination_unreachable, link_between, LinkKey, MoveClass, MoveReq, PlannerConfig, RepairQueue,
    TransferPlanner,
};
use rfh_stats::Histogram;
use rfh_topology::Topology;
use rfh_traffic::{PlacementView, TrafficEngine, TrafficSmoother};
use rfh_types::{Epoch, PartitionId, ServerId, SimConfig};
use rfh_workload::QueryLoad;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Lifetime totals the control loop hands back at shutdown.
#[derive(Debug)]
pub struct ControlStats {
    /// Ticks executed (including the final drain tick).
    pub ticks: u64,
    /// Replicate actions executed.
    pub replications: u64,
    /// Migrate actions executed.
    pub migrations: u64,
    /// Suicide actions executed.
    pub suicides: u64,
    /// Deferred transfers completed.
    pub repairs_completed: u64,
    /// Deferred transfers dropped after max retries.
    pub dead_letters: u64,
    /// Invariant-auditor findings.
    pub invariant_violations: u64,
    /// Partitions restored from the archive (all replicas lost).
    pub data_restores: u64,
    /// Kill-then-restart cycles completed (`restart_after` verb).
    pub restarts: u64,
    /// Replicas placed at shutdown.
    pub replicas_total: usize,
    /// serve.* counters plus the traffic engine's cache stats.
    pub registry: MetricsRegistry,
}

/// Lifetime counter values as of the last recorded tick sample, used
/// to turn monotone totals into per-tick deltas.
#[derive(Debug, Default, Clone, Copy)]
struct TickCounters {
    ops: u64,
    forwards: u64,
    acks_ok: u64,
    acks_unavailable: u64,
    replications: u64,
    migrations: u64,
    suicides: u64,
    repairs_completed: u64,
    violations: u64,
}

pub(crate) struct Controller {
    shared: Arc<Shared>,
    topo: Topology,
    ring: ConsistentHashRing,
    manager: ReplicaManager,
    engine: TrafficEngine,
    smoother: TrafficSmoother,
    policy: RfhPolicy,
    injector: Option<FaultInjector>,
    auditor: InvariantAuditor,
    repair_queue: RepairQueue,
    /// Bandwidth-budgeted admission control for tick transfers; with
    /// `planner_cfg.enabled` off the greedy path runs untouched.
    planner_cfg: PlannerConfig,
    planner: TransferPlanner,
    pinned: Vec<PartitionId>,
    view: PlacementView,
    /// Partitions whose replica set changed since the last render.
    dirty_parts: Vec<PartitionId>,
    /// The view must be re-rendered wholesale (first tick, prune,
    /// restore); that tick runs dirty-all, seeding the sparse carry.
    view_stale: bool,
    /// Availability floor, for the sparse carry filter.
    r_min: usize,
    /// Last tick's active set, sorted ascending (the sparse carry).
    prev_active: Vec<u32>,
    /// Build buffer for the next active set.
    active_scratch: Vec<u32>,
    /// Cumulative partitions visited / skipped by sparse ticks.
    sparse_dirty: u64,
    sparse_skipped: u64,
    /// Shared worker pool for the tick's traffic pass; the policy holds
    /// a second handle for its decision pass. `None` when `threads <= 1`.
    pool: Option<Arc<WorkerPool>>,
    scratch: QueryLoad,
    cfg: SimConfig,
    /// Fault-plan events this tick, for the timeline (empty unless
    /// telemetry is on — `inject_faults` gates its pushes).
    tick_events: Vec<String>,
    /// Counter snapshot at the previous tick sample.
    prev_counters: TickCounters,
    /// Reused buffer for the per-tick server-side latency histogram.
    tick_hist: Histogram,
    tick: u64,
    replications: u64,
    migrations: u64,
    suicides: u64,
    data_restores: u64,
    restarts: u64,
}

impl Controller {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        shared: Arc<Shared>,
        topo: Topology,
        ring: ConsistentHashRing,
        manager: ReplicaManager,
        cfg: SimConfig,
        faults: FaultPlan,
        r_min: usize,
        threads: usize,
        placement: PlacementMode,
        planner_cfg: PlannerConfig,
    ) -> Self {
        let dc_count = topo.datacenters().len() as u32;
        let pool = (threads > 1).then(|| Arc::new(WorkerPool::new(threads)));
        let mut policy = RfhPolicy::new();
        policy.set_pool(pool.clone());
        policy.set_placement(placement);
        Controller {
            injector: FaultInjector::new(&faults),
            auditor: InvariantAuditor::new(cfg.partitions, r_min),
            repair_queue: RepairQueue::new(),
            planner_cfg,
            planner: TransferPlanner::new(),
            pinned: Vec::new(),
            smoother: TrafficSmoother::new(cfg.partitions, dc_count, cfg.thresholds.alpha),
            engine: TrafficEngine::new(),
            view: PlacementView::new(0, 0, Vec::new()),
            dirty_parts: Vec::new(),
            view_stale: true,
            r_min,
            prev_active: Vec::new(),
            active_scratch: Vec::new(),
            sparse_dirty: 0,
            sparse_skipped: 0,
            pool,
            scratch: QueryLoad::zeros(cfg.partitions, dc_count),
            tick_events: Vec::new(),
            prev_counters: TickCounters::default(),
            tick_hist: Histogram::latency(),
            policy,
            shared,
            topo,
            ring,
            manager,
            cfg,
            tick: 0,
            replications: 0,
            migrations: 0,
            suicides: 0,
            data_restores: 0,
            restarts: 0,
        }
    }

    /// Run ticks until shutdown; always executes one final tick after
    /// the flag flips so the last interval's counters are drained and
    /// audited.
    pub fn run(mut self, interval: Duration) -> ControlStats {
        loop {
            let last = self.shared.shutdown.load(Ordering::Acquire);
            self.step();
            if last {
                break;
            }
            let mut slept = Duration::ZERO;
            while slept < interval && !self.shared.shutdown.load(Ordering::Acquire) {
                let nap = (interval - slept).min(Duration::from_millis(10));
                std::thread::sleep(nap);
                slept += nap;
            }
        }
        self.finish()
    }

    /// The control plane's registry: serve.* lifetime totals, the
    /// data-plane request counters, the PR 6 sparse counters, and the
    /// traffic engine's cache stats. Built fresh from totals every
    /// call, so republishing per tick (and re-scraping) is idempotent.
    fn build_registry(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        registry.counter_total("serve.control.ticks", self.tick);
        registry.counter_total("serve.actions.replications", self.replications);
        registry.counter_total("serve.actions.migrations", self.migrations);
        registry.counter_total("serve.actions.suicides", self.suicides);
        registry.counter_total("serve.repairs.completed", self.repair_queue.completed());
        registry.counter_total("serve.repairs.dead_letters", self.repair_queue.dead_letters());
        registry.counter_total("serve.data_restores", self.data_restores);
        registry.counter_total("serve.invariant_violations", self.auditor.total());
        registry.counter_total("serve.sparse.dirty_partitions", self.sparse_dirty);
        registry.counter_total("serve.sparse.skipped_partitions", self.sparse_skipped);
        // Planner series appear only when the planner runs, so a
        // budget-less scrape is byte-identical to older builds.
        if self.planner_cfg.enabled {
            registry.counter_total("serve.planner.admitted", self.planner.admitted_total());
            registry.counter_total("serve.planner.deferred", self.planner.deferred_total());
            registry.gauge("serve.planner.credit_bytes", self.planner.credit_bytes() as f64);
        }
        registry.gauge("serve.replicas_total", self.manager.total_replicas() as f64);
        let c = &self.shared.counters;
        registry.counter_total("serve.requests.gets", c.gets.load(Ordering::Relaxed));
        registry.counter_total("serve.requests.puts", c.puts.load(Ordering::Relaxed));
        registry.counter_total("serve.requests.forwards", c.forwards.load(Ordering::Relaxed));
        registry.counter_total("serve.acks.ok", c.acks_ok.load(Ordering::Relaxed));
        registry.counter_total("serve.acks.not_found", c.acks_not_found.load(Ordering::Relaxed));
        registry
            .counter_total("serve.acks.unavailable", c.acks_unavailable.load(Ordering::Relaxed));
        self.engine.stats().collect_metrics(&mut registry);
        // Durability series appear only when durability is in play, so
        // a persistence-off scrape is byte-identical to older builds.
        if self.restarts > 0 {
            registry.counter_total("serve.restarts", self.restarts);
        }
        let mut storage = StorageSnapshot::default();
        let mut durable = false;
        for s in &self.shared.stores {
            if let Some(stats) = s.storage() {
                storage.add(stats.snapshot());
                durable = true;
            }
        }
        if durable {
            storage.collect_metrics(&mut registry);
        }
        registry
    }

    fn finish(self) -> ControlStats {
        let registry = self.build_registry();
        ControlStats {
            ticks: self.tick,
            replications: self.replications,
            migrations: self.migrations,
            suicides: self.suicides,
            repairs_completed: self.repair_queue.completed(),
            dead_letters: self.repair_queue.dead_letters(),
            invariant_violations: self.auditor.total(),
            data_restores: self.data_restores,
            restarts: self.restarts,
            replicas_total: self.manager.total_replicas(),
            registry,
        }
    }

    /// One control tick — the offline epoch loop on live counters.
    fn step(&mut self) {
        self.inject_faults();
        self.retry_restores();
        // Health is gauged here — after faults land, before this tick's
        // repair actions — so a kill shows up as a degraded/unavailable
        // dip on the timeline even when RFH repairs it within the tick.
        let health = self.shared.telemetry.enabled().then(|| self.partition_health());
        self.manager.begin_epoch();

        self.scratch.clear_touched();
        self.shared.load.drain_sparse_into(&mut self.scratch);

        // The live loop always runs the sparse engine — the offline
        // simulator's dense/sparse differential harness proves the two
        // paths bit-identical, so serving keeps only the O(dirty) one.
        // Active set = carry ∪ drained ∪ placement-dirty, exactly as in
        // the simulator; a stale view (first tick, prune, restore) runs
        // dirty-all, which doubles as the warm-up that seeds the carry.
        self.active_scratch.clear();
        if self.view_stale {
            self.active_scratch.extend(0..self.cfg.partitions);
        } else {
            for &pu in &self.prev_active {
                if self.policy.keeps_live(
                    &self.topo,
                    &self.smoother,
                    &self.manager,
                    self.r_min,
                    PartitionId::new(pu),
                ) {
                    self.active_scratch.push(pu);
                }
            }
            self.active_scratch.extend_from_slice(self.scratch.touched());
            self.active_scratch.extend(self.dirty_parts.iter().map(|p| p.0));
            self.active_scratch.sort_unstable();
            self.active_scratch.dedup();
        }
        std::mem::swap(&mut self.prev_active, &mut self.active_scratch);
        self.sparse_dirty += self.prev_active.len() as u64;
        self.sparse_skipped += self.cfg.partitions as u64 - self.prev_active.len() as u64;

        if self.view_stale {
            self.manager.render_view(&self.topo, self.cfg.replica_capacity_mean, &mut self.view);
            self.view_stale = false;
            self.dirty_parts.clear();
        } else {
            for &p in &self.dirty_parts {
                self.manager.render_partition(
                    &self.topo,
                    self.cfg.replica_capacity_mean,
                    p,
                    &mut self.view,
                );
            }
            self.dirty_parts.clear();
        }
        let accounts = match &self.pool {
            Some(pool) => self.engine.account_active_sharded(
                &self.topo,
                &self.scratch,
                &self.view,
                &self.prev_active,
                pool,
            ),
            None => {
                self.engine.account_active(&self.topo, &self.scratch, &self.view, &self.prev_active)
            }
        };
        self.smoother.update_active(&self.scratch, accounts, &self.prev_active);
        let blocking =
            server_blocking_probabilities(&self.topo, accounts, self.cfg.replica_capacity_mean);

        let recorder = NullRecorder;
        let ctx = EpochContext {
            epoch: Epoch(self.tick),
            topo: &self.topo,
            load: &self.scratch,
            accounts,
            smoother: &self.smoother,
            blocking: &blocking,
            view: &self.view,
            config: &self.cfg,
            recorder: &recorder,
            active: Some(&self.prev_active),
        };
        let actions = self.policy.decide(&ctx, &self.manager);

        // Deferred transfers compete for bandwidth ahead of new
        // decisions, exactly as in the offline loop.
        let due = self.repair_queue.take_due(self.tick);
        if !self.planner_cfg.enabled {
            for item in due {
                self.run_deferred(item.action, item.attempts);
            }
            for action in actions {
                self.run_fresh(action);
            }
        } else {
            // Planner path, mirroring the offline epoch loop: moves are
            // offered in greedy execution order (deferred lane first),
            // the priority classes only decide which moves win a
            // contended link budget, and admitted moves execute in
            // their offered order.
            let size = self.cfg.partition_size.0;
            let mut moves: Vec<MoveReq<(Action, bool, u32)>> =
                Vec::with_capacity(due.len() + actions.len());
            for item in &due {
                moves.push(MoveReq {
                    tag: (item.action, true, item.attempts),
                    link: self.wan_link(&item.action),
                    bytes: size,
                    class: MoveClass::Deferred { age: item.attempts },
                });
            }
            for &action in &actions {
                let class = match action {
                    Action::Replicate { partition, .. }
                        if self.manager.replica_count(partition) < self.r_min =>
                    {
                        MoveClass::UnderReplicated
                    }
                    _ => MoveClass::Normal,
                };
                moves.push(MoveReq {
                    tag: (action, false, 0),
                    link: self.wan_link(&action),
                    bytes: size,
                    class,
                });
            }
            let (repl_f, migr_f) = self.manager.bandwidth_factors();
            let budget = match self.planner_cfg.link_budget_bytes {
                None => u64::MAX,
                Some(b) => (b as f64 * repl_f.min(migr_f)) as u64,
            };
            let outcome = self.planner.plan(moves, |_| budget);
            for (action, was_deferred, attempts) in outcome.admitted {
                if was_deferred {
                    self.run_deferred(action, attempts);
                } else {
                    self.run_fresh(action);
                }
            }
            for (action, _, attempts) in outcome.deferred {
                self.repair_queue.defer_next(action, attempts + 1, self.tick);
            }
        }

        // Subset audit over the active partitions (plus the auditor's
        // internal watch list): only actions change audit state, actions
        // land on active partitions, and deferred repairs target watched
        // partitions — so the violation stream matches a full sweep.
        let manager = &self.manager;
        let pinned = &self.pinned;
        self.auditor.audit_subset(
            self.tick,
            &self.topo,
            &self.prev_active,
            |p, buf| buf.extend_from_slice(manager.replicas(p)),
            |p| pinned.contains(&p),
        );
        self.record_tick_sample(health);
        self.tick += 1;
    }

    /// Execute one deferred-lane item: re-defer with backoff while the
    /// destination is unreachable, otherwise apply and account it.
    fn run_deferred(&mut self, action: Action, attempts: u32) {
        if destination_unreachable(&self.topo, &self.manager, &action) {
            self.repair_queue.defer(action, attempts + 1, self.tick);
            return;
        }
        if self.execute(action) {
            self.repair_queue.note_completed();
        }
    }

    /// Execute one of this tick's fresh decisions, deferring it when
    /// chaos has made the destination unreachable.
    fn run_fresh(&mut self, action: Action) {
        if self.injector.is_some() && destination_unreachable(&self.topo, &self.manager, &action) {
            self.repair_queue.defer(action, 0, self.tick);
            return;
        }
        self.execute(action);
    }

    /// The WAN link a transfer crosses, or `None` for suicides and
    /// intra-datacenter moves (which cost the planner nothing).
    fn wan_link(&self, action: &Action) -> Option<LinkKey> {
        let dc = |s: ServerId| self.topo.servers()[s.index()].datacenter;
        let (src, dst) = match *action {
            Action::Replicate { partition, target } => {
                (dc(self.manager.holder(partition)), dc(target))
            }
            Action::Migrate { from, to, .. } => (dc(from), dc(to)),
            Action::Suicide { .. } => return None,
        };
        (src != dst).then(|| link_between(src, dst))
    }

    /// Count partitions below the replication floor: `(degraded,
    /// unavailable)` where degraded means `0 < live < r_min` and
    /// unavailable means no live replica at all.
    fn partition_health(&self) -> (u64, u64) {
        let mut degraded = 0u64;
        let mut unavailable = 0u64;
        for p in (0..self.cfg.partitions).map(PartitionId::new) {
            let live = self
                .manager
                .replicas(p)
                .iter()
                .filter(|s| self.topo.servers()[s.index()].alive)
                .count();
            if live == 0 {
                unavailable += 1;
            } else if live < self.r_min {
                degraded += 1;
            }
        }
        (degraded, unavailable)
    }

    /// Drain the per-tick server-side latency histograms, compute this
    /// tick's deltas, append one [`TickSample`] to the timeline ring
    /// (with the pre-repair health gauges from [`Self::partition_health`]),
    /// and republish the control registry for the `/metrics` endpoint.
    /// No-op when telemetry is off, so the control loop's outputs match
    /// a pre-telemetry build.
    fn record_tick_sample(&mut self, health: Option<(u64, u64)>) {
        let Some((degraded, unavailable)) = health else {
            return;
        };
        self.tick_hist.clear();
        self.shared.telemetry.drain_tick(&mut self.tick_hist);

        let c = &self.shared.counters;
        let cur = TickCounters {
            ops: c.gets.load(Ordering::Relaxed) + c.puts.load(Ordering::Relaxed),
            forwards: c.forwards.load(Ordering::Relaxed),
            acks_ok: c.acks_ok.load(Ordering::Relaxed),
            acks_unavailable: c.acks_unavailable.load(Ordering::Relaxed),
            replications: self.replications,
            migrations: self.migrations,
            suicides: self.suicides,
            repairs_completed: self.repair_queue.completed(),
            violations: self.auditor.total(),
        };
        let prev = self.prev_counters;

        self.shared.telemetry.push_sample(TickSample {
            tick: self.tick,
            ops: cur.ops - prev.ops,
            forwards: cur.forwards - prev.forwards,
            acks_ok: cur.acks_ok - prev.acks_ok,
            acks_unavailable: cur.acks_unavailable - prev.acks_unavailable,
            p50_us: self.tick_hist.quantile(0.5).unwrap_or(0.0),
            p99_us: self.tick_hist.quantile(0.99).unwrap_or(0.0),
            replicas_total: self.manager.total_replicas() as u64,
            degraded,
            unavailable,
            replications: cur.replications - prev.replications,
            migrations: cur.migrations - prev.migrations,
            suicides: cur.suicides - prev.suicides,
            repairs: cur.repairs_completed - prev.repairs_completed,
            violations: cur.violations - prev.violations,
            events: std::mem::take(&mut self.tick_events),
        });
        self.prev_counters = cur;
        self.shared.telemetry.publish_registry(self.build_registry());
    }

    /// Apply one action through the replica manager and mirror it on
    /// the data plane: partition lock → control-plane apply → data copy
    /// → route publish. Holding the lock for the whole sequence means
    /// no client write can land between the copy and the new route.
    fn execute(&mut self, action: Action) -> bool {
        let partition = match action {
            Action::Replicate { partition, .. }
            | Action::Migrate { partition, .. }
            | Action::Suicide { partition, .. } => partition,
        };
        let guard = self.shared.locks[partition.index()].lock().expect("partition lock");
        let old_route = self.shared.route(partition);
        // Flip the route epoch odd *before* touching placement or data:
        // a reactor-plane writer observing an odd epoch (or an epoch
        // changed across its write) knows its replica set may straddle
        // the transfer and retries instead of acking.
        self.shared.begin_route_change(partition);
        if self.manager.apply(&self.topo, action).is_err() {
            // Aborted change: settle the epoch even again (spurious
            // invalidation of in-flight optimistic writes is harmless).
            self.shared.end_route_change(partition);
            return false; // budget/capacity rejection: the policy re-decides next tick
        }
        match action {
            Action::Replicate { target, .. } => {
                self.copy_partition(partition, &old_route, target);
                self.replications += 1;
            }
            Action::Migrate { to, .. } => {
                self.copy_partition(partition, &old_route, to);
                self.migrations += 1;
            }
            Action::Suicide { .. } => {
                // The shard's data stays in place but unrouted; a
                // later re-replication to this node finds a warm copy
                // and merge makes that safe.
                self.suicides += 1;
            }
        }
        self.publish(partition);
        drop(guard);
        self.dirty_parts.push(partition);
        true
    }

    /// Copy a full partition onto `to`: from the first live member of
    /// the pre-transfer route when one exists, else merged from every
    /// store (dead disks double as the archive).
    fn copy_partition(&self, p: PartitionId, old_route: &[ServerId], to: ServerId) {
        let source = old_route.iter().copied().find(|&s| self.shared.is_alive(s.index()));
        let entries: Vec<(u64, Versioned)> = match source {
            Some(s) => self.shared.stores[s.index()].snapshot_partition(p, self.shared.partitions),
            None => self.archive_snapshot(p),
        };
        self.shared.stores[to.index()].merge(&entries);
    }

    /// The archive stand-in: the union of every node's shard of `p`,
    /// LWW-merged. Dead nodes' stores are included — a failed server's
    /// disk outlives its process, which is what makes catastrophic
    /// restores lossless for acknowledged writes.
    fn archive_snapshot(&self, p: PartitionId) -> Vec<(u64, Versioned)> {
        let mut best: std::collections::HashMap<u64, Versioned> = std::collections::HashMap::new();
        for store in &self.shared.stores {
            for (k, v) in store.snapshot_partition(p, self.shared.partitions) {
                match best.get(&k) {
                    Some(cur) if cur.seq >= v.seq => {}
                    _ => {
                        best.insert(k, v);
                    }
                }
            }
        }
        best.into_iter().collect()
    }

    /// Republish one partition's route row from the replica manager,
    /// then settle its route epoch at the next even value. Caller holds
    /// the partition lock.
    fn publish(&self, p: PartitionId) {
        self.shared.routes.write().expect("routes lock")[p.index()] =
            self.manager.replicas(p).to_vec();
        self.shared.end_route_change(p);
    }

    /// Republish every route row (after prune/recovery sweeps). Takes
    /// each partition lock in turn.
    fn publish_all(&self) {
        for p in (0..self.shared.partitions).map(PartitionId::new) {
            let _guard = self.shared.locks[p.index()].lock().expect("partition lock");
            self.publish(p);
        }
    }

    fn inject_faults(&mut self) {
        let Some(injector) = self.injector.as_mut() else {
            return;
        };
        let Ok(report) = injector.begin_epoch(self.tick, &mut self.topo) else {
            return;
        };
        if !report.failed.is_empty() || report.routes_changed || report.random_shortfall > 0 {
            self.auditor.note_fault(self.tick);
        }
        let telemetry = self.shared.telemetry.enabled();
        for &id in &report.failed {
            self.ring.leave(id);
            self.shared.alive[id.index()].store(false, Ordering::Release);
            if telemetry {
                self.tick_events.push(format!("kill s{}", id.0));
            }
        }
        for &id in &report.recovered {
            self.ring.join(id);
            self.shared.alive[id.index()].store(true, Ordering::Release);
            if telemetry {
                self.tick_events.push(format!("recover s{}", id.0));
            }
        }
        for &id in &report.restarted {
            // Kill-then-restart: the node comes back with empty memory
            // and replays its log before rejoining — exactly the
            // in-process analogue of SIGKILL + relaunch. A memory store
            // replays nothing; that data loss *is* its baseline
            // semantics and what the durability tests measure against.
            self.ring.join(id);
            match self.shared.stores[id.index()].restart_from_disk() {
                Ok(replayed) => {
                    if telemetry {
                        self.tick_events.push(format!("restart s{} replayed {replayed}", id.0));
                    }
                }
                Err(e) => {
                    // Degrade to a cold rejoin rather than killing the
                    // control thread; repairs re-copy its partitions.
                    if telemetry {
                        self.tick_events.push(format!("restart s{} replay failed: {e}", id.0));
                    }
                }
            }
            self.shared.alive[id.index()].store(true, Ordering::Release);
            self.restarts += 1;
        }
        if let Some(p) = report.message_loss {
            self.policy.set_message_loss(p);
        }
        if let Some((repl, migr)) = report.bandwidth {
            self.manager.set_bandwidth_factors(repl, migr);
        }
        if !report.failed.is_empty() {
            self.prune_dead();
        }
    }

    /// Drop replicas on dead nodes; partitions that lost every copy
    /// are restored from the archive onto a ring successor (or pinned
    /// until any server is alive again).
    fn prune_dead(&mut self) {
        let ring = &self.ring;
        let topo = &self.topo;
        let outcome = self.manager.prune_dead(topo, |p| {
            ring.successors(p, topo.server_count())
                .ok()
                .into_iter()
                .flatten()
                .find(|&s| topo.servers()[s.index()].alive)
                .or_else(|| topo.servers().iter().find(|s| s.alive).map(|s| s.id))
        });
        for &p in &outcome.restored_partitions {
            let _guard = self.shared.locks[p.index()].lock().expect("partition lock");
            if let Some(&to) = self.manager.replicas(p).first() {
                let entries = self.archive_snapshot(p);
                self.shared.stores[to.index()].merge(&entries);
            }
            self.publish(p);
            self.data_restores += 1;
        }
        for p in outcome.unrestored_partitions {
            if !self.pinned.contains(&p) {
                self.pinned.push(p);
            }
        }
        self.view_stale = true;
        self.publish_all();
    }

    /// Retry archive restores for partitions pinned to dead nodes.
    fn retry_restores(&mut self) {
        if self.pinned.is_empty() {
            return;
        }
        let mut still_pinned = Vec::new();
        for p in std::mem::take(&mut self.pinned) {
            // A pinned node that recovered brings its disk back.
            if self.manager.replicas(p).iter().any(|&s| self.topo.servers()[s.index()].alive) {
                let _guard = self.shared.locks[p.index()].lock().expect("partition lock");
                self.publish(p);
                self.view_stale = true;
                continue;
            }
            let target = self
                .ring
                .successors(p, self.topo.server_count())
                .ok()
                .into_iter()
                .flatten()
                .find(|&s| self.topo.servers()[s.index()].alive)
                .or_else(|| self.topo.servers().iter().find(|s| s.alive).map(|s| s.id));
            match target {
                Some(to) if self.manager.restore_partition(&self.topo, p, to).is_ok() => {
                    let _guard = self.shared.locks[p.index()].lock().expect("partition lock");
                    let entries = self.archive_snapshot(p);
                    self.shared.stores[to.index()].merge(&entries);
                    self.publish(p);
                    self.data_restores += 1;
                    self.view_stale = true;
                }
                _ => still_pinned.push(p),
            }
        }
        self.pinned = still_pinned;
    }
}
