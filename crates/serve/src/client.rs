//! A client handle for a running cluster.
//!
//! Each [`ServeClient`] models one front-end in a specific datacenter:
//! it keeps a single connection to a coordinator node *in that
//! datacenter* (requests enter the system locally, as the paper's
//! traffic model assumes) and fails over to the next local node when
//! the connection breaks or the node refuses service.

use crate::cluster::NodeInfo;
use crate::wire::{AckStatus, Conn, Frame};
use rfh_obs::{SpanEvent, SpanLog};
use rfh_types::{Result, RfhError};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Connect + read timeout for client requests. Generous: a request can
/// sit behind a partition transfer holding the lock.
const CLIENT_TIMEOUT: Duration = Duration::from_millis(5_000);

/// Attempts per operation before giving up (each attempt may rotate to
/// a different coordinator).
const MAX_TRIES: usize = 8;

/// The outcome of a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GetOutcome {
    /// The key exists with this version and value.
    Found {
        /// Stored write version.
        seq: u64,
        /// Stored bytes.
        value: Vec<u8>,
    },
    /// No replica holds the key.
    NotFound,
}

/// One datacenter-local client connection with failover.
pub struct ServeClient {
    /// Coordinator candidates, all in the client's datacenter.
    addrs: Vec<SocketAddr>,
    /// Index into `addrs` of the current coordinator.
    cursor: usize,
    conn: Option<Conn<TcpStream>>,
    /// The datacenter this client issues from.
    dc: u32,
    /// Where sampled requests' client-side spans land (self-hosted
    /// runs share the cluster's log, so chains are complete).
    spans: Option<Arc<SpanLog>>,
}

impl ServeClient {
    /// A client homed in `dc`, coordinating through that datacenter's
    /// nodes. `offset` staggers which local node different clients pick
    /// first so load spreads.
    pub fn new(nodes: &[NodeInfo], dc: u32, offset: usize) -> Result<Self> {
        let addrs: Vec<SocketAddr> = nodes.iter().filter(|n| n.dc == dc).map(|n| n.addr).collect();
        if addrs.is_empty() {
            return Err(RfhError::Topology(format!("no nodes in datacenter {dc}")));
        }
        let cursor = offset % addrs.len();
        Ok(ServeClient { addrs, cursor, conn: None, dc, spans: None })
    }

    /// Record client-side spans for traced operations into `spans`.
    pub fn set_span_log(&mut self, spans: Arc<SpanLog>) {
        self.spans = Some(spans);
    }

    /// Parse the address-file format `Cluster::render_addr_file` emits
    /// (`server dc ip:port` per line) back into node infos.
    pub fn parse_addr_file(text: &str) -> Result<Vec<NodeInfo>> {
        let bad = |line: &str| RfhError::Io(format!("bad addr line {line:?}"));
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|line| {
                let mut parts = line.split_whitespace();
                let server: u32 =
                    parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad(line))?;
                let dc: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad(line))?;
                let addr: SocketAddr =
                    parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad(line))?;
                Ok(NodeInfo { server: rfh_types::ServerId::new(server), dc, addr })
            })
            .collect()
    }

    /// The datacenter this client issues from.
    pub fn datacenter(&self) -> u32 {
        self.dc
    }

    /// Read `key`. Retries through coordinator failover; errors only
    /// when every attempt failed.
    pub fn get(&mut self, key: u64) -> Result<GetOutcome> {
        self.get_traced(key, None)
    }

    /// [`get`](ServeClient::get), optionally carrying a trace op-ID.
    /// `None` keeps the wire bytes identical to an untraced get.
    pub fn get_traced(&mut self, key: u64, op_id: Option<u64>) -> Result<GetOutcome> {
        let ack = self.request(&Frame::Get { key }, op_id)?;
        match ack {
            Frame::Ack { status: AckStatus::Ok, seq, value } => {
                Ok(GetOutcome::Found { seq, value })
            }
            Frame::Ack { status: AckStatus::NotFound, .. } => Ok(GetOutcome::NotFound),
            _ => Err(RfhError::Io("read unavailable".into())),
        }
    }

    /// Write `key = value` at version `seq`. Returns only after a
    /// coordinator acknowledged the write on every live replica; safe
    /// to retry with the same `seq` (idempotent last-writer-wins).
    pub fn put(&mut self, key: u64, seq: u64, value: &[u8]) -> Result<()> {
        self.put_traced(key, seq, value, None)
    }

    /// [`put`](ServeClient::put), optionally carrying a trace op-ID.
    pub fn put_traced(
        &mut self,
        key: u64,
        seq: u64,
        value: &[u8],
        op_id: Option<u64>,
    ) -> Result<()> {
        match self.request(&Frame::Put { key, seq, value: value.to_vec() }, op_id)? {
            Frame::Ack { status: AckStatus::Ok, .. } => Ok(()),
            _ => Err(RfhError::Io("write unavailable".into())),
        }
    }

    /// One request with retry + failover. An `Unavailable` ack rotates
    /// coordinators and backs off briefly — during a node kill the
    /// route row may be mid-repair.
    fn request(&mut self, frame: &Frame, op_id: Option<u64>) -> Result<Frame> {
        let mut last_err = String::from("no attempt made");
        for attempt in 0..MAX_TRIES {
            match self.try_once(frame, op_id) {
                Ok(Frame::Ack { status: AckStatus::Unavailable, .. }) => {
                    last_err = "ack: unavailable".into();
                    self.rotate();
                }
                Ok(ack) => return Ok(ack),
                Err(e) => {
                    last_err = e.to_string();
                    self.rotate();
                }
            }
            std::thread::sleep(Duration::from_millis(10 << attempt.min(5)));
        }
        Err(RfhError::Io(format!("request failed after {MAX_TRIES} tries: {last_err}")))
    }

    fn try_once(&mut self, frame: &Frame, op_id: Option<u64>) -> io::Result<Frame> {
        if self.conn.is_none() {
            let addr = self.addrs[self.cursor];
            let stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT)?;
            stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
            stream.set_nodelay(true)?;
            self.conn = Some(Conn::new(stream));
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let t0 = Instant::now();
        match conn.roundtrip_traced(frame, op_id) {
            Ok((ack, _)) => {
                if let (Some(id), Some(spans)) = (op_id, self.spans.as_ref()) {
                    spans.record(SpanEvent {
                        op_id: id,
                        role: "client",
                        node: -1,
                        dc: self.dc,
                        kind: frame_kind(frame),
                        queue_us: 0.0,
                        handle_us: t0.elapsed().as_micros() as f64,
                        forward_us: 0.0,
                        status: ack_status(&ack),
                    });
                }
                Ok(ack)
            }
            Err(e) => {
                self.conn = None; // broken or refused: reconnect next try
                Err(e)
            }
        }
    }

    fn rotate(&mut self) {
        self.conn = None;
        self.cursor = (self.cursor + 1) % self.addrs.len();
    }
}

/// One finished operation from a [`PipelinedClient`] window.
#[derive(Debug)]
pub struct CompletedOp {
    /// The request frame as originally submitted.
    pub request: Frame,
    /// The trace op-ID the request carried, if any.
    pub op_id: Option<u64>,
    /// End-to-end latency from *first* submission — retries and
    /// failovers count against the op, never reset the clock.
    pub latency_us: f64,
    /// The coordinator's ack (synthetic `Unavailable` if the op
    /// exhausted its retries without one).
    pub ack: Frame,
}

/// An in-flight frame awaiting its FIFO-ordered ack.
struct InflightOp {
    request: Frame,
    op_id: Option<u64>,
    t0: Instant,
    tries: usize,
}

/// A datacenter-local client that keeps up to `depth` frames in flight
/// on one connection — the pipelined counterpart of [`ServeClient`].
///
/// Replies correlate by order: coordinators release acks in arrival
/// order on both data planes, so the n-th ack answers the n-th
/// outstanding request. Traced frames double-check this by comparing
/// the echoed op-ID. On a broken connection or an `Unavailable` ack the
/// client rotates coordinators and replays the whole window — safe
/// because puts are idempotent (LWW at a fixed `seq`) and gets are
/// reads.
pub struct PipelinedClient {
    addrs: Vec<SocketAddr>,
    cursor: usize,
    conn: Option<Conn<TcpStream>>,
    dc: u32,
    depth: usize,
    inflight: std::collections::VecDeque<InflightOp>,
    spans: Option<Arc<SpanLog>>,
}

impl PipelinedClient {
    /// A pipelined client homed in `dc` with a window of `depth`
    /// outstanding frames. `offset` staggers the first coordinator.
    pub fn new(nodes: &[NodeInfo], dc: u32, offset: usize, depth: usize) -> Result<Self> {
        let addrs: Vec<SocketAddr> = nodes.iter().filter(|n| n.dc == dc).map(|n| n.addr).collect();
        if addrs.is_empty() {
            return Err(RfhError::Topology(format!("no nodes in datacenter {dc}")));
        }
        if depth == 0 {
            return Err(RfhError::InvalidConfig {
                parameter: "pipeline",
                reason: "window depth must be at least 1".into(),
            });
        }
        let cursor = offset % addrs.len();
        Ok(PipelinedClient {
            addrs,
            cursor,
            conn: None,
            dc,
            depth,
            inflight: std::collections::VecDeque::new(),
            spans: None,
        })
    }

    /// Record client-side spans for traced operations into `spans`.
    pub fn set_span_log(&mut self, spans: Arc<SpanLog>) {
        self.spans = Some(spans);
    }

    /// Submit one request. When the window is already `depth` deep, the
    /// oldest op is first driven to completion and returned.
    pub fn submit(&mut self, request: Frame, op_id: Option<u64>) -> Result<Option<CompletedOp>> {
        let done = if self.inflight.len() >= self.depth { Some(self.read_one()?) } else { None };
        let op = InflightOp { request, op_id, t0: Instant::now(), tries: 0 };
        self.send_op(&op)?;
        self.inflight.push_back(op);
        Ok(done)
    }

    /// Drive every outstanding op to completion, in order.
    pub fn drain(&mut self) -> Result<Vec<CompletedOp>> {
        let mut done = Vec::with_capacity(self.inflight.len());
        while !self.inflight.is_empty() {
            done.push(self.read_one()?);
        }
        Ok(done)
    }

    /// Send one frame, (re)connecting and replaying the window first if
    /// the connection is down.
    fn send_op(&mut self, op: &InflightOp) -> Result<()> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        if conn.send_traced(&op.request, op.op_id).is_err() {
            // Broken pipe: replay the window on the next coordinator,
            // then send this frame behind it.
            self.rotate_and_replay()?;
            let conn = self.conn.as_mut().expect("reconnected");
            conn.send_traced(&op.request, op.op_id)
                .map_err(|e| RfhError::Io(format!("pipelined send: {e}")))?;
        }
        Ok(())
    }

    /// Complete the window's oldest op: read its ack, retrying through
    /// failover until it resolves or runs out of attempts.
    fn read_one(&mut self) -> Result<CompletedOp> {
        loop {
            let received = match self.conn.as_mut() {
                Some(conn) => conn.recv_envelope(),
                None => {
                    self.rotate_and_replay()?;
                    continue;
                }
            };
            let front = self.inflight.front().expect("read_one needs an inflight op");
            match received {
                Ok(Some((ack @ Frame::Ack { .. }, echoed))) if echoed == front.op_id => {
                    if matches!(ack, Frame::Ack { status: AckStatus::Unavailable, .. })
                        && front.tries < MAX_TRIES
                    {
                        // The coordinator refused (route mid-repair,
                        // dying node). Back off, rotate, replay — the
                        // op keeps its place at the window's front.
                        let tries = front.tries;
                        std::thread::sleep(Duration::from_millis(10 << tries.min(5)));
                        self.bump_tries();
                        self.rotate_and_replay()?;
                        continue;
                    }
                    let op = self.inflight.pop_front().expect("front just inspected");
                    return Ok(self.finish(op, ack));
                }
                // Wrong op-ID echo, a non-ack frame, clean EOF, or an
                // I/O error: the connection is unusable as-is.
                Ok(_) | Err(_) => {
                    if front.tries >= MAX_TRIES {
                        let op = self.inflight.pop_front().expect("front just inspected");
                        let ack = Frame::Ack {
                            status: AckStatus::Unavailable,
                            seq: 0,
                            value: Vec::new(),
                        };
                        return Ok(self.finish(op, ack));
                    }
                    let tries = front.tries;
                    std::thread::sleep(Duration::from_millis(10 << tries.min(5)));
                    self.bump_tries();
                    self.rotate_and_replay()?;
                }
            }
        }
    }

    fn finish(&mut self, op: InflightOp, ack: Frame) -> CompletedOp {
        let latency_us = op.t0.elapsed().as_micros() as f64;
        if let (Some(id), Some(spans)) = (op.op_id, self.spans.as_ref()) {
            spans.record(SpanEvent {
                op_id: id,
                role: "client",
                node: -1,
                dc: self.dc,
                kind: frame_kind(&op.request),
                queue_us: 0.0,
                handle_us: latency_us,
                forward_us: 0.0,
                status: ack_status(&ack),
            });
        }
        CompletedOp { request: op.request, op_id: op.op_id, latency_us, ack }
    }

    /// Every rotation burns one attempt for every op it replays: a
    /// wedged datacenter cannot spin the window forever.
    fn bump_tries(&mut self) {
        for op in &mut self.inflight {
            op.tries += 1;
        }
    }

    /// Drop the connection, advance to the next coordinator, reconnect,
    /// and resend the whole in-flight window in order.
    fn rotate_and_replay(&mut self) -> Result<()> {
        self.conn = None;
        self.cursor = (self.cursor + 1) % self.addrs.len();
        self.reconnect()?;
        let batch: Vec<(Frame, Option<u64>)> =
            self.inflight.iter().map(|op| (op.request.clone(), op.op_id)).collect();
        if batch.is_empty() {
            return Ok(());
        }
        let conn = self.conn.as_mut().expect("reconnected");
        conn.send_batch(&batch).map_err(|e| RfhError::Io(format!("pipeline replay: {e}")))
    }

    /// Connect to the current coordinator, walking the ring once before
    /// giving up — every local node may be mid-restart at once.
    fn reconnect(&mut self) -> Result<()> {
        let mut last = String::new();
        for _ in 0..self.addrs.len().max(1) {
            let addr = self.addrs[self.cursor];
            match TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(CLIENT_TIMEOUT))
                        .and_then(|()| stream.set_nodelay(true))
                        .map_err(|e| RfhError::Io(format!("socket opts: {e}")))?;
                    self.conn = Some(Conn::new(stream));
                    return Ok(());
                }
                Err(e) => {
                    last = e.to_string();
                    self.cursor = (self.cursor + 1) % self.addrs.len();
                }
            }
        }
        Err(RfhError::Io(format!("no coordinator reachable in dc {}: {last}", self.dc)))
    }
}

/// Span label for the request frame a client issues.
fn frame_kind(frame: &Frame) -> &'static str {
    match frame {
        Frame::Get { .. } => "get",
        Frame::Put { .. } => "put",
        _ => "other",
    }
}

/// Span label for the ack a client received.
fn ack_status(ack: &Frame) -> &'static str {
    match ack {
        Frame::Ack { status: AckStatus::Ok, .. } => "ok",
        Frame::Ack { status: AckStatus::NotFound, .. } => "not_found",
        _ => "unavailable",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_file_roundtrip() {
        let text = "0 0 127.0.0.1:4000\n7 3 127.0.0.1:4007\n\n";
        let nodes = ServeClient::parse_addr_file(text).unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[1].server.0, 7);
        assert_eq!(nodes[1].dc, 3);
        assert_eq!(nodes[1].addr, "127.0.0.1:4007".parse().unwrap());
        assert!(ServeClient::parse_addr_file("nonsense").is_err());
        assert!(ServeClient::new(&nodes, 9, 0).is_err(), "unknown datacenter");
    }
}
