//! A client handle for a running cluster.
//!
//! Each [`ServeClient`] models one front-end in a specific datacenter:
//! it keeps a single connection to a coordinator node *in that
//! datacenter* (requests enter the system locally, as the paper's
//! traffic model assumes) and fails over to the next local node when
//! the connection breaks or the node refuses service.

use crate::cluster::NodeInfo;
use crate::wire::{AckStatus, Conn, Frame};
use rfh_obs::{SpanEvent, SpanLog};
use rfh_types::{Result, RfhError};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Connect + read timeout for client requests. Generous: a request can
/// sit behind a partition transfer holding the lock.
const CLIENT_TIMEOUT: Duration = Duration::from_millis(5_000);

/// Attempts per operation before giving up (each attempt may rotate to
/// a different coordinator).
const MAX_TRIES: usize = 8;

/// The outcome of a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GetOutcome {
    /// The key exists with this version and value.
    Found {
        /// Stored write version.
        seq: u64,
        /// Stored bytes.
        value: Vec<u8>,
    },
    /// No replica holds the key.
    NotFound,
}

/// One datacenter-local client connection with failover.
pub struct ServeClient {
    /// Coordinator candidates, all in the client's datacenter.
    addrs: Vec<SocketAddr>,
    /// Index into `addrs` of the current coordinator.
    cursor: usize,
    conn: Option<Conn<TcpStream>>,
    /// The datacenter this client issues from.
    dc: u32,
    /// Where sampled requests' client-side spans land (self-hosted
    /// runs share the cluster's log, so chains are complete).
    spans: Option<Arc<SpanLog>>,
}

impl ServeClient {
    /// A client homed in `dc`, coordinating through that datacenter's
    /// nodes. `offset` staggers which local node different clients pick
    /// first so load spreads.
    pub fn new(nodes: &[NodeInfo], dc: u32, offset: usize) -> Result<Self> {
        let addrs: Vec<SocketAddr> = nodes.iter().filter(|n| n.dc == dc).map(|n| n.addr).collect();
        if addrs.is_empty() {
            return Err(RfhError::Topology(format!("no nodes in datacenter {dc}")));
        }
        let cursor = offset % addrs.len();
        Ok(ServeClient { addrs, cursor, conn: None, dc, spans: None })
    }

    /// Record client-side spans for traced operations into `spans`.
    pub fn set_span_log(&mut self, spans: Arc<SpanLog>) {
        self.spans = Some(spans);
    }

    /// Parse the address-file format `Cluster::render_addr_file` emits
    /// (`server dc ip:port` per line) back into node infos.
    pub fn parse_addr_file(text: &str) -> Result<Vec<NodeInfo>> {
        let bad = |line: &str| RfhError::Io(format!("bad addr line {line:?}"));
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|line| {
                let mut parts = line.split_whitespace();
                let server: u32 =
                    parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad(line))?;
                let dc: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad(line))?;
                let addr: SocketAddr =
                    parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad(line))?;
                Ok(NodeInfo { server: rfh_types::ServerId::new(server), dc, addr })
            })
            .collect()
    }

    /// The datacenter this client issues from.
    pub fn datacenter(&self) -> u32 {
        self.dc
    }

    /// Read `key`. Retries through coordinator failover; errors only
    /// when every attempt failed.
    pub fn get(&mut self, key: u64) -> Result<GetOutcome> {
        self.get_traced(key, None)
    }

    /// [`get`](ServeClient::get), optionally carrying a trace op-ID.
    /// `None` keeps the wire bytes identical to an untraced get.
    pub fn get_traced(&mut self, key: u64, op_id: Option<u64>) -> Result<GetOutcome> {
        let ack = self.request(&Frame::Get { key }, op_id)?;
        match ack {
            Frame::Ack { status: AckStatus::Ok, seq, value } => {
                Ok(GetOutcome::Found { seq, value })
            }
            Frame::Ack { status: AckStatus::NotFound, .. } => Ok(GetOutcome::NotFound),
            _ => Err(RfhError::Io("read unavailable".into())),
        }
    }

    /// Write `key = value` at version `seq`. Returns only after a
    /// coordinator acknowledged the write on every live replica; safe
    /// to retry with the same `seq` (idempotent last-writer-wins).
    pub fn put(&mut self, key: u64, seq: u64, value: &[u8]) -> Result<()> {
        self.put_traced(key, seq, value, None)
    }

    /// [`put`](ServeClient::put), optionally carrying a trace op-ID.
    pub fn put_traced(
        &mut self,
        key: u64,
        seq: u64,
        value: &[u8],
        op_id: Option<u64>,
    ) -> Result<()> {
        match self.request(&Frame::Put { key, seq, value: value.to_vec() }, op_id)? {
            Frame::Ack { status: AckStatus::Ok, .. } => Ok(()),
            _ => Err(RfhError::Io("write unavailable".into())),
        }
    }

    /// One request with retry + failover. An `Unavailable` ack rotates
    /// coordinators and backs off briefly — during a node kill the
    /// route row may be mid-repair.
    fn request(&mut self, frame: &Frame, op_id: Option<u64>) -> Result<Frame> {
        let mut last_err = String::from("no attempt made");
        for attempt in 0..MAX_TRIES {
            match self.try_once(frame, op_id) {
                Ok(Frame::Ack { status: AckStatus::Unavailable, .. }) => {
                    last_err = "ack: unavailable".into();
                    self.rotate();
                }
                Ok(ack) => return Ok(ack),
                Err(e) => {
                    last_err = e.to_string();
                    self.rotate();
                }
            }
            std::thread::sleep(Duration::from_millis(10 << attempt.min(5)));
        }
        Err(RfhError::Io(format!("request failed after {MAX_TRIES} tries: {last_err}")))
    }

    fn try_once(&mut self, frame: &Frame, op_id: Option<u64>) -> io::Result<Frame> {
        if self.conn.is_none() {
            let addr = self.addrs[self.cursor];
            let stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT)?;
            stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
            stream.set_nodelay(true)?;
            self.conn = Some(Conn::new(stream));
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let t0 = Instant::now();
        match conn.roundtrip_traced(frame, op_id) {
            Ok((ack, _)) => {
                if let (Some(id), Some(spans)) = (op_id, self.spans.as_ref()) {
                    spans.record(SpanEvent {
                        op_id: id,
                        role: "client",
                        node: -1,
                        dc: self.dc,
                        kind: frame_kind(frame),
                        queue_us: 0.0,
                        handle_us: t0.elapsed().as_micros() as f64,
                        forward_us: 0.0,
                        status: ack_status(&ack),
                    });
                }
                Ok(ack)
            }
            Err(e) => {
                self.conn = None; // broken or refused: reconnect next try
                Err(e)
            }
        }
    }

    fn rotate(&mut self) {
        self.conn = None;
        self.cursor = (self.cursor + 1) % self.addrs.len();
    }
}

/// Span label for the request frame a client issues.
fn frame_kind(frame: &Frame) -> &'static str {
    match frame {
        Frame::Get { .. } => "get",
        Frame::Put { .. } => "put",
        _ => "other",
    }
}

/// Span label for the ack a client received.
fn ack_status(ack: &Frame) -> &'static str {
    match ack {
        Frame::Ack { status: AckStatus::Ok, .. } => "ok",
        Frame::Ack { status: AckStatus::NotFound, .. } => "not_found",
        _ => "unavailable",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_file_roundtrip() {
        let text = "0 0 127.0.0.1:4000\n7 3 127.0.0.1:4007\n\n";
        let nodes = ServeClient::parse_addr_file(text).unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[1].server.0, 7);
        assert_eq!(nodes[1].dc, 3);
        assert_eq!(nodes[1].addr, "127.0.0.1:4007".parse().unwrap());
        assert!(ServeClient::parse_addr_file("nonsense").is_err());
        assert!(ServeClient::new(&nodes, 9, 0).is_err(), "unknown datacenter");
    }
}
