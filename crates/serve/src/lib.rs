//! # rfh-serve
//!
//! A live key-value serving runtime on the RFH stack: the offline
//! simulator's control plane (ring placement, `TrafficEngine`
//! accounting, the real `RfhPolicy`, fault injection, repair queue,
//! invariant auditor) driving a real cluster of node threads behind
//! loopback TCP listeners.
//!
//! * [`wire`] — the length-prefixed binary protocol
//!   (get/put/forward/ack).
//! * [`store`] — per-node LWW shard maps and the key → partition hash.
//! * [`wal`] — the optional log-structured durable backend: per-shard
//!   segment logs, checkpoints, and torn-tail-truncating recovery.
//! * [`cluster`] — startup, shared state, clean shutdown.
//! * `node` (internal) — listener/handler threads: the data plane.
//! * `control` (internal) — the online RFH loop; its lifetime totals
//!   surface as [`ControlStats`].
//! * [`client`] — datacenter-homed client handle with failover.
//! * [`loadgen`] — closed/open-loop load generation, latency
//!   histograms, and the acked-write verify pass.
//! * [`config`] — cluster and loadgen TOML-subset configs.
//! * [`telemetry`] — server-side phase histograms, the controller's
//!   tick-sample ring, and the `rfh watch` dashboard renderer.
//! * [`http`] — the hand-rolled HTTP/1.0 surface behind
//!   `GET /metrics` and friends, plus the matching client.
//!
//! The live runtime is **not** bit-deterministic — thread scheduling
//! decides how many requests land in each control tick. Everything
//! downstream of the drained traffic matrix is the same deterministic
//! code the offline simulator runs, and the offline simulator itself is
//! untouched by this crate.

#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod config;
mod control;
pub mod http;
pub mod loadgen;
mod node;
mod reactor;
pub mod store;
pub mod telemetry;
pub mod wal;
pub mod wire;

pub use client::{CompletedOp, GetOutcome, PipelinedClient, ServeClient};
pub use cluster::{Cluster, NodeInfo, ServeSummary};
pub use config::{ArrivalMode, ClusterConfig, DataPlane, LoadGenConfig};
pub use control::ControlStats;
pub use loadgen::{run_loadgen, run_loadgen_with, LoadReport};
pub use telemetry::{render_dashboard, TelemetryRing, TickSample};
pub use wal::{FsyncPolicy, PersistenceConfig, StorageSnapshot, StorageStats};
