//! The hand-rolled length-prefixed binary wire protocol.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! ┌──────────────┬─────────┬──────────────────────────────┐
//! │ len: u32 LE  │ tag: u8 │ fields, little-endian ...    │
//! └──────────────┴─────────┴──────────────────────────────┘
//! ```
//!
//! `len` counts the body (tag + fields). Variable-length values are
//! always the final field, so their length is implied by the frame
//! length — no inner length word to disagree with the outer one.
//!
//! The protocol is deliberately tiny: clients speak [`Frame::Get`] /
//! [`Frame::Put`], nodes forward to replica peers with
//! [`Frame::ForwardGet`] / [`Frame::ForwardPut`] (tagged with the
//! requester's datacenter so traffic attribution survives the hop), and
//! every request is answered by exactly one [`Frame::Ack`].
//!
//! # Traced frames
//!
//! A sampled request carries an optional **op-ID** for span tracing:
//! the tag byte's high bit ([`TRACE_BIT`]) signals that a `u64 LE`
//! op-ID follows the tag, before the frame's normal fields. Coordinators
//! copy the ID onto forwards and every hop echoes it on its ack, so the
//! whole causal chain shares one ID. An untraced frame
//! (`op_id = None`) encodes byte-for-byte as it always has — the
//! version gate that keeps sampling-off runs bit-identical.

use std::io::{self, Read, Write};

/// Upper bound on the body of a single frame. Larger length prefixes
/// are rejected before any allocation, so a corrupt or hostile peer
/// cannot make a node allocate unbounded memory.
pub const MAX_FRAME: u32 = 1 << 20;

/// How a request ended, carried inside [`Frame::Ack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// The operation succeeded (for gets: key found).
    Ok,
    /// The key does not exist on any reachable replica.
    NotFound,
    /// The operation could not be completed now (dead replicas,
    /// mid-transfer state); the client should retry.
    Unavailable,
}

impl AckStatus {
    /// The status's wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            AckStatus::Ok => 0,
            AckStatus::NotFound => 1,
            AckStatus::Unavailable => 2,
        }
    }

    /// Parse a wire status byte; anything but 0–2 is a protocol error.
    pub fn from_byte(b: u8) -> io::Result<Self> {
        match b {
            0 => Ok(AckStatus::Ok),
            1 => Ok(AckStatus::NotFound),
            2 => Ok(AckStatus::Unavailable),
            _ => Err(bad(format!("unknown ack status {b}"))),
        }
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → coordinator: read `key`.
    Get {
        /// The key to read.
        key: u64,
    },
    /// Client → coordinator: write `value` under `key`. `seq` is the
    /// client-chosen version; replicas keep the highest seq per key, so
    /// retrying the same put is idempotent.
    Put {
        /// The key to write.
        key: u64,
        /// Monotonic write version (last-writer-wins).
        seq: u64,
        /// The value bytes (final field; length implied by the frame).
        value: Vec<u8>,
    },
    /// Coordinator → replica: serve a get from the local shard.
    /// `origin_dc` is the requesting client's datacenter, carried so a
    /// forwarded hop stays attributed to the requester in `q_ijt`.
    ForwardGet {
        /// The key to read.
        key: u64,
        /// Datacenter the client request entered at.
        origin_dc: u32,
    },
    /// Coordinator → replica: apply a put to the local shard.
    ForwardPut {
        /// The key to write.
        key: u64,
        /// Write version (last-writer-wins).
        seq: u64,
        /// Datacenter the client request entered at.
        origin_dc: u32,
        /// The value bytes (final field; length implied by the frame).
        value: Vec<u8>,
    },
    /// The single response to any request. For gets, `seq`/`value`
    /// carry the stored version; for puts they echo the written seq
    /// with an empty value.
    Ack {
        /// How the request ended.
        status: AckStatus,
        /// Stored / written version.
        seq: u64,
        /// Value bytes for get responses (final field).
        value: Vec<u8>,
    },
}

const TAG_GET: u8 = 1;
const TAG_PUT: u8 = 2;
const TAG_FWD_GET: u8 = 3;
const TAG_FWD_PUT: u8 = 4;
const TAG_ACK: u8 = 5;

/// High bit of the tag byte: set when a `u64 LE` op-ID follows the tag.
pub const TRACE_BIT: u8 = 0x80;

fn bad(reason: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason)
}

impl Frame {
    /// Encode into a complete on-wire frame, length prefix included.
    /// Identical to [`Frame::encode_traced`] with no op-ID.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_traced(None)
    }

    /// Encode, stamping `op_id` (when sampled) after the tag byte with
    /// [`TRACE_BIT`] set. `None` produces the exact bytes
    /// [`Frame::encode`] always has.
    pub fn encode_traced(&self, op_id: Option<u64>) -> Vec<u8> {
        let mut body = Vec::with_capacity(40);
        let trace = if op_id.is_some() { TRACE_BIT } else { 0 };
        match self {
            Frame::Get { key } => {
                body.push(TAG_GET | trace);
                push_op_id(&mut body, op_id);
                body.extend_from_slice(&key.to_le_bytes());
            }
            Frame::Put { key, seq, value } => {
                body.push(TAG_PUT | trace);
                push_op_id(&mut body, op_id);
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(value);
            }
            Frame::ForwardGet { key, origin_dc } => {
                body.push(TAG_FWD_GET | trace);
                push_op_id(&mut body, op_id);
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&origin_dc.to_le_bytes());
            }
            Frame::ForwardPut { key, seq, origin_dc, value } => {
                body.push(TAG_FWD_PUT | trace);
                push_op_id(&mut body, op_id);
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(&origin_dc.to_le_bytes());
                body.extend_from_slice(value);
            }
            Frame::Ack { status, seq, value } => {
                body.push(TAG_ACK | trace);
                push_op_id(&mut body, op_id);
                body.push(status.to_byte());
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(value);
            }
        }
        debug_assert!(body.len() <= MAX_FRAME as usize);
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Byte length of the frame's variable-length field (0 when it has
    /// none) — a sizing hint for encode buffers.
    pub fn value_len(&self) -> usize {
        match self {
            Frame::Get { .. } | Frame::ForwardGet { .. } => 0,
            Frame::Put { value, .. }
            | Frame::ForwardPut { value, .. }
            | Frame::Ack { value, .. } => value.len(),
        }
    }

    /// Decode a frame body (everything after the length prefix),
    /// discarding any op-ID. Identical to [`Frame::decode_envelope`]
    /// for untraced frames.
    pub fn decode_body(body: &[u8]) -> io::Result<Frame> {
        Ok(Frame::decode_envelope(body)?.0)
    }

    /// Decode a frame body along with its optional op-ID.
    pub fn decode_envelope(body: &[u8]) -> io::Result<(Frame, Option<u64>)> {
        let mut r = Cursor { buf: body, pos: 0 };
        let raw = r.u8()?;
        let op_id = if raw & TRACE_BIT != 0 { Some(r.u64()?) } else { None };
        let tag = raw & !TRACE_BIT;
        let frame = match tag {
            TAG_GET => Frame::Get { key: r.u64()? },
            TAG_PUT => Frame::Put { key: r.u64()?, seq: r.u64()?, value: r.rest().to_vec() },
            TAG_FWD_GET => Frame::ForwardGet { key: r.u64()?, origin_dc: r.u32()? },
            TAG_FWD_PUT => Frame::ForwardPut {
                key: r.u64()?,
                seq: r.u64()?,
                origin_dc: r.u32()?,
                value: r.rest().to_vec(),
            },
            TAG_ACK => Frame::Ack {
                status: AckStatus::from_byte(r.u8()?)?,
                seq: r.u64()?,
                value: r.rest().to_vec(),
            },
            t => return Err(bad(format!("unknown frame tag {t}"))),
        };
        if !r.done() {
            return Err(bad(format!("{} trailing bytes after frame", body.len() - r.pos)));
        }
        Ok((frame, op_id))
    }
}

fn push_op_id(body: &mut Vec<u8>, op_id: Option<u64>) {
    if let Some(id) = op_id {
        body.extend_from_slice(&id.to_le_bytes());
    }
}

/// Fixed-field reader over a frame body. Variable-length `value`
/// fields use [`Cursor::rest`], which consumes everything remaining.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(bad(format!(
                "truncated frame: wanted {n} bytes at offset {}, body is {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// A framed, buffered connection over any byte stream (in practice a
/// `TcpStream`).
///
/// Reading accumulates into an internal buffer, so a read timeout in
/// the middle of a frame loses nothing: the partial bytes stay
/// buffered and the next [`recv`](Conn::recv) call resumes where the
/// interrupted one stopped.
pub struct Conn<S> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: Read + Write> Conn<S> {
    /// Wrap a byte stream.
    pub fn new(stream: S) -> Self {
        Conn { stream, buf: Vec::new() }
    }

    /// The underlying stream (to set timeouts, peer addresses, ...).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Write one complete frame.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.stream.write_all(&frame.encode())
    }

    /// Write one complete frame, stamped with `op_id` when sampled.
    pub fn send_traced(&mut self, frame: &Frame, op_id: Option<u64>) -> io::Result<()> {
        self.stream.write_all(&frame.encode_traced(op_id))
    }

    /// Write a batch of frames as one contiguous byte run (a pipelined
    /// submission window). Encodes every frame first, then issues a
    /// single `write_all`, so the kernel sees one large write instead
    /// of one syscall per request. Each element is byte-identical to
    /// what [`Conn::send_traced`] would have produced for it.
    pub fn send_batch(&mut self, frames: &[(Frame, Option<u64>)]) -> io::Result<()> {
        let mut wire = Vec::with_capacity(frames.iter().map(|(f, _)| 24 + f.value_len()).sum());
        for (frame, op_id) in frames {
            wire.extend_from_slice(&frame.encode_traced(*op_id));
        }
        self.stream.write_all(&wire)
    }

    /// Read one complete frame, discarding any op-ID. Returns
    /// `Ok(None)` on clean EOF at a frame boundary; EOF mid-frame is an
    /// error. `WouldBlock` / `TimedOut` bubble up with the partial
    /// frame still buffered.
    pub fn recv(&mut self) -> io::Result<Option<Frame>> {
        Ok(self.recv_envelope()?.map(|(frame, _)| frame))
    }

    /// Read one complete frame along with its optional op-ID. Same EOF
    /// and timeout semantics as [`Conn::recv`].
    pub fn recv_envelope(&mut self) -> io::Result<Option<(Frame, Option<u64>)>> {
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes(self.buf[..4].try_into().expect("length checked"));
                if len > MAX_FRAME {
                    return Err(bad(format!("frame of {len} bytes exceeds MAX_FRAME")));
                }
                let total = 4 + len as usize;
                if self.buf.len() >= total {
                    let envelope = Frame::decode_envelope(&self.buf[4..total])?;
                    self.buf.drain(..total);
                    return Ok(Some(envelope));
                }
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("EOF with {} buffered bytes mid-frame", self.buf.len()),
                    ));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Send a request and block for its single [`Frame::Ack`].
    pub fn roundtrip(&mut self, frame: &Frame) -> io::Result<Frame> {
        self.roundtrip_traced(frame, None).map(|(ack, _)| ack)
    }

    /// Send a request stamped with `op_id` and block for its single
    /// [`Frame::Ack`], returning the op-ID the ack echoed back.
    pub fn roundtrip_traced(
        &mut self,
        frame: &Frame,
        op_id: Option<u64>,
    ) -> io::Result<(Frame, Option<u64>)> {
        self.send_traced(frame, op_id)?;
        match self.recv_envelope()? {
            Some((ack @ Frame::Ack { .. }, echoed)) => Ok((ack, echoed)),
            Some((other, _)) => Err(bad(format!("expected an ack, got {other:?}"))),
            None => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed before ack")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Get { key: 7 },
            Frame::Put { key: 1, seq: 2, value: vec![9, 8, 7] },
            Frame::ForwardGet { key: u64::MAX, origin_dc: 3 },
            Frame::ForwardPut { key: 0, seq: 1, origin_dc: 9, value: Vec::new() },
            Frame::Ack { status: AckStatus::NotFound, seq: 0, value: Vec::new() },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for f in frames() {
            let bytes = f.encode();
            let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
            assert_eq!(bytes.len(), 4 + len);
            assert_eq!(Frame::decode_body(&bytes[4..]).unwrap(), f);
        }
    }

    #[test]
    fn untraced_encoding_is_byte_identical_to_encode() {
        for f in frames() {
            assert_eq!(f.encode_traced(None), f.encode(), "{f:?}");
        }
    }

    #[test]
    fn traced_envelope_roundtrips_and_costs_eight_bytes() {
        for f in frames() {
            let plain = f.encode();
            let traced = f.encode_traced(Some(0xDEAD_BEEF_CAFE_F00D));
            assert_eq!(traced.len(), plain.len() + 8, "{f:?}");
            assert_ne!(traced[4], plain[4], "trace bit set on the tag");
            let (decoded, op_id) = Frame::decode_envelope(&traced[4..]).unwrap();
            assert_eq!(decoded, f);
            assert_eq!(op_id, Some(0xDEAD_BEEF_CAFE_F00D));
            // decode_body tolerates traced frames, dropping the ID.
            assert_eq!(Frame::decode_body(&traced[4..]).unwrap(), f);
        }
    }

    #[test]
    fn truncation_inside_the_op_id_is_rejected() {
        let traced = Frame::Get { key: 7 }.encode_traced(Some(42));
        // Cut the body down to tag + half the op-id.
        let err = Frame::decode_envelope(&traced[4..9]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn conn_reassembles_split_frames() {
        // Feed two frames byte-by-byte through an in-memory stream.
        let a = Frame::Put { key: 5, seq: 6, value: vec![1, 2, 3, 4] };
        let b = Frame::Ack { status: AckStatus::Ok, seq: 6, value: Vec::new() };
        let mut wire = a.encode();
        wire.extend_from_slice(&b.encode());
        let mut conn = Conn::new(OneByteReader { data: wire, pos: 0 });
        assert_eq!(conn.recv().unwrap(), Some(a));
        assert_eq!(conn.recv().unwrap(), Some(b));
        assert_eq!(conn.recv().unwrap(), None, "clean EOF at frame boundary");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut wire = Frame::Get { key: 3 }.encode();
        wire.truncate(wire.len() - 1);
        let mut conn = Conn::new(OneByteReader { data: wire, pos: 0 });
        let err = conn.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = (MAX_FRAME + 1).to_le_bytes().to_vec();
        wire.push(TAG_GET);
        let mut conn = Conn::new(OneByteReader { data: wire, pos: 0 });
        let err = conn.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("MAX_FRAME"), "{err}");
    }

    /// Reader that returns one byte per call — the worst-case stream
    /// fragmentation — and ignores writes.
    struct OneByteReader {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for OneByteReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    impl Write for OneByteReader {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
}
