//! The hand-rolled length-prefixed binary wire protocol.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! ┌──────────────┬─────────┬──────────────────────────────┐
//! │ len: u32 LE  │ tag: u8 │ fields, little-endian ...    │
//! └──────────────┴─────────┴──────────────────────────────┘
//! ```
//!
//! `len` counts the body (tag + fields). Variable-length values are
//! always the final field, so their length is implied by the frame
//! length — no inner length word to disagree with the outer one.
//!
//! The protocol is deliberately tiny: clients speak [`Frame::Get`] /
//! [`Frame::Put`], nodes forward to replica peers with
//! [`Frame::ForwardGet`] / [`Frame::ForwardPut`] (tagged with the
//! requester's datacenter so traffic attribution survives the hop), and
//! every request is answered by exactly one [`Frame::Ack`].

use std::io::{self, Read, Write};

/// Upper bound on the body of a single frame. Larger length prefixes
/// are rejected before any allocation, so a corrupt or hostile peer
/// cannot make a node allocate unbounded memory.
pub const MAX_FRAME: u32 = 1 << 20;

/// How a request ended, carried inside [`Frame::Ack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// The operation succeeded (for gets: key found).
    Ok,
    /// The key does not exist on any reachable replica.
    NotFound,
    /// The operation could not be completed now (dead replicas,
    /// mid-transfer state); the client should retry.
    Unavailable,
}

impl AckStatus {
    /// The status's wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            AckStatus::Ok => 0,
            AckStatus::NotFound => 1,
            AckStatus::Unavailable => 2,
        }
    }

    /// Parse a wire status byte; anything but 0–2 is a protocol error.
    pub fn from_byte(b: u8) -> io::Result<Self> {
        match b {
            0 => Ok(AckStatus::Ok),
            1 => Ok(AckStatus::NotFound),
            2 => Ok(AckStatus::Unavailable),
            _ => Err(bad(format!("unknown ack status {b}"))),
        }
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → coordinator: read `key`.
    Get {
        /// The key to read.
        key: u64,
    },
    /// Client → coordinator: write `value` under `key`. `seq` is the
    /// client-chosen version; replicas keep the highest seq per key, so
    /// retrying the same put is idempotent.
    Put {
        /// The key to write.
        key: u64,
        /// Monotonic write version (last-writer-wins).
        seq: u64,
        /// The value bytes (final field; length implied by the frame).
        value: Vec<u8>,
    },
    /// Coordinator → replica: serve a get from the local shard.
    /// `origin_dc` is the requesting client's datacenter, carried so a
    /// forwarded hop stays attributed to the requester in `q_ijt`.
    ForwardGet {
        /// The key to read.
        key: u64,
        /// Datacenter the client request entered at.
        origin_dc: u32,
    },
    /// Coordinator → replica: apply a put to the local shard.
    ForwardPut {
        /// The key to write.
        key: u64,
        /// Write version (last-writer-wins).
        seq: u64,
        /// Datacenter the client request entered at.
        origin_dc: u32,
        /// The value bytes (final field; length implied by the frame).
        value: Vec<u8>,
    },
    /// The single response to any request. For gets, `seq`/`value`
    /// carry the stored version; for puts they echo the written seq
    /// with an empty value.
    Ack {
        /// How the request ended.
        status: AckStatus,
        /// Stored / written version.
        seq: u64,
        /// Value bytes for get responses (final field).
        value: Vec<u8>,
    },
}

const TAG_GET: u8 = 1;
const TAG_PUT: u8 = 2;
const TAG_FWD_GET: u8 = 3;
const TAG_FWD_PUT: u8 = 4;
const TAG_ACK: u8 = 5;

fn bad(reason: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason)
}

impl Frame {
    /// Encode into a complete on-wire frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        match self {
            Frame::Get { key } => {
                body.push(TAG_GET);
                body.extend_from_slice(&key.to_le_bytes());
            }
            Frame::Put { key, seq, value } => {
                body.push(TAG_PUT);
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(value);
            }
            Frame::ForwardGet { key, origin_dc } => {
                body.push(TAG_FWD_GET);
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&origin_dc.to_le_bytes());
            }
            Frame::ForwardPut { key, seq, origin_dc, value } => {
                body.push(TAG_FWD_PUT);
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(&origin_dc.to_le_bytes());
                body.extend_from_slice(value);
            }
            Frame::Ack { status, seq, value } => {
                body.push(TAG_ACK);
                body.push(status.to_byte());
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(value);
            }
        }
        debug_assert!(body.len() <= MAX_FRAME as usize);
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode a frame body (everything after the length prefix).
    pub fn decode_body(body: &[u8]) -> io::Result<Frame> {
        let mut r = Cursor { buf: body, pos: 0 };
        let tag = r.u8()?;
        let frame = match tag {
            TAG_GET => Frame::Get { key: r.u64()? },
            TAG_PUT => Frame::Put { key: r.u64()?, seq: r.u64()?, value: r.rest().to_vec() },
            TAG_FWD_GET => Frame::ForwardGet { key: r.u64()?, origin_dc: r.u32()? },
            TAG_FWD_PUT => Frame::ForwardPut {
                key: r.u64()?,
                seq: r.u64()?,
                origin_dc: r.u32()?,
                value: r.rest().to_vec(),
            },
            TAG_ACK => Frame::Ack {
                status: AckStatus::from_byte(r.u8()?)?,
                seq: r.u64()?,
                value: r.rest().to_vec(),
            },
            t => return Err(bad(format!("unknown frame tag {t}"))),
        };
        if !r.done() {
            return Err(bad(format!("{} trailing bytes after frame", body.len() - r.pos)));
        }
        Ok(frame)
    }
}

/// Fixed-field reader over a frame body. Variable-length `value`
/// fields use [`Cursor::rest`], which consumes everything remaining.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(bad(format!(
                "truncated frame: wanted {n} bytes at offset {}, body is {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// A framed, buffered connection over any byte stream (in practice a
/// `TcpStream`).
///
/// Reading accumulates into an internal buffer, so a read timeout in
/// the middle of a frame loses nothing: the partial bytes stay
/// buffered and the next [`recv`](Conn::recv) call resumes where the
/// interrupted one stopped.
pub struct Conn<S> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: Read + Write> Conn<S> {
    /// Wrap a byte stream.
    pub fn new(stream: S) -> Self {
        Conn { stream, buf: Vec::new() }
    }

    /// The underlying stream (to set timeouts, peer addresses, ...).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Write one complete frame.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.stream.write_all(&frame.encode())
    }

    /// Read one complete frame. Returns `Ok(None)` on clean EOF at a
    /// frame boundary; EOF mid-frame is an error. `WouldBlock` /
    /// `TimedOut` bubble up with the partial frame still buffered.
    pub fn recv(&mut self) -> io::Result<Option<Frame>> {
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes(self.buf[..4].try_into().expect("length checked"));
                if len > MAX_FRAME {
                    return Err(bad(format!("frame of {len} bytes exceeds MAX_FRAME")));
                }
                let total = 4 + len as usize;
                if self.buf.len() >= total {
                    let frame = Frame::decode_body(&self.buf[4..total])?;
                    self.buf.drain(..total);
                    return Ok(Some(frame));
                }
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("EOF with {} buffered bytes mid-frame", self.buf.len()),
                    ));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Send a request and block for its single [`Frame::Ack`].
    pub fn roundtrip(&mut self, frame: &Frame) -> io::Result<Frame> {
        self.send(frame)?;
        match self.recv()? {
            Some(ack @ Frame::Ack { .. }) => Ok(ack),
            Some(other) => Err(bad(format!("expected an ack, got {other:?}"))),
            None => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed before ack")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Get { key: 7 },
            Frame::Put { key: 1, seq: 2, value: vec![9, 8, 7] },
            Frame::ForwardGet { key: u64::MAX, origin_dc: 3 },
            Frame::ForwardPut { key: 0, seq: 1, origin_dc: 9, value: Vec::new() },
            Frame::Ack { status: AckStatus::NotFound, seq: 0, value: Vec::new() },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for f in frames() {
            let bytes = f.encode();
            let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
            assert_eq!(bytes.len(), 4 + len);
            assert_eq!(Frame::decode_body(&bytes[4..]).unwrap(), f);
        }
    }

    #[test]
    fn conn_reassembles_split_frames() {
        // Feed two frames byte-by-byte through an in-memory stream.
        let a = Frame::Put { key: 5, seq: 6, value: vec![1, 2, 3, 4] };
        let b = Frame::Ack { status: AckStatus::Ok, seq: 6, value: Vec::new() };
        let mut wire = a.encode();
        wire.extend_from_slice(&b.encode());
        let mut conn = Conn::new(OneByteReader { data: wire, pos: 0 });
        assert_eq!(conn.recv().unwrap(), Some(a));
        assert_eq!(conn.recv().unwrap(), Some(b));
        assert_eq!(conn.recv().unwrap(), None, "clean EOF at frame boundary");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut wire = Frame::Get { key: 3 }.encode();
        wire.truncate(wire.len() - 1);
        let mut conn = Conn::new(OneByteReader { data: wire, pos: 0 });
        let err = conn.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = (MAX_FRAME + 1).to_le_bytes().to_vec();
        wire.push(TAG_GET);
        let mut conn = Conn::new(OneByteReader { data: wire, pos: 0 });
        let err = conn.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("MAX_FRAME"), "{err}");
    }

    /// Reader that returns one byte per call — the worst-case stream
    /// fragmentation — and ignores writes.
    struct OneByteReader {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for OneByteReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    impl Write for OneByteReader {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
}
