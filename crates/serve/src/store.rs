//! Per-node key-value shards with last-writer-wins versions.
//!
//! Every node owns one [`NodeStore`]. Keys map to partitions by hash
//! ([`partition_of`]) — the same `PartitionId` space the ring, the
//! replica manager and the traffic equations use — so "node X holds
//! partition p" means X's store serves every key with
//! `partition_of(key) == p`.
//!
//! Values carry a client-chosen `seq`; a write applies only if its seq
//! is higher than the stored one, making put retries idempotent and
//! replica merges (transfers, archive restores) order-independent.
//!
//! A store built with [`NodeStore::durable`] additionally owns a
//! [`NodeWal`]: every *applied* write (put or merge) is appended to the
//! log before the call returns, so by the time a coordinator acks — it
//! acks only after every live replica's put returned — the write is in
//! the OS page cache of every live replica and survives a process
//! `SIGKILL`. Lock order is store map → (released) → WAL shard; the
//! checkpoint path nests shard → map, never map → shard, so the two
//! cannot deadlock.

use crate::wal::{NodeWal, PersistenceConfig, StorageStats};
use rfh_ring::splitmix64;
use rfh_types::{PartitionId, Result as RfhResult, RfhError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The partition a key belongs to. Hash-distributes the key space over
/// `partitions` buckets.
#[inline]
pub fn partition_of(key: u64, partitions: u32) -> PartitionId {
    PartitionId::new((splitmix64(key) % partitions as u64) as u32)
}

/// One stored version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Versioned {
    /// Write version (last-writer-wins).
    pub seq: u64,
    /// The value bytes.
    pub value: Vec<u8>,
}

/// One node's shard map, internally synchronized; optionally backed by
/// a write-ahead log (see the module docs for the durability contract).
#[derive(Debug, Default)]
pub struct NodeStore {
    map: Mutex<HashMap<u64, Versioned>>,
    wal: Option<NodeWal>,
}

impl NodeStore {
    /// An empty in-memory store (no durability).
    pub fn new() -> Self {
        NodeStore::default()
    }

    /// Open a durable store: recovers the node's WAL under
    /// `<cfg.dir>/node-<node>/` and seeds the map with the replayed
    /// entries (exactly the durable prefix of each shard log).
    pub fn durable(cfg: &PersistenceConfig, node: usize) -> RfhResult<NodeStore> {
        let dir = std::path::Path::new(&cfg.dir).join(format!("node-{node}"));
        let (wal, recovered) = NodeWal::open(cfg, dir)
            .map_err(|e| RfhError::Io(format!("open node {node} wal: {e}")))?;
        let map = recovered.into_iter().collect();
        Ok(NodeStore { map: Mutex::new(map), wal: Some(wal) })
    }

    /// The storage counters of the durable backend, `None` for
    /// in-memory stores.
    pub fn storage(&self) -> Option<&Arc<StorageStats>> {
        self.wal.as_ref().map(|w| w.stats())
    }

    /// Read the current version of `key`.
    pub fn get(&self, key: u64) -> Option<Versioned> {
        self.map.lock().expect("store lock").get(&key).cloned()
    }

    /// Apply a write if `seq` beats the stored version. Returns whether
    /// the store now holds `seq` (so an equal-seq retry reports true).
    /// On a durable store an applied write is logged before returning —
    /// this is what makes the coordinator's ack mean "durable on every
    /// live replica". A write the LWW check rejects changes nothing and
    /// is not logged.
    pub fn put(&self, key: u64, seq: u64, value: &[u8]) -> bool {
        let (holds, applied) = {
            let mut map = self.map.lock().expect("store lock");
            match map.get(&key) {
                Some(v) if v.seq > seq => (false, false),
                Some(v) if v.seq == seq => (true, false),
                _ => {
                    map.insert(key, Versioned { seq, value: value.to_vec() });
                    (true, true)
                }
            }
        };
        if applied {
            self.log_write(key, seq, value);
        }
        holds
    }

    /// Append one applied write to the WAL (no-op for memory stores).
    /// Log replay is LWW-merged, so concurrent appends need no ordering
    /// beyond "before the ack". A log that cannot be written would turn
    /// acks into lies, so WAL I/O errors are fail-stop.
    fn log_write(&self, key: u64, seq: u64, value: &[u8]) {
        let Some(wal) = &self.wal else {
            return;
        };
        wal.log(key, seq, value, |shard| self.snapshot_shard(wal, shard))
            .expect("wal append failed; cannot guarantee acked durability");
    }

    /// Checkpoint fodder: every entry of one WAL range shard. Called
    /// under that shard's lock, so no append to it can interleave.
    fn snapshot_shard(&self, wal: &NodeWal, shard: usize) -> Vec<(u64, Versioned)> {
        let map = self.map.lock().expect("store lock");
        map.iter()
            .filter(|(&k, _)| wal.shard_of(k) == shard)
            .map(|(&k, v)| (k, v.clone()))
            .collect()
    }

    /// Every entry the store holds (reconcile pass after a restart).
    pub fn snapshot_all(&self) -> Vec<(u64, Versioned)> {
        let map = self.map.lock().expect("store lock");
        map.iter().map(|(&k, v)| (k, v.clone())).collect()
    }

    /// Simulate a process restart: drop all in-memory state and replay
    /// the WAL from disk, keeping exactly the durable prefix. Returns
    /// the number of records replayed — `0` for an in-memory store,
    /// which simply loses everything (that *is* its restart semantics).
    /// The caller must keep the node quiescent (the controller restarts
    /// a node while its `alive` flag is still false, so no route sends
    /// writes here).
    pub fn restart_from_disk(&self) -> RfhResult<u64> {
        match &self.wal {
            None => {
                self.map.lock().expect("store lock").clear();
                Ok(0)
            }
            Some(wal) => {
                let (recovered, replayed) =
                    wal.replay_from_disk().map_err(|e| RfhError::Io(format!("wal replay: {e}")))?;
                let mut map = self.map.lock().expect("store lock");
                map.clear();
                map.extend(recovered);
                Ok(replayed)
            }
        }
    }

    /// Number of keys held.
    pub fn len(&self) -> usize {
        self.map.lock().expect("store lock").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All keys of one partition, for transfers.
    pub fn snapshot_partition(&self, p: PartitionId, partitions: u32) -> Vec<(u64, Versioned)> {
        let map = self.map.lock().expect("store lock");
        map.iter()
            .filter(|(&k, _)| partition_of(k, partitions) == p)
            .map(|(&k, v)| (k, v.clone()))
            .collect()
    }

    /// Merge transferred entries (LWW per key). Entries that win are
    /// logged, so a replicated partition is durable on its new host
    /// before the transfer completes; already-held entries are skipped
    /// and cost no log bytes. Returns how many entries were applied —
    /// the reconcile pass uses this to count healed entries.
    pub fn merge(&self, entries: &[(u64, Versioned)]) -> usize {
        let winners: Vec<usize> = {
            let mut map = self.map.lock().expect("store lock");
            entries
                .iter()
                .enumerate()
                .filter(|(_, (k, v))| match map.get(k) {
                    Some(cur) if cur.seq >= v.seq => false,
                    _ => {
                        map.insert(*k, v.clone());
                        true
                    }
                })
                .map(|(i, _)| i)
                .collect()
        };
        let applied = winners.len();
        if self.wal.is_some() {
            for i in winners {
                let (k, v) = &entries[i];
                self.log_write(*k, v.seq, &v.value);
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let p = partition_of(key, 64);
            assert!(p.0 < 64);
            assert_eq!(p, partition_of(key, 64));
        }
        // The hash actually spreads keys.
        let hit: std::collections::HashSet<u32> =
            (0..1000u64).map(|k| partition_of(k, 64).0).collect();
        assert!(hit.len() > 48, "only {} of 64 partitions hit", hit.len());
    }

    #[test]
    fn lww_and_idempotent_retries() {
        let s = NodeStore::new();
        assert!(s.put(1, 5, b"a"));
        assert!(!s.put(1, 4, b"stale"), "older seq must lose");
        assert!(s.put(1, 5, b"a"), "same-seq retry reports success");
        assert!(s.put(1, 6, b"b"));
        assert_eq!(s.get(1).unwrap(), Versioned { seq: 6, value: b"b".to_vec() });
        assert_eq!(s.get(2), None);
    }

    #[test]
    fn snapshot_and_merge_move_partitions() {
        let a = NodeStore::new();
        for key in 0..200u64 {
            a.put(key, 1, &key.to_le_bytes());
        }
        let p = partition_of(7, 16);
        let snap = a.snapshot_partition(p, 16);
        assert!(snap.iter().any(|&(k, _)| k == 7));
        assert!(snap.iter().all(|&(k, _)| partition_of(k, 16) == p));

        let b = NodeStore::new();
        b.put(7, 9, b"newer");
        b.merge(&snap);
        assert_eq!(b.get(7).unwrap().seq, 9, "merge must not clobber newer data");
        let other = snap.iter().find(|&&(k, _)| k != 7).expect("partition has >1 key");
        assert_eq!(b.get(other.0).unwrap(), other.1);
    }

    fn scratch_cfg(tag: &str) -> PersistenceConfig {
        let dir = std::env::temp_dir().join(format!("rfh-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        PersistenceConfig::with_dir(dir.to_string_lossy().into_owned())
    }

    #[test]
    fn durable_store_survives_reopen_and_restart() {
        let cfg = scratch_cfg("reopen");
        {
            let s = NodeStore::durable(&cfg, 0).unwrap();
            for k in 0..50u64 {
                assert!(s.put(k, k + 1, &k.to_le_bytes()));
            }
            s.merge(&[(1000, Versioned { seq: 3, value: b"merged".to_vec() })]);
        }
        // A new store over the same directory replays everything.
        let s = NodeStore::durable(&cfg, 0).unwrap();
        assert_eq!(s.len(), 51);
        assert_eq!(s.get(1000).unwrap().value, b"merged");
        assert_eq!(s.get(7).unwrap().seq, 8);

        // In-process restart: wipe memory, replay the durable prefix.
        s.put(2000, 1, b"late");
        let replayed = s.restart_from_disk().unwrap();
        assert!(replayed >= 52, "replays at least every applied record, got {replayed}");
        assert_eq!(s.len(), 52, "the late write was logged before put returned");
        assert_eq!(s.get(2000).unwrap().value, b"late");
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn memory_store_restart_loses_everything() {
        let s = NodeStore::new();
        s.put(1, 1, b"x");
        assert_eq!(s.restart_from_disk().unwrap(), 0);
        assert!(s.is_empty(), "no wal, no durability — that is the baseline semantics");
        assert!(s.storage().is_none());
    }

    #[test]
    fn rejected_writes_are_not_logged() {
        let cfg = scratch_cfg("reject");
        let s = NodeStore::durable(&cfg, 0).unwrap();
        s.put(5, 9, b"winner");
        s.put(5, 3, b"stale");
        let appended = s.storage().unwrap().snapshot().records_appended;
        assert_eq!(appended, 1, "the stale write changed nothing and cost no log bytes");
        s.restart_from_disk().unwrap();
        assert_eq!(s.get(5).unwrap().seq, 9);
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }
}
