//! Per-node key-value shards with last-writer-wins versions.
//!
//! Every node owns one [`NodeStore`]. Keys map to partitions by hash
//! ([`partition_of`]) — the same `PartitionId` space the ring, the
//! replica manager and the traffic equations use — so "node X holds
//! partition p" means X's store serves every key with
//! `partition_of(key) == p`.
//!
//! Values carry a client-chosen `seq`; a write applies only if its seq
//! is higher than the stored one, making put retries idempotent and
//! replica merges (transfers, archive restores) order-independent.

use rfh_ring::splitmix64;
use rfh_types::PartitionId;
use std::collections::HashMap;
use std::sync::Mutex;

/// The partition a key belongs to. Hash-distributes the key space over
/// `partitions` buckets.
#[inline]
pub fn partition_of(key: u64, partitions: u32) -> PartitionId {
    PartitionId::new((splitmix64(key) % partitions as u64) as u32)
}

/// One stored version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Versioned {
    /// Write version (last-writer-wins).
    pub seq: u64,
    /// The value bytes.
    pub value: Vec<u8>,
}

/// One node's shard map, internally synchronized.
#[derive(Debug, Default)]
pub struct NodeStore {
    map: Mutex<HashMap<u64, Versioned>>,
}

impl NodeStore {
    /// An empty store.
    pub fn new() -> Self {
        NodeStore::default()
    }

    /// Read the current version of `key`.
    pub fn get(&self, key: u64) -> Option<Versioned> {
        self.map.lock().expect("store lock").get(&key).cloned()
    }

    /// Apply a write if `seq` beats the stored version. Returns whether
    /// the store now holds `seq` (so an equal-seq retry reports true).
    pub fn put(&self, key: u64, seq: u64, value: &[u8]) -> bool {
        let mut map = self.map.lock().expect("store lock");
        match map.get(&key) {
            Some(v) if v.seq > seq => false,
            Some(v) if v.seq == seq => true,
            _ => {
                map.insert(key, Versioned { seq, value: value.to_vec() });
                true
            }
        }
    }

    /// Number of keys held.
    pub fn len(&self) -> usize {
        self.map.lock().expect("store lock").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All keys of one partition, for transfers.
    pub fn snapshot_partition(&self, p: PartitionId, partitions: u32) -> Vec<(u64, Versioned)> {
        let map = self.map.lock().expect("store lock");
        map.iter()
            .filter(|(&k, _)| partition_of(k, partitions) == p)
            .map(|(&k, v)| (k, v.clone()))
            .collect()
    }

    /// Merge transferred entries (LWW per key).
    pub fn merge(&self, entries: &[(u64, Versioned)]) {
        let mut map = self.map.lock().expect("store lock");
        for (k, v) in entries {
            match map.get(k) {
                Some(cur) if cur.seq >= v.seq => {}
                _ => {
                    map.insert(*k, v.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let p = partition_of(key, 64);
            assert!(p.0 < 64);
            assert_eq!(p, partition_of(key, 64));
        }
        // The hash actually spreads keys.
        let hit: std::collections::HashSet<u32> =
            (0..1000u64).map(|k| partition_of(k, 64).0).collect();
        assert!(hit.len() > 48, "only {} of 64 partitions hit", hit.len());
    }

    #[test]
    fn lww_and_idempotent_retries() {
        let s = NodeStore::new();
        assert!(s.put(1, 5, b"a"));
        assert!(!s.put(1, 4, b"stale"), "older seq must lose");
        assert!(s.put(1, 5, b"a"), "same-seq retry reports success");
        assert!(s.put(1, 6, b"b"));
        assert_eq!(s.get(1).unwrap(), Versioned { seq: 6, value: b"b".to_vec() });
        assert_eq!(s.get(2), None);
    }

    #[test]
    fn snapshot_and_merge_move_partitions() {
        let a = NodeStore::new();
        for key in 0..200u64 {
            a.put(key, 1, &key.to_le_bytes());
        }
        let p = partition_of(7, 16);
        let snap = a.snapshot_partition(p, 16);
        assert!(snap.iter().any(|&(k, _)| k == 7));
        assert!(snap.iter().all(|&(k, _)| partition_of(k, 16) == p));

        let b = NodeStore::new();
        b.put(7, 9, b"newer");
        b.merge(&snap);
        assert_eq!(b.get(7).unwrap().seq, 9, "merge must not clobber newer data");
        let other = snap.iter().find(|&&(k, _)| k != 7).expect("partition has >1 key");
        assert_eq!(b.get(other.0).unwrap(), other.1);
    }
}
