//! Log-structured persistence: per-shard append-only segment logs with
//! periodic checkpoints and torn-tail-truncating recovery.
//!
//! Every durable [`NodeStore`](crate::store::NodeStore) owns one
//! [`NodeWal`], which splits the node's key space into
//! `range_shards` equal hash ranges (top byte of `splitmix64(key)`, in
//! the style of rfs sharding: `00-7f=store1 80-ff=store2`). Each range
//! shard is an independent [`ShardLog`] directory:
//!
//! ```text
//! node-7/
//!   shard-0/
//!     ckpt-00000003.snap   # full LWW snapshot covering seg ids < 3
//!     seg-00000003.wal     # appended records since that checkpoint
//!     seg-00000004.wal
//!   shard-1/
//!     ...
//! ```
//!
//! ## Record format
//!
//! Segments and checkpoints share one framing, append-only:
//!
//! ```text
//! [len: u32 le] [crc: u32 le] [key: u64 le] [seq: u64 le] [value bytes]
//! ```
//!
//! `len` counts the payload (`key` onward, so ≥ 16); `crc` is CRC-32
//! (IEEE) of the payload. A record is valid iff its length is sane, the
//! payload is fully present, and the CRC matches — anything else marks
//! the end of the durable prefix.
//!
//! ## Durability contract
//!
//! A write is appended (and the segment file flushed to the OS) before
//! `NodeStore::put` returns, and the coordinator acks only after every
//! live replica's put returned — so **an acked write is always in the
//! page cache of every live replica**, which survives `SIGKILL`. The
//! [`FsyncPolicy`] controls how much also survives power loss:
//! `always` fsyncs per record, `every(n)` amortizes, `never` (the
//! default) relies on the OS cache. Checkpoints are always written to a
//! temp file, fsynced and renamed, so a checkpoint is atomic.
//!
//! ## Recovery
//!
//! [`ShardLog::open`] replays the newest checkpoint, then every segment
//! at or above its id in order, LWW-merging records. The first invalid
//! record ends recovery: the segment is physically truncated to the
//! last valid record and any later segments are deleted — recovery
//! keeps **exactly the durable prefix**, and appends continue from it.

use crate::store::Versioned;
use rfh_obs::MetricsRegistry;
use rfh_ring::splitmix64;
use rfh_types::{Result as RfhResult, RfhError};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Record header bytes: `len` + `crc`.
const HEADER: usize = 8;
/// Fixed payload bytes before the value: `key` + `seq`.
const FIXED: usize = 16;
/// Upper bound on one record's payload — larger lengths mark a corrupt
/// header before any allocation happens.
const MAX_RECORD: u32 = 1 << 26;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, hand-rolled: the container has no
// registry access, so no crc crate.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the checksum guarding every WAL record.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// When segment appends reach the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append — survives power loss.
    Always,
    /// `fdatasync` every `n` appends per shard (and at rotation).
    EveryN(u64),
    /// Never fsync: the OS page cache is the durability boundary —
    /// survives process `SIGKILL`, not power loss.
    Never,
}

/// Knobs for the durable backend. Absent (`persistence` off) a cluster
/// runs purely in memory, byte-identical to a build without this
/// module.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistenceConfig {
    /// Root data directory; each node logs under `<dir>/node-<id>/`.
    pub dir: String,
    /// Fsync cadence for segment appends.
    pub fsync: FsyncPolicy,
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Checkpoint a shard after this many appended records.
    pub checkpoint_every: u64,
    /// Hash-range shards per node (1..=256 equal top-byte ranges).
    pub range_shards: u32,
}

impl PersistenceConfig {
    /// Defaults rooted at `dir`: no fsync (page-cache durability), 1 MiB
    /// segments, checkpoint every 4096 records, 2 range shards.
    pub fn with_dir(dir: impl Into<String>) -> Self {
        PersistenceConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Never,
            segment_bytes: 1 << 20,
            checkpoint_every: 4096,
            range_shards: 2,
        }
    }

    /// Domain checks beyond parsing.
    pub fn validate(&self) -> RfhResult<()> {
        let err = |reason: &str| RfhError::InvalidConfig {
            parameter: "persistence",
            reason: reason.to_string(),
        };
        if self.dir.is_empty() {
            return Err(err("dir must not be empty"));
        }
        if self.segment_bytes < 1024 {
            return Err(err("segment_bytes must be at least 1024"));
        }
        if self.checkpoint_every == 0 {
            return Err(err("checkpoint_every must be at least 1"));
        }
        if !(1..=256).contains(&self.range_shards) {
            return Err(err("range_shards must be in 1..=256"));
        }
        if let FsyncPolicy::EveryN(n) = self.fsync {
            if n == 0 {
                return Err(err("fsync wants \"always\", \"never\" or an int ≥ 1"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Storage counters
// ---------------------------------------------------------------------

/// Lifetime storage counters for one node, shared by its shard logs.
/// Everything is monotone, so scrapes are idempotent.
#[derive(Debug, Default)]
pub struct StorageStats {
    /// Segment files created (including recovery reopens).
    pub segments_written: AtomicU64,
    /// Records appended to segments.
    pub records_appended: AtomicU64,
    /// Bytes appended to segments (headers included).
    pub bytes_appended: AtomicU64,
    /// `fdatasync` calls issued by the fsync policy.
    pub fsyncs: AtomicU64,
    /// Checkpoint files written.
    pub checkpoints_written: AtomicU64,
    /// Bytes written into checkpoint files.
    pub bytes_checkpointed: AtomicU64,
    /// Records replayed during recovery (checkpoint + segments).
    pub records_replayed: AtomicU64,
    /// Invalid tails dropped during recovery (segment truncations and
    /// checkpoint suffixes ignored).
    pub torn_tails_truncated: AtomicU64,
    /// Microseconds spent in recovery scans, summed over shards.
    pub recovery_us: AtomicU64,
}

/// A plain-value copy of [`StorageStats`], for aggregation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageSnapshot {
    /// See [`StorageStats::segments_written`].
    pub segments_written: u64,
    /// See [`StorageStats::records_appended`].
    pub records_appended: u64,
    /// See [`StorageStats::bytes_appended`].
    pub bytes_appended: u64,
    /// See [`StorageStats::fsyncs`].
    pub fsyncs: u64,
    /// See [`StorageStats::checkpoints_written`].
    pub checkpoints_written: u64,
    /// See [`StorageStats::bytes_checkpointed`].
    pub bytes_checkpointed: u64,
    /// See [`StorageStats::records_replayed`].
    pub records_replayed: u64,
    /// See [`StorageStats::torn_tails_truncated`].
    pub torn_tails_truncated: u64,
    /// See [`StorageStats::recovery_us`].
    pub recovery_us: u64,
}

impl StorageSnapshot {
    /// Accumulate another node's counters into this one.
    pub fn add(&mut self, o: StorageSnapshot) {
        self.segments_written += o.segments_written;
        self.records_appended += o.records_appended;
        self.bytes_appended += o.bytes_appended;
        self.fsyncs += o.fsyncs;
        self.checkpoints_written += o.checkpoints_written;
        self.bytes_checkpointed += o.bytes_checkpointed;
        self.records_replayed += o.records_replayed;
        self.torn_tails_truncated += o.torn_tails_truncated;
        self.recovery_us += o.recovery_us;
    }

    /// Publish as `serve.storage.*` series.
    pub fn collect_metrics(&self, registry: &mut MetricsRegistry) {
        registry.counter_total("serve.storage.segments_written", self.segments_written);
        registry.counter_total("serve.storage.records_appended", self.records_appended);
        registry.counter_total("serve.storage.bytes_appended", self.bytes_appended);
        registry.counter_total("serve.storage.fsyncs", self.fsyncs);
        registry.counter_total("serve.storage.checkpoints_written", self.checkpoints_written);
        registry.counter_total("serve.storage.bytes_checkpointed", self.bytes_checkpointed);
        registry.counter_total("serve.storage.records_replayed", self.records_replayed);
        registry.counter_total("serve.storage.torn_tails_truncated", self.torn_tails_truncated);
        registry.counter_total("serve.storage.recovery_us", self.recovery_us);
    }
}

impl StorageStats {
    /// Current counter values.
    pub fn snapshot(&self) -> StorageSnapshot {
        StorageSnapshot {
            segments_written: self.segments_written.load(Ordering::Relaxed),
            records_appended: self.records_appended.load(Ordering::Relaxed),
            bytes_appended: self.bytes_appended.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            bytes_checkpointed: self.bytes_checkpointed.load(Ordering::Relaxed),
            records_replayed: self.records_replayed.load(Ordering::Relaxed),
            torn_tails_truncated: self.torn_tails_truncated.load(Ordering::Relaxed),
            recovery_us: self.recovery_us.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

/// Append one framed record to `buf`.
fn encode_record(buf: &mut Vec<u8>, key: u64, seq: u64, value: &[u8]) {
    let len = (FIXED + value.len()) as u32;
    let start = buf.len();
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]); // crc placeholder
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(value);
    let crc = crc32(&buf[start + HEADER..]);
    buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Walk the framed records in `data`, calling `f` for each valid one.
/// Returns the byte length of the valid prefix — the offset of the
/// first invalid record, or `data.len()` if everything parses.
fn scan_records(data: &[u8], mut f: impl FnMut(u64, u64, &[u8])) -> usize {
    let mut pos = 0usize;
    while data.len() - pos >= HEADER + FIXED {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
        if len < FIXED as u32 || len > MAX_RECORD {
            break;
        }
        let end = pos + HEADER + len as usize;
        if end > data.len() {
            break;
        }
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let payload = &data[pos + HEADER..end];
        if crc32(payload) != crc {
            break;
        }
        let key = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let seq = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        f(key, seq, &payload[16..]);
        pos = end;
    }
    pos
}

// ---------------------------------------------------------------------
// One range shard's log
// ---------------------------------------------------------------------

fn seg_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.wal"))
}

fn ckpt_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("ckpt-{id:08}.snap"))
}

/// Parse `seg-NNNNNNNN.wal` / `ckpt-NNNNNNNN.snap` names back to ids.
fn file_id(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

/// The append-only log of one hash-range shard: rotating segment files
/// plus the newest checkpoint. All mutation happens behind the owning
/// [`NodeWal`]'s per-shard mutex.
#[derive(Debug)]
pub struct ShardLog {
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_bytes: u64,
    stats: Arc<StorageStats>,
    /// Id of the active segment (monotone; checkpoints cover ids below
    /// their own).
    seg_id: u64,
    file: File,
    file_bytes: u64,
    appends_since_sync: u64,
    /// Records appended since the last checkpoint, across rotations.
    records_since_ckpt: u64,
    buf: Vec<u8>,
}

impl ShardLog {
    /// Open (or create) the shard at `dir`, replaying checkpoint +
    /// segments. Returns the log positioned for appending and the
    /// recovered entries (LWW-merged).
    pub fn open(
        dir: PathBuf,
        policy: FsyncPolicy,
        segment_bytes: u64,
        stats: Arc<StorageStats>,
    ) -> io::Result<(ShardLog, Vec<(u64, Versioned)>)> {
        let t0 = std::time::Instant::now();
        fs::create_dir_all(&dir)?;

        // Inventory the directory.
        let mut seg_ids: Vec<u64> = Vec::new();
        let mut ckpt_ids: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = file_id(&name, "seg-", ".wal") {
                seg_ids.push(id);
            } else if let Some(id) = file_id(&name, "ckpt-", ".snap") {
                ckpt_ids.push(id);
            } else if name.ends_with(".tmp") {
                // A checkpoint that never reached its rename — garbage.
                let _ = fs::remove_file(entry.path());
            }
        }
        seg_ids.sort_unstable();
        ckpt_ids.sort_unstable();

        let mut map: std::collections::HashMap<u64, Versioned> = std::collections::HashMap::new();
        let mut lww = |key: u64, seq: u64, value: &[u8]| {
            stats.records_replayed.fetch_add(1, Ordering::Relaxed);
            match map.get(&key) {
                Some(cur) if cur.seq >= seq => {}
                _ => {
                    map.insert(key, Versioned { seq, value: value.to_vec() });
                }
            }
        };

        // Newest checkpoint first (rename made it atomic; a corrupt
        // suffix is still dropped defensively, keeping the valid
        // prefix).
        let ckpt_floor = ckpt_ids.last().copied();
        if let Some(id) = ckpt_floor {
            let data = fs::read(ckpt_path(&dir, id))?;
            let valid = scan_records(&data, &mut lww);
            if valid < data.len() {
                stats.torn_tails_truncated.fetch_add(1, Ordering::Relaxed);
            }
        }
        for &id in &ckpt_ids {
            if Some(id) != ckpt_floor {
                let _ = fs::remove_file(ckpt_path(&dir, id));
            }
        }

        // Segments at or above the checkpoint floor, in id order. The
        // first invalid record ends the durable prefix: truncate there,
        // drop everything after.
        let mut open_id: Option<u64> = None;
        let mut open_bytes = 0u64;
        let mut cut = false;
        for (i, &id) in seg_ids.iter().enumerate() {
            let path = seg_path(&dir, id);
            if cut || ckpt_floor.is_some_and(|c| id < c) {
                fs::remove_file(&path)?;
                continue;
            }
            let data = fs::read(&path)?;
            let valid = scan_records(&data, &mut lww);
            if valid < data.len() {
                stats.torn_tails_truncated.fetch_add(1, Ordering::Relaxed);
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid as u64)?;
                cut = true; // later segments are past the durable prefix
            }
            // A gap in segment ids means the tail was lost wholesale
            // (e.g. deleted by a test): everything after it is past the
            // durable prefix too.
            if !cut && i + 1 < seg_ids.len() && seg_ids[i + 1] != id + 1 {
                cut = true;
            }
            open_id = Some(id);
            open_bytes = valid as u64;
        }

        // Position the active segment: continue the last one if it has
        // room, else start the next id.
        let (seg_id, fresh) = match open_id {
            Some(id) if open_bytes < segment_bytes => (id, false),
            Some(id) => (id + 1, true),
            None => (ckpt_floor.unwrap_or(0), true),
        };
        let file = OpenOptions::new().create(true).append(true).open(seg_path(&dir, seg_id))?;
        if fresh {
            stats.segments_written.fetch_add(1, Ordering::Relaxed);
            open_bytes = 0;
        }

        stats.recovery_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        let log = ShardLog {
            dir,
            policy,
            segment_bytes,
            stats,
            seg_id,
            file,
            file_bytes: open_bytes,
            appends_since_sync: 0,
            records_since_ckpt: 0,
            buf: Vec::with_capacity(256),
        };
        Ok((log, map.into_iter().collect()))
    }

    /// Re-run recovery from disk, discarding in-memory position — the
    /// restart verb's replay. Counters accumulate.
    pub fn reopen(&mut self) -> io::Result<Vec<(u64, Versioned)>> {
        let (log, entries) = ShardLog::open(
            self.dir.clone(),
            self.policy,
            self.segment_bytes,
            Arc::clone(&self.stats),
        )?;
        *self = log;
        Ok(entries)
    }

    /// Append one record; flushed to the OS before returning, fsynced
    /// per policy. Rotates the segment when full.
    pub fn append(&mut self, key: u64, seq: u64, value: &[u8]) -> io::Result<()> {
        self.buf.clear();
        encode_record(&mut self.buf, key, seq, value);
        self.file.write_all(&self.buf)?;
        self.file_bytes += self.buf.len() as u64;
        self.records_since_ckpt += 1;
        self.stats.records_appended.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_appended.fetch_add(self.buf.len() as u64, Ordering::Relaxed);
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        if self.file_bytes >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Records appended to this shard since its last checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_ckpt
    }

    /// Write a checkpoint covering everything appended so far.
    /// `entries` must be the shard's full current contents (the caller
    /// snapshots its store under this shard's lock, so no append can
    /// interleave). Older segments and checkpoints are deleted.
    pub fn checkpoint(&mut self, entries: &[(u64, Versioned)]) -> io::Result<()> {
        // Seal the current segment first: the checkpoint covers all ids
        // below the new active segment.
        self.rotate()?;
        let cover = self.seg_id;

        let mut buf = Vec::with_capacity(entries.len() * 64);
        for (k, v) in entries {
            encode_record(&mut buf, *k, v.seq, &v.value);
        }
        let tmp = self.dir.join(format!("ckpt-{cover:08}.snap.tmp"));
        let final_path = ckpt_path(&self.dir, cover);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all(); // durable rename, best effort
        }
        self.stats.checkpoints_written.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_checkpointed.fetch_add(buf.len() as u64, Ordering::Relaxed);

        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().to_string();
            let stale = file_id(&name, "seg-", ".wal").is_some_and(|id| id < cover)
                || file_id(&name, "ckpt-", ".snap").is_some_and(|id| id < cover);
            if stale {
                fs::remove_file(entry.path())?;
            }
        }
        self.records_since_ckpt = 0;
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        if self.policy != FsyncPolicy::Never {
            self.sync()?;
        }
        self.seg_id += 1;
        self.file =
            OpenOptions::new().create(true).append(true).open(seg_path(&self.dir, self.seg_id))?;
        self.file_bytes = 0;
        self.stats.segments_written.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Per-node WAL: hash-range → shard mapping
// ---------------------------------------------------------------------

/// One node's durable backend: `range_shards` independent
/// [`ShardLog`]s, selected by the top byte of `splitmix64(key)`.
#[derive(Debug)]
pub struct NodeWal {
    shards: Vec<std::sync::Mutex<ShardLog>>,
    range_shards: u32,
    checkpoint_every: u64,
    stats: Arc<StorageStats>,
}

impl NodeWal {
    /// Open the node's WAL under `node_dir`, recovering every shard.
    /// Returns the recovered entries of all shards (disjoint ranges).
    pub fn open(
        cfg: &PersistenceConfig,
        node_dir: PathBuf,
    ) -> io::Result<(NodeWal, Vec<(u64, Versioned)>)> {
        let stats = Arc::new(StorageStats::default());
        let mut shards = Vec::with_capacity(cfg.range_shards as usize);
        let mut recovered = Vec::new();
        for s in 0..cfg.range_shards {
            let (log, entries) = ShardLog::open(
                node_dir.join(format!("shard-{s}")),
                cfg.fsync,
                cfg.segment_bytes,
                Arc::clone(&stats),
            )?;
            shards.push(std::sync::Mutex::new(log));
            recovered.extend(entries);
        }
        let wal = NodeWal {
            shards,
            range_shards: cfg.range_shards,
            checkpoint_every: cfg.checkpoint_every,
            stats,
        };
        Ok((wal, recovered))
    }

    /// Which range shard holds `key`: equal top-byte ranges of the same
    /// `splitmix64` the partition hash uses.
    pub fn shard_of(&self, key: u64) -> usize {
        (((splitmix64(key) >> 56) as usize) * self.range_shards as usize) / 256
    }

    /// Number of range shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The node's storage counters.
    pub fn stats(&self) -> &Arc<StorageStats> {
        &self.stats
    }

    /// Append one applied write. When the shard crosses its checkpoint
    /// threshold, `snapshot` is called (under the shard lock) for the
    /// shard's full contents and a checkpoint is written.
    pub fn log(
        &self,
        key: u64,
        seq: u64,
        value: &[u8],
        snapshot: impl FnOnce(usize) -> Vec<(u64, Versioned)>,
    ) -> io::Result<()> {
        let idx = self.shard_of(key);
        let mut shard = self.shards[idx].lock().expect("shard lock");
        shard.append(key, seq, value)?;
        if shard.records_since_checkpoint() >= self.checkpoint_every {
            let entries = snapshot(idx);
            shard.checkpoint(&entries)?;
        }
        Ok(())
    }

    /// Discard in-memory log positions and replay every shard from
    /// disk — the restart verb. Returns the recovered entries and how
    /// many records were replayed.
    pub fn replay_from_disk(&self) -> io::Result<(Vec<(u64, Versioned)>, u64)> {
        // Take every shard lock before touching anything, in index
        // order; nested lock order elsewhere is shard → store map, so
        // this cannot deadlock against the append/checkpoint path.
        let mut guards: Vec<_> =
            self.shards.iter().map(|s| s.lock().expect("shard lock")).collect();
        let before = self.stats.records_replayed.load(Ordering::Relaxed);
        let mut recovered = Vec::new();
        for g in guards.iter_mut() {
            recovered.extend(g.reopen()?);
        }
        let replayed = self.stats.records_replayed.load(Ordering::Relaxed) - before;
        Ok((recovered, replayed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering as AtomOrd};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, AtomOrd::Relaxed);
        let dir = std::env::temp_dir().join(format!("rfh-wal-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path) -> (ShardLog, Vec<(u64, Versioned)>) {
        ShardLog::open(dir.to_path_buf(), FsyncPolicy::Never, 1 << 20, Arc::default()).unwrap()
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_recover_roundtrips() {
        let dir = scratch_dir("roundtrip");
        {
            let (mut log, recovered) = open(&dir);
            assert!(recovered.is_empty());
            for k in 0..100u64 {
                log.append(k, k + 1, &k.to_le_bytes()).unwrap();
            }
            log.append(7, 99, b"newer").unwrap();
        }
        let (_, recovered) = open(&dir);
        assert_eq!(recovered.len(), 100);
        let v7 = recovered.iter().find(|(k, _)| *k == 7).unwrap();
        assert_eq!(v7.1, Versioned { seq: 99, value: b"newer".to_vec() }, "LWW on replay");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_valid_record() {
        let dir = scratch_dir("torn");
        let stats = Arc::new(StorageStats::default());
        {
            let (mut log, _) =
                ShardLog::open(dir.clone(), FsyncPolicy::Always, 1 << 20, Arc::clone(&stats))
                    .unwrap();
            for k in 0..10u64 {
                log.append(k, 1, b"value").unwrap();
            }
        }
        // Tear the tail mid-record.
        let seg = seg_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let after = Arc::new(StorageStats::default());
        let (_, recovered) =
            ShardLog::open(dir.clone(), FsyncPolicy::Never, 1 << 20, Arc::clone(&after)).unwrap();
        assert_eq!(recovered.len(), 9, "exactly the durable prefix");
        assert_eq!(after.torn_tails_truncated.load(Ordering::Relaxed), 1);
        assert_eq!(after.records_replayed.load(Ordering::Relaxed), 9);
        let record = (fs::metadata(&seg).unwrap().len()) % (HEADER as u64 + 16 + 5);
        assert_eq!(record, 0, "file physically truncated to whole records");

        // Appending after recovery continues the log cleanly.
        let (mut log, _) = open(&dir);
        log.append(99, 1, b"after").unwrap();
        drop(log);
        let (_, recovered) = open(&dir);
        assert_eq!(recovered.len(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_checkpoint_prune_old_segments() {
        let dir = scratch_dir("ckpt");
        let stats = Arc::new(StorageStats::default());
        let (mut log, _) =
            ShardLog::open(dir.clone(), FsyncPolicy::Never, 256, Arc::clone(&stats)).unwrap();
        let mut entries = Vec::new();
        for k in 0..50u64 {
            log.append(k, 1, &[7u8; 16]).unwrap();
            entries.push((k, Versioned { seq: 1, value: vec![7u8; 16] }));
        }
        assert!(stats.segments_written.load(Ordering::Relaxed) > 1, "tiny segments rotate");
        log.checkpoint(&entries).unwrap();
        log.append(100, 1, b"post").unwrap();
        drop(log);

        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.iter().filter(|n| n.starts_with("ckpt-")).count(), 1);
        assert!(
            names.iter().filter(|n| n.starts_with("seg-")).count() <= 2,
            "pre-checkpoint segments pruned: {names:?}"
        );

        let fresh = Arc::new(StorageStats::default());
        let (_, recovered) =
            ShardLog::open(dir.clone(), FsyncPolicy::Never, 256, Arc::clone(&fresh)).unwrap();
        assert_eq!(recovered.len(), 51, "checkpoint + tail segments replay completely");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn node_wal_shards_by_hash_range_and_replays() {
        let dir = scratch_dir("node");
        let cfg = PersistenceConfig {
            range_shards: 4,
            ..PersistenceConfig::with_dir(dir.to_string_lossy().into_owned())
        };
        let (wal, recovered) = NodeWal::open(&cfg, dir.clone()).unwrap();
        assert!(recovered.is_empty());
        for k in 0..200u64 {
            wal.log(k, 1, b"v", |_| unreachable!("no checkpoint this early")).unwrap();
        }
        let hit: std::collections::HashSet<usize> = (0..200u64).map(|k| wal.shard_of(k)).collect();
        assert_eq!(hit.len(), 4, "keys spread over every range shard");

        let (recovered, replayed) = wal.replay_from_disk().unwrap();
        assert_eq!(recovered.len(), 200);
        assert_eq!(replayed, 200);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_count_syncs() {
        let dir = scratch_dir("fsync");
        let stats = Arc::new(StorageStats::default());
        let (mut log, _) =
            ShardLog::open(dir.clone(), FsyncPolicy::EveryN(4), 1 << 20, Arc::clone(&stats))
                .unwrap();
        for k in 0..8u64 {
            log.append(k, 1, b"x").unwrap();
        }
        assert_eq!(stats.fsyncs.load(Ordering::Relaxed), 2, "every 4th append syncs");
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }
}
