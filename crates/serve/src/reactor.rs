//! The epoll reactor data plane.
//!
//! All node listeners multiplex onto a small pool of reactor threads
//! (`min(cores, 4)`); every accepted connection is nonblocking and
//! pipelined — a client may keep many frames in flight, and replies are
//! released strictly in arrival order so an untraced pipeline
//! correlates acks by position (traced frames additionally echo their
//! op-ID). At pipeline depth 1 the wire traffic is frame-for-frame
//! identical to the threaded plane's.
//!
//! ## Coordination without the partition lock
//!
//! The threaded plane proves "zero lost acknowledged writes" by holding
//! the partition mutex across the whole write-all-replicas sequence,
//! peer round-trips included. An event loop cannot block like that, so
//! this plane validates optimistically against the per-partition
//! **route epoch** (see `Shared::route_epochs`): a put snapshots an
//! even epoch, writes every live replica of the snapshotted route
//! (local stores directly, remote ones over multiplexed peer channels),
//! and acks only if the epoch is still exactly that value afterwards.
//! The control loop flips the epoch odd before copying a partition and
//! settles it at the next even value when it republishes the route, so
//! any write racing a transfer fails validation and restarts against
//! the new route — idempotent, because replicas keep the highest seq
//! per key. An odd epoch at snapshot time defers the put briefly
//! instead of writing into a moving route.
//!
//! Gets never validate: transfers only ever *add* data and routes are
//! republished after the copy, so both the pre- and post-flip replica
//! sets can serve an authoritative read.
//!
//! ## Peer channels
//!
//! Coordinator → replica forwards share one nonblocking connection per
//! (coordinator node, peer node) pair per reactor thread, replacing the
//! threaded plane's blocking connection pool. Replies correlate by FIFO
//! order: the replica serves forwards synchronously in arrival order,
//! so the n-th ack on a channel answers the n-th outstanding ticket.
//! Op-IDs still ride traced forwards — they are the *span-chain*
//! correlation token, not the transport's. A channel that errors,
//! closes, or dawdles past the peer timeout fails all its tickets
//! (gets walk on to the next replica; puts treat it as a failed write
//! to that replica) and is re-established on next use.

#![allow(clippy::too_many_arguments)]

use crate::cluster::Shared;
use crate::node::{self, PhaseAcc};
use crate::store::partition_of;
use crate::telemetry::ReqKind;
use crate::wire::{AckStatus, Frame, MAX_FRAME};
use rfh_types::{DatacenterId, Result, RfhError, ServerId};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(unix)]
use rfh_reactor::{Event, FrameReader, Poller, TimerWheel, Waker, WriteQueue};
#[cfg(unix)]
use std::os::fd::AsRawFd;

/// Cap on reactor threads: beyond a few, loopback serving is syscall-
/// bound, not CPU-bound, and more loops just shuffle cache lines.
const MAX_REACTOR_THREADS: usize = 4;

/// Poller token of the wakeup eventfd.
const WAKER_TOKEN: u64 = u64::MAX;

/// Timer-wheel token of the recurring peer-timeout scan.
const SCAN_TOKEN: u64 = u64::MAX;

/// How often each reactor sweeps peer channels for expired tickets.
const SCAN_INTERVAL: Duration = Duration::from_millis(250);

/// Retry delay for a put that found its partition mid-transfer.
const DEFER_RETRY: Duration = Duration::from_millis(1);

/// Hard deadline on one put, defers and restarts included. Transfers
/// settle in milliseconds; a put still unvalidated after this long
/// answers Unavailable and lets the client retry idempotently.
const PUT_DEADLINE: Duration = Duration::from_secs(5);

/// Route-conflict restarts before giving up with Unavailable.
const MAX_RESTARTS: u32 = 32;

/// Upper bound on one `epoll_wait`, so shutdown is always noticed even
/// if the waker write itself were lost.
const MAX_IDLE: Duration = Duration::from_millis(100);

/// The running reactor pool. Created by `Cluster::start_bound` when
/// `data_plane = "reactor"`; joined at cluster shutdown.
pub(crate) struct ReactorPlane {
    threads: Vec<JoinHandle<()>>,
    wakers: Vec<Waker>,
}

#[cfg(unix)]
impl ReactorPlane {
    /// Spawn `min(cores, 4)` reactor threads and deal the node
    /// listeners out round-robin. Each listener's connections are
    /// served wholly by the thread that owns it.
    pub fn start(shared: Arc<Shared>, listeners: Vec<TcpListener>) -> io::Result<ReactorPlane> {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let nthreads = cores.min(MAX_REACTOR_THREADS).min(listeners.len()).max(1);
        let mut per: Vec<Vec<(usize, TcpListener)>> = (0..nthreads).map(|_| Vec::new()).collect();
        for (i, l) in listeners.into_iter().enumerate() {
            per[i % nthreads].push((i, l));
        }
        let mut threads = Vec::with_capacity(nthreads);
        let mut wakers = Vec::with_capacity(nthreads);
        for (t, own) in per.into_iter().enumerate() {
            let waker = Waker::new()?;
            wakers.push(waker.clone());
            let reactor = Reactor::new(Arc::clone(&shared), own, waker)?;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rfh-reactor-{t}"))
                    .spawn(move || reactor.run())?,
            );
        }
        Ok(ReactorPlane { threads, wakers })
    }

    /// Wake every reactor out of `epoll_wait` and join. The shutdown
    /// flag is already set by the caller.
    pub fn shutdown(self) -> Result<()> {
        for w in &self.wakers {
            w.wake();
        }
        for h in self.threads {
            h.join().map_err(|_| RfhError::Simulation("reactor thread panicked".into()))?;
        }
        for w in self.wakers {
            w.close();
        }
        Ok(())
    }
}

#[cfg(not(unix))]
impl ReactorPlane {
    pub fn start(_shared: Arc<Shared>, _listeners: Vec<TcpListener>) -> io::Result<ReactorPlane> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "reactor plane requires epoll"))
    }

    pub fn shutdown(self) -> Result<()> {
        Ok(())
    }
}

/// Stable handle to one in-flight coordinated operation: the client
/// connection's slot, its generation (slots are reused; a stale
/// generation means the connection died and the result is discarded),
/// and the op's per-connection sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpRef {
    slot: usize,
    gen: u64,
    op_seq: u64,
}

/// What a peer-channel ticket was sent for, deciding how its ack (or
/// the channel's failure) feeds back into the op's state machine.
#[derive(Debug, Clone, Copy)]
enum Purpose {
    Get,
    Put,
}

/// One outstanding forward on a peer channel, completed FIFO.
#[cfg(unix)]
struct Ticket {
    op: OpRef,
    target: ServerId,
    sent_at: Instant,
    purpose: Purpose,
}

/// Remaining work of one coordinated op.
enum OpState {
    /// Reply computed; waiting only for in-order release.
    Ready,
    Get(GetWork),
    Put(PutWork),
}

struct GetWork {
    key: u64,
    origin: u32,
    /// Replicas not yet tried, coordinator-local first.
    candidates: VecDeque<ServerId>,
}

struct PutWork {
    key: u64,
    seq: u64,
    value: Vec<u8>,
    /// The even route epoch this attempt snapshotted.
    p_epoch: u64,
    /// Remote acks still awaited this attempt.
    outstanding: usize,
    landed: usize,
    failed_live: bool,
    restarts: u32,
    deadline: Instant,
    /// Set while parked behind an odd epoch; elapsed time lands in the
    /// queue phase on retry.
    defer_from: Option<Instant>,
}

/// One client request in the pipeline, kept in arrival order.
struct PendingOp {
    op_seq: u64,
    op_id: Option<u64>,
    kind: ReqKind,
    t0: Instant,
    phases: PhaseAcc,
    state: OpState,
    reply: Option<Frame>,
}

#[cfg(unix)]
struct ClientConn {
    node: usize,
    conn_id: u64,
    gen: u64,
    stream: TcpStream,
    reader: FrameReader,
    wq: WriteQueue,
    want_write: bool,
    dirty: bool,
    eof: bool,
    next_op_seq: u64,
    pending: VecDeque<PendingOp>,
}

#[cfg(unix)]
struct PeerChan {
    owner: usize,
    peer: usize,
    stream: TcpStream,
    reader: FrameReader,
    wq: WriteQueue,
    want_write: bool,
    dirty: bool,
    tickets: VecDeque<Ticket>,
}

#[cfg(unix)]
enum Entry {
    Listener { node: usize, listener: TcpListener },
    Client(ClientConn),
    Peer(PeerChan),
}

#[cfg(unix)]
struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    waker: Waker,
    entries: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// (coordinator node, peer node) → live channel slot.
    peer_map: HashMap<(usize, usize), usize>,
    wheel: TimerWheel,
    /// Timer id → op parked behind an odd route epoch.
    deferred: HashMap<u64, OpRef>,
    next_timer: u64,
    gen_seq: u64,
    /// Slots whose write queue grew this round, flushed together.
    dirty: Vec<usize>,
}

#[cfg(unix)]
fn resolve(entries: &mut [Option<Entry>], op: OpRef) -> Option<&mut PendingOp> {
    match entries.get_mut(op.slot)?.as_mut()? {
        Entry::Client(c) if c.gen == op.gen => c.pending.iter_mut().find(|p| p.op_seq == op.op_seq),
        _ => None,
    }
}

#[cfg(unix)]
impl Reactor {
    fn new(
        shared: Arc<Shared>,
        listeners: Vec<(usize, TcpListener)>,
        waker: Waker,
    ) -> io::Result<Reactor> {
        let poller = Poller::new()?;
        poller.register(waker.fd(), WAKER_TOKEN, true, false)?;
        let now = Instant::now();
        let mut r = Reactor {
            shared,
            poller,
            waker,
            entries: Vec::new(),
            free: Vec::new(),
            peer_map: HashMap::new(),
            // 10 ms × 256 slots spans 2.56 s — past the 2 s peer
            // timeout the wheel polices.
            wheel: TimerWheel::new(Duration::from_millis(10), 256, now),
            deferred: HashMap::new(),
            next_timer: 0,
            gen_seq: 0,
            dirty: Vec::new(),
        };
        r.wheel.schedule_after(SCAN_TOKEN, SCAN_INTERVAL, now);
        for (node, listener) in listeners {
            let slot = r.alloc(Entry::Listener { node, listener });
            let fd = match r.entries[slot].as_ref() {
                Some(Entry::Listener { listener, .. }) => listener.as_raw_fd(),
                _ => unreachable!("just allocated"),
            };
            r.poller.register(fd, slot as u64, true, false)?;
        }
        Ok(r)
    }

    fn alloc(&mut self, entry: Entry) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.entries[slot] = Some(entry);
                slot
            }
            None => {
                self.entries.push(Some(entry));
                self.entries.len() - 1
            }
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut due: Vec<u64> = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            let timeout = self.wheel.next_timeout(now).unwrap_or(MAX_IDLE).min(MAX_IDLE);
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                return;
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            for ev in events.drain(..) {
                if ev.token == WAKER_TOKEN {
                    self.waker.drain();
                    continue;
                }
                self.handle_event(ev);
            }
            self.wheel.advance(Instant::now(), &mut due);
            for token in due.drain(..) {
                self.handle_timer(token);
            }
            self.flush_dirty();
        }
    }

    fn handle_event(&mut self, ev: Event) {
        let slot = ev.token as usize;
        match self.entries.get(slot).and_then(Option::as_ref) {
            Some(Entry::Listener { .. }) => self.accept_loop(slot),
            Some(Entry::Client(_)) => {
                if ev.readable() {
                    self.read_client(slot);
                }
                if ev.writable() {
                    self.mark_dirty(slot);
                }
            }
            Some(Entry::Peer(_)) => {
                if ev.readable() {
                    self.read_peer(slot);
                }
                if ev.writable() {
                    self.mark_dirty(slot);
                }
            }
            None => {} // closed earlier this round; stale event
        }
    }

    fn handle_timer(&mut self, token: u64) {
        if token == SCAN_TOKEN {
            self.scan_peer_timeouts();
            self.wheel.schedule_after(SCAN_TOKEN, SCAN_INTERVAL, Instant::now());
            return;
        }
        if let Some(op) = self.deferred.remove(&token) {
            self.start_put(op);
        }
    }

    fn mark_dirty(&mut self, slot: usize) {
        let flag = match self.entries.get_mut(slot).and_then(Option::as_mut) {
            Some(Entry::Client(c)) => &mut c.dirty,
            Some(Entry::Peer(p)) => &mut p.dirty,
            _ => return,
        };
        if !*flag {
            *flag = true;
            self.dirty.push(slot);
        }
    }

    // ---- accept path ----------------------------------------------

    fn accept_loop(&mut self, slot: usize) {
        loop {
            let (node, accepted) = match self.entries.get(slot).and_then(Option::as_ref) {
                Some(Entry::Listener { node, listener }) => (*node, listener.accept()),
                _ => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    if !self.shared.is_alive(node) {
                        drop(stream); // fail-stop: refuse service
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    self.gen_seq += 1;
                    let conn = ClientConn {
                        node,
                        conn_id: node::next_conn_id(),
                        gen: self.gen_seq,
                        stream,
                        reader: FrameReader::new(MAX_FRAME),
                        wq: WriteQueue::new(),
                        want_write: false,
                        dirty: false,
                        eof: false,
                        next_op_seq: 0,
                        pending: VecDeque::new(),
                    };
                    let cslot = self.alloc(Entry::Client(conn));
                    let fd = match self.entries[cslot].as_ref() {
                        Some(Entry::Client(c)) => c.stream.as_raw_fd(),
                        _ => unreachable!("just allocated"),
                    };
                    if self.poller.register(fd, cslot as u64, true, false).is_err() {
                        self.entries[cslot] = None;
                        self.free.push(cslot);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    // ---- client read / dispatch -----------------------------------

    fn read_client(&mut self, slot: usize) {
        let mut bodies = Vec::new();
        let eof = {
            let Some(Entry::Client(c)) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let eof = match c.reader.fill_from(&mut c.stream) {
                Ok((_, eof)) => eof,
                Err(_) => {
                    drop(bodies);
                    self.close_client(slot);
                    return;
                }
            };
            loop {
                match c.reader.next_body() {
                    Ok(Some(b)) => bodies.push(b),
                    Ok(None) => break,
                    Err(_) => {
                        drop(bodies);
                        self.close_client(slot);
                        return;
                    }
                }
            }
            eof
        };
        for body in bodies {
            if !self.dispatch(slot, &body) {
                return; // connection closed mid-batch
            }
        }
        if eof {
            // The client finished sending. Like the threaded plane we
            // stop serving it, but let already-pipelined work drain:
            // replies still flush, and the conn closes once idle.
            let done = {
                let Some(Entry::Client(c)) = self.entries.get_mut(slot).and_then(Option::as_mut)
                else {
                    return;
                };
                c.eof = true;
                let fd = c.stream.as_raw_fd();
                let _ = self.poller.modify(fd, slot as u64, false, c.want_write);
                c.pending.is_empty() && c.wq.is_empty()
            };
            if done {
                self.close_client(slot);
            }
        }
    }

    /// Decode and route one inbound frame. Returns false when the
    /// connection was closed (protocol error or fail-stop).
    fn dispatch(&mut self, slot: usize, body: &[u8]) -> bool {
        let Ok((frame, op_id)) = Frame::decode_envelope(body) else {
            self.close_client(slot);
            return false;
        };
        let (node, conn_id, gen, op_seq) = {
            let Some(Entry::Client(c)) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
                return false;
            };
            c.next_op_seq += 1;
            (c.node, c.conn_id, c.gen, c.next_op_seq)
        };
        if !self.shared.is_alive(node) {
            self.close_client(slot); // killed mid-connection: drop without reply
            return false;
        }
        let op = OpRef { slot, gen, op_seq };
        match frame {
            Frame::Get { key } => {
                let p = partition_of(key, self.shared.partitions);
                let origin = self.shared.dc_of[node];
                self.shared.load.add(p, DatacenterId::new(origin), 1);
                self.shared.counters.gets.fetch_add(1, Ordering::Relaxed);
                if let Some(tel) = self.shared.telemetry.node(node) {
                    tel.hit(p);
                }
                let replicas = self.shared.route(p);
                let me = ServerId::new(node as u32);
                let candidates: VecDeque<ServerId> = replicas
                    .iter()
                    .copied()
                    .filter(|&r| r == me)
                    .chain(replicas.iter().copied().filter(|&r| r != me))
                    .collect();
                self.enqueue_op(
                    slot,
                    op_seq,
                    op_id,
                    ReqKind::Get,
                    OpState::Get(GetWork { key, origin, candidates }),
                );
                self.advance_get(op);
            }
            Frame::Put { key, seq, value } => {
                let p = partition_of(key, self.shared.partitions);
                let origin = self.shared.dc_of[node];
                self.shared.load.add(p, DatacenterId::new(origin), 1);
                self.shared.counters.puts.fetch_add(1, Ordering::Relaxed);
                if let Some(tel) = self.shared.telemetry.node(node) {
                    tel.hit(p);
                }
                self.enqueue_op(
                    slot,
                    op_seq,
                    op_id,
                    ReqKind::Put,
                    OpState::Put(PutWork {
                        key,
                        seq,
                        value,
                        p_epoch: 0,
                        outstanding: 0,
                        landed: 0,
                        failed_live: false,
                        restarts: 0,
                        deadline: Instant::now() + PUT_DEADLINE,
                        defer_from: None,
                    }),
                );
                self.start_put(op);
            }
            // Forwards (and unsolicited acks) are local-only and
            // synchronous — the exact threaded-plane handler serves
            // them, telemetry tail included.
            other => {
                let reply = node::serve_frame(node, conn_id, other, op_id, &self.shared);
                let Some(Entry::Client(c)) = self.entries.get_mut(slot).and_then(Option::as_mut)
                else {
                    return false;
                };
                c.pending.push_back(PendingOp {
                    op_seq,
                    op_id,
                    kind: ReqKind::ForwardGet, // unused once Ready
                    t0: Instant::now(),
                    phases: PhaseAcc::default(),
                    state: OpState::Ready,
                    reply: Some(reply),
                });
                self.release(slot);
            }
        }
        true
    }

    fn enqueue_op(
        &mut self,
        slot: usize,
        op_seq: u64,
        op_id: Option<u64>,
        kind: ReqKind,
        state: OpState,
    ) {
        let Some(Entry::Client(c)) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        c.pending.push_back(PendingOp {
            op_seq,
            op_id,
            kind,
            t0: Instant::now(),
            phases: PhaseAcc::default(),
            state,
            reply: None,
        });
    }

    // ---- get state machine ----------------------------------------

    /// Walk the get's candidate list until a replica answers, a forward
    /// is in flight, or the list is exhausted. Mirrors the threaded
    /// coordinator: dead replicas are skipped, a local replica answers
    /// from the store, any ack from a peer is the answer, and a broken
    /// channel just moves on to the next candidate.
    fn advance_get(&mut self, op: OpRef) {
        loop {
            let (next, node, key, origin, op_id) = {
                let Some(pend) = resolve(&mut self.entries, op) else { return };
                let OpState::Get(w) = &mut pend.state else { return };
                let (key, origin, op_id) = (w.key, w.origin, pend.op_id);
                let Some(Entry::Client(c)) = self.entries.get_mut(op.slot).and_then(Option::as_mut)
                else {
                    return;
                };
                let node = c.node;
                let Some(pend) = c.pending.iter_mut().find(|p| p.op_seq == op.op_seq) else {
                    return;
                };
                let OpState::Get(w) = &mut pend.state else { return };
                (w.candidates.pop_front(), node, key, origin, op_id)
            };
            match next {
                None => {
                    let ack =
                        Frame::Ack { status: AckStatus::Unavailable, seq: 0, value: Vec::new() };
                    self.complete(op, ack);
                    return;
                }
                Some(r) if !self.shared.is_alive(r.index()) => continue,
                Some(r) if r.index() == node => {
                    let ack = match self.shared.stores[node].get(key) {
                        Some(v) => Frame::Ack { status: AckStatus::Ok, seq: v.seq, value: v.value },
                        None => {
                            Frame::Ack { status: AckStatus::NotFound, seq: 0, value: Vec::new() }
                        }
                    };
                    self.complete(op, ack);
                    return;
                }
                Some(r) => {
                    let f = Frame::ForwardGet { key, origin_dc: origin };
                    self.forward(op, node, r, f, op_id, Purpose::Get);
                    return;
                }
            }
        }
    }

    // ---- put state machine ----------------------------------------

    /// Begin (or restart) one put attempt: snapshot an even route
    /// epoch, write the local replica directly, fan forwards out to
    /// every remote live replica. An odd epoch parks the op on a short
    /// timer instead of writing into a partition mid-transfer.
    fn start_put(&mut self, op: OpRef) {
        let now = Instant::now();
        let (node, key, seq, value, op_id, deadline) = {
            let Some(pend) = resolve(&mut self.entries, op) else { return };
            let op_id = pend.op_id;
            let OpState::Put(w) = &mut pend.state else { return };
            if let Some(t) = w.defer_from.take() {
                pend.phases.queue_us += t.elapsed().as_micros() as f64;
            }
            let (key, seq, value, deadline) = (w.key, w.seq, w.value.clone(), w.deadline);
            let Some(Entry::Client(c)) = self.entries.get_mut(op.slot).and_then(Option::as_mut)
            else {
                return;
            };
            (c.node, key, seq, value, op_id, deadline)
        };
        let p = partition_of(key, self.shared.partitions);
        let epoch = self.shared.route_epoch(p);
        if epoch & 1 == 1 {
            if now > deadline {
                let ack = Frame::Ack { status: AckStatus::Unavailable, seq, value: Vec::new() };
                self.complete(op, ack);
                return;
            }
            if let Some(pend) = resolve(&mut self.entries, op) {
                if let OpState::Put(w) = &mut pend.state {
                    w.defer_from = Some(now);
                }
            }
            let id = self.next_timer;
            self.next_timer += 1;
            self.deferred.insert(id, op);
            self.wheel.schedule_after(id, DEFER_RETRY, now);
            return;
        }

        let replicas = self.shared.route(p);
        let me = ServerId::new(node as u32);
        let mut landed = 0usize;
        let mut remote: Vec<ServerId> = Vec::new();
        for r in replicas {
            if !self.shared.is_alive(r.index()) {
                continue; // dead at write time: repaired by the control loop
            }
            if r == me {
                self.shared.stores[node].put(key, seq, &value);
                landed += 1;
            } else {
                remote.push(r);
            }
        }
        {
            let Some(pend) = resolve(&mut self.entries, op) else { return };
            let OpState::Put(w) = &mut pend.state else { return };
            w.p_epoch = epoch;
            w.landed = landed;
            w.failed_live = false;
            w.outstanding = remote.len();
        }
        if remote.is_empty() {
            self.finish_put_attempt(op);
            return;
        }
        let origin = self.shared.dc_of[node];
        for r in remote {
            let f = Frame::ForwardPut { key, seq, origin_dc: origin, value: value.clone() };
            self.forward(op, node, r, f, op_id, Purpose::Put);
        }
    }

    /// Feed one remote replica's outcome into the put. `ok` means the
    /// replica acked Ok; anything else (bad ack, broken channel, peer
    /// timeout) counts as a failed write to that replica, fatal only if
    /// the replica still looks alive — a replica that died mid-write is
    /// the control loop's to repair, exactly as in the threaded plane.
    fn note_put_result(&mut self, op: OpRef, target: ServerId, ok: bool) {
        let alive = self.shared.is_alive(target.index());
        let finished = {
            let Some(pend) = resolve(&mut self.entries, op) else { return };
            let OpState::Put(w) = &mut pend.state else { return };
            w.outstanding -= 1;
            if ok {
                w.landed += 1;
            } else if alive {
                w.failed_live = true;
            }
            w.outstanding == 0
        };
        if finished {
            self.finish_put_attempt(op);
        }
    }

    /// All replicas of one attempt have resolved: ack, refuse, or
    /// restart against a changed route.
    fn finish_put_attempt(&mut self, op: OpRef) {
        let (key, seq, p_epoch, landed, failed_live, restarts, deadline) = {
            let Some(pend) = resolve(&mut self.entries, op) else { return };
            let OpState::Put(w) = &pend.state else { return };
            (w.key, w.seq, w.p_epoch, w.landed, w.failed_live, w.restarts, w.deadline)
        };
        if failed_live || landed == 0 {
            let ack = Frame::Ack { status: AckStatus::Unavailable, seq, value: Vec::new() };
            self.complete(op, ack);
            return;
        }
        let p = partition_of(key, self.shared.partitions);
        if self.shared.route_epoch(p) == p_epoch {
            // No transfer overlapped the write: every live replica of
            // the published route holds it. Safe to acknowledge.
            let ack = Frame::Ack { status: AckStatus::Ok, seq, value: Vec::new() };
            self.complete(op, ack);
            return;
        }
        // The route changed under the write. Replicas that landed keep
        // the value harmlessly (LWW); restart against the new route.
        if restarts >= MAX_RESTARTS || Instant::now() > deadline {
            let ack = Frame::Ack { status: AckStatus::Unavailable, seq, value: Vec::new() };
            self.complete(op, ack);
            return;
        }
        if let Some(pend) = resolve(&mut self.entries, op) {
            if let OpState::Put(w) = &mut pend.state {
                w.restarts += 1;
            }
        }
        self.start_put(op);
    }

    // ---- completion / release -------------------------------------

    /// Record the op's telemetry and span, count its ack, mark it
    /// ready, and release any front-complete prefix of the pipeline.
    fn complete(&mut self, op: OpRef, reply: Frame) {
        let (node, conn_id, kind, op_id, total_us, phases) = {
            let Some(Entry::Client(c)) = self.entries.get_mut(op.slot).and_then(Option::as_mut)
            else {
                return;
            };
            if c.gen != op.gen {
                return;
            }
            let (node, conn_id) = (c.node, c.conn_id);
            let Some(pend) = c.pending.iter_mut().find(|p| p.op_seq == op.op_seq) else {
                return;
            };
            let phases = std::mem::take(&mut pend.phases);
            pend.state = OpState::Ready;
            pend.reply = Some(reply.clone());
            (node, conn_id, pend.kind, pend.op_id, pend.t0.elapsed().as_micros() as f64, phases)
        };
        node::count_ack(&self.shared, &reply);
        node::record_request(&self.shared, node, conn_id, kind, op_id, total_us, &phases, &reply);
        self.release(op.slot);
    }

    /// Flush the front-complete prefix of a connection's pipeline into
    /// its write queue. In-order release is what keeps depth-1 behaviour
    /// identical to the threaded plane and lets untraced pipelined
    /// clients correlate acks by position.
    fn release(&mut self, slot: usize) {
        let Some(Entry::Client(c)) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let mut wrote = false;
        while c.pending.front().is_some_and(|p| p.reply.is_some()) {
            let pend = c.pending.pop_front().expect("front checked");
            let reply = pend.reply.expect("reply checked");
            c.wq.push(reply.encode_traced(pend.op_id));
            wrote = true;
        }
        if wrote && !c.dirty {
            c.dirty = true;
            self.dirty.push(slot);
        }
    }

    // ---- peer channels --------------------------------------------

    /// Queue one forward on the (owner → target) channel, opening it if
    /// needed. Failure to open counts as the forward failing.
    fn forward(
        &mut self,
        op: OpRef,
        owner: usize,
        target: ServerId,
        frame: Frame,
        op_id: Option<u64>,
        purpose: Purpose,
    ) {
        self.shared.counters.forwards.fetch_add(1, Ordering::Relaxed);
        match self.peer_channel(owner, target.index()) {
            Ok(chan) => {
                let Some(Entry::Peer(ch)) = self.entries.get_mut(chan).and_then(Option::as_mut)
                else {
                    return;
                };
                ch.wq.push(frame.encode_traced(op_id));
                ch.tickets.push_back(Ticket { op, target, sent_at: Instant::now(), purpose });
                if !ch.dirty {
                    ch.dirty = true;
                    self.dirty.push(chan);
                }
            }
            Err(_) => self.forward_failed(op, target, purpose),
        }
    }

    fn forward_failed(&mut self, op: OpRef, target: ServerId, purpose: Purpose) {
        match purpose {
            Purpose::Get => self.advance_get(op),
            Purpose::Put => self.note_put_result(op, target, false),
        }
    }

    /// The live channel slot for (owner → peer), connecting lazily.
    fn peer_channel(&mut self, owner: usize, peer: usize) -> io::Result<usize> {
        if let Some(&slot) = self.peer_map.get(&(owner, peer)) {
            if matches!(self.entries.get(slot).and_then(Option::as_ref), Some(Entry::Peer(_))) {
                return Ok(slot);
            }
            self.peer_map.remove(&(owner, peer));
        }
        let stream = TcpStream::connect(self.shared.addrs[peer])?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let slot = self.alloc(Entry::Peer(PeerChan {
            owner,
            peer,
            stream,
            reader: FrameReader::new(MAX_FRAME),
            wq: WriteQueue::new(),
            want_write: false,
            dirty: false,
            tickets: VecDeque::new(),
        }));
        let fd = match self.entries[slot].as_ref() {
            Some(Entry::Peer(p)) => p.stream.as_raw_fd(),
            _ => unreachable!("just allocated"),
        };
        if let Err(e) = self.poller.register(fd, slot as u64, true, false) {
            self.entries[slot] = None;
            self.free.push(slot);
            return Err(e);
        }
        self.peer_map.insert((owner, peer), slot);
        Ok(slot)
    }

    /// Drain a peer channel's acks, matching them FIFO to tickets.
    fn read_peer(&mut self, slot: usize) {
        let mut bodies = Vec::new();
        let mut broken;
        {
            let Some(Entry::Peer(ch)) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            broken = match ch.reader.fill_from(&mut ch.stream) {
                Ok((_, eof)) => eof,
                Err(_) => true,
            };
            loop {
                match ch.reader.next_body() {
                    Ok(Some(b)) => bodies.push(b),
                    Ok(None) => break,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
        }
        for body in bodies {
            let ticket = {
                let Some(Entry::Peer(ch)) = self.entries.get_mut(slot).and_then(Option::as_mut)
                else {
                    return;
                };
                ch.tickets.pop_front()
            };
            let Some(t) = ticket else {
                broken = true; // unsolicited frame: protocol violation
                break;
            };
            match Frame::decode_envelope(&body) {
                Ok((ack @ Frame::Ack { .. }, _)) => {
                    if let Some(pend) = resolve(&mut self.entries, t.op) {
                        pend.phases.forward_us += t.sent_at.elapsed().as_micros() as f64;
                    }
                    match t.purpose {
                        Purpose::Get => self.complete(t.op, ack),
                        Purpose::Put => {
                            let ok = matches!(ack, Frame::Ack { status: AckStatus::Ok, .. });
                            self.note_put_result(t.op, t.target, ok);
                        }
                    }
                }
                _ => {
                    // Non-ack or garbage: the channel is unusable. Put
                    // the ticket back so fail_channel routes it too.
                    if let Some(Entry::Peer(ch)) =
                        self.entries.get_mut(slot).and_then(Option::as_mut)
                    {
                        ch.tickets.push_front(t);
                    }
                    broken = true;
                    break;
                }
            }
        }
        if broken {
            self.fail_channel(slot);
        }
    }

    /// Tear one peer channel down and fail every outstanding ticket:
    /// gets walk on to their next candidate, puts count a failed write.
    fn fail_channel(&mut self, slot: usize) {
        let Some(Entry::Peer(mut ch)) = self.entries.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.deregister(ch.stream.as_raw_fd());
        self.peer_map.remove(&(ch.owner, ch.peer));
        self.free.push(slot);
        for t in ch.tickets.drain(..) {
            self.forward_failed(t.op, t.target, t.purpose);
        }
    }

    /// Periodic sweep: a channel whose oldest ticket exceeded the peer
    /// timeout is failed wholesale (the replica is wedged or the ack
    /// stream stalled — either way FIFO correlation is broken).
    fn scan_peer_timeouts(&mut self) {
        let now = Instant::now();
        let mut expired = Vec::new();
        for (slot, entry) in self.entries.iter().enumerate() {
            if let Some(Entry::Peer(ch)) = entry {
                if let Some(t) = ch.tickets.front() {
                    if now.duration_since(t.sent_at) > node::PEER_TIMEOUT {
                        expired.push(slot);
                    }
                }
            }
        }
        for slot in expired {
            self.fail_channel(slot);
        }
    }

    // ---- write path -----------------------------------------------

    fn flush_dirty(&mut self) {
        // fail_channel / close paths may push more dirty slots while we
        // flush; drain until quiescent.
        while let Some(slot) = self.dirty.pop() {
            self.flush_slot(slot);
        }
    }

    fn flush_slot(&mut self, slot: usize) {
        enum Outcome {
            Ok,
            CloseClient,
            FailPeer,
        }
        let outcome = {
            let Some(entry) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let (stream, wq, want_write, dirty, is_client) = match entry {
                Entry::Client(c) => {
                    (&mut c.stream, &mut c.wq, &mut c.want_write, &mut c.dirty, true)
                }
                Entry::Peer(p) => {
                    (&mut p.stream, &mut p.wq, &mut p.want_write, &mut p.dirty, false)
                }
                Entry::Listener { .. } => return,
            };
            *dirty = false;
            match wq.flush(stream) {
                Ok(drained) => {
                    let fd = stream.as_raw_fd();
                    if drained && *want_write {
                        *want_write = false;
                        let readable = match entry {
                            Entry::Client(c) => !c.eof,
                            _ => true,
                        };
                        let _ = self.poller.modify(fd, slot as u64, readable, false);
                    } else if !drained && !*want_write {
                        *want_write = true;
                        let readable = match entry {
                            Entry::Client(c) => !c.eof,
                            _ => true,
                        };
                        let _ = self.poller.modify(fd, slot as u64, readable, true);
                    }
                    match entry {
                        Entry::Client(c) if c.eof && c.pending.is_empty() && c.wq.is_empty() => {
                            Outcome::CloseClient
                        }
                        _ => Outcome::Ok,
                    }
                }
                Err(_) => {
                    if is_client {
                        Outcome::CloseClient
                    } else {
                        Outcome::FailPeer
                    }
                }
            }
        };
        match outcome {
            Outcome::Ok => {}
            Outcome::CloseClient => self.close_client(slot),
            Outcome::FailPeer => self.fail_channel(slot),
        }
    }

    fn close_client(&mut self, slot: usize) {
        let Some(Entry::Client(c)) = self.entries.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.deregister(c.stream.as_raw_fd());
        self.free.push(slot);
        // In-flight tickets referencing this conn resolve to nothing:
        // slot generations make their completions no-ops.
    }
}
