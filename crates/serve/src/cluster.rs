//! The live cluster: shared state, startup, and clean shutdown.
//!
//! [`Cluster::start`] builds the scaled paper topology, places
//! partitions on the consistent-hash ring, floor-replicates them to
//! `r_min` copies (so a single-server kill never strands a partition),
//! then turns every topology server into a node thread behind its own
//! loopback TCP listener and starts the online control loop.
//!
//! ## Shared state and locking
//!
//! The data plane (node threads) and the control plane (the RFH loop)
//! meet in [`Shared`]:
//!
//! * `alive[i]` — fail-stop flags; a killed node accepts connections
//!   and immediately drops them, and serves nothing.
//! * `routes` — the published replica map (partition → servers, holder
//!   first), read per request, rewritten by the control loop.
//! * `locks[p]` — one mutex per partition. A threaded-plane
//!   coordinator holds it for the whole write-all-replicas sequence;
//!   the control loop holds it while copying partition data and
//!   republishing the route. This is what makes "zero lost
//!   acknowledged writes" provable: no write can slip between a
//!   transfer's copy and its route flip.
//! * `route_epochs[p]` — one atomic epoch per partition, even when
//!   the route is stable, odd while a transfer holds `locks[p]`. The
//!   reactor plane cannot park an event loop on a mutex across peer
//!   round-trips, so it proves the same no-slip property optimistically:
//!   a put defers while the epoch is odd, snapshots the even value,
//!   writes all live replicas, and acks only if the epoch is still the
//!   snapshot — otherwise a transfer raced it and the attempt restarts.
//!   The control loop bumps to odd (under the lock) before copying and
//!   publishes +2 after the route flip, so the validation window
//!   brackets exactly the critical section the mutex covers.
//! * `load` — the live `q_ijt` counters ([`rfh_workload::SharedLoad`])
//!   the control loop drains into the real `TrafficEngine`.
//!
//! Lock order is always partition lock → store mutex; forward handlers
//! touch only their own store, so no cycle exists.

use crate::config::ClusterConfig;
use crate::control::{ControlStats, Controller};
use crate::http;
use crate::node;
use crate::store::{partition_of, NodeStore, Versioned};
use crate::telemetry::{ClusterTelemetry, TickSample};
use crate::wal::StorageSnapshot;
use crate::wire::Conn;
use rfh_core::{Action, ReplicaManager};
use rfh_faults::FaultPlan;
use rfh_obs::{MetricsRegistry, SpanLog};
use rfh_ring::ConsistentHashRing;
use rfh_stats::min_replica_count;
use rfh_topology::{scaled_paper_topology, Topology};
use rfh_types::{PartitionId, Result, RfhError, ServerId};
use rfh_workload::SharedLoad;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Tokens per server on the placement ring (same constant the offline
/// simulator uses).
pub const RING_TOKENS: u32 = 64;

/// Monotonic counters the data plane bumps per request.
#[derive(Debug, Default)]
pub struct Counters {
    /// Client get requests coordinated.
    pub gets: AtomicU64,
    /// Client put requests coordinated.
    pub puts: AtomicU64,
    /// Requests forwarded to a replica on another node.
    pub forwards: AtomicU64,
    /// Acks sent with status Ok.
    pub acks_ok: AtomicU64,
    /// Acks sent with status NotFound.
    pub acks_not_found: AtomicU64,
    /// Acks sent with status Unavailable.
    pub acks_unavailable: AtomicU64,
}

/// State shared between node threads and the control loop.
pub(crate) struct Shared {
    /// Partition count (shape of `routes`, `locks`, `load`).
    pub partitions: u32,
    /// Node index → datacenter id.
    pub dc_of: Vec<u32>,
    /// Fail-stop flags, one per node.
    pub alive: Vec<AtomicBool>,
    /// Published replica sets, holder first.
    pub routes: RwLock<Vec<Vec<ServerId>>>,
    /// Per-partition route epochs for the reactor plane's optimistic
    /// writes. Even = route stable; odd = a transfer for the partition
    /// is in progress (the control loop stores odd before copying,
    /// bumps to the next even when it republishes). A reactor
    /// coordinator snapshots an even epoch before writing and acks only
    /// if the epoch is unchanged once every replica landed — any route
    /// flip in between forces a (LWW-idempotent) restart, which is how
    /// the plane proves zero lost acknowledged writes without holding
    /// the partition lock across peer round-trips.
    pub route_epochs: Vec<AtomicU64>,
    /// Per-partition mutex serializing writes against transfers.
    pub locks: Vec<Mutex<()>>,
    /// Live `q_ijt` counters.
    pub load: SharedLoad,
    /// Per-node shard maps.
    pub stores: Vec<NodeStore>,
    /// Listener address of each node.
    pub addrs: Vec<SocketAddr>,
    /// Per-source-node pools of idle peer connections.
    pub peers: Vec<Mutex<HashMap<usize, Vec<Conn<TcpStream>>>>>,
    /// Request counters.
    pub counters: Counters,
    /// The telemetry plane (no per-node state when disabled).
    pub telemetry: ClusterTelemetry,
    /// Set once at shutdown; every thread polls it.
    pub shutdown: AtomicBool,
}

impl Shared {
    /// Route row for one partition (cloned snapshot).
    pub fn route(&self, p: PartitionId) -> Vec<ServerId> {
        self.routes.read().expect("routes lock")[p.index()].clone()
    }

    /// Whether node `i` is currently alive.
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive[i].load(Ordering::Acquire)
    }

    /// Current route epoch of `p` (even = stable, odd = transferring).
    pub fn route_epoch(&self, p: PartitionId) -> u64 {
        self.route_epochs[p.index()].load(Ordering::SeqCst)
    }

    /// Mark a route change as in progress: flip the epoch odd. Called
    /// by the control loop under the partition lock, before copying.
    pub fn begin_route_change(&self, p: PartitionId) {
        self.route_epochs[p.index()].fetch_or(1, Ordering::SeqCst);
    }

    /// Settle the epoch at the next even value — from either parity —
    /// invalidating every optimistic write that began before this
    /// moment. Called after each route publish (and after an aborted
    /// change, where the spurious invalidation is harmless).
    pub fn end_route_change(&self, p: PartitionId) {
        let e = &self.route_epochs[p.index()];
        e.store((e.load(Ordering::SeqCst) | 1) + 1, Ordering::SeqCst);
    }
}

/// What startup recovery did, when the cluster runs durable storage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Nodes whose logs replayed at least one record.
    pub nodes_with_data: usize,
    /// WAL + checkpoint records replayed across all nodes.
    pub records_replayed: u64,
    /// Invalid log tails dropped (each kept exactly its durable prefix).
    pub torn_tails_truncated: u64,
    /// Entries the reconcile pass copied onto current route members
    /// (recovered data can live off-route when the fresh ring disagrees
    /// with kill-time placement).
    pub reconciled_entries: u64,
    /// Partitions that needed any reconciliation.
    pub reconciled_partitions: u64,
    /// Wall-clock for replay + reconcile, in milliseconds.
    pub duration_ms: u64,
}

impl RecoveryReport {
    /// One-line human summary (the `rfh serve` startup banner).
    pub fn render(&self) -> String {
        format!(
            "recovery: {} nodes with data, {} records replayed, {} torn tails truncated, \
             {} entries reconciled across {} partitions, {} ms",
            self.nodes_with_data,
            self.records_replayed,
            self.torn_tails_truncated,
            self.reconciled_entries,
            self.reconciled_partitions,
            self.duration_ms
        )
    }
}

/// One node's identity as seen by clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInfo {
    /// The topology server this node incarnates.
    pub server: ServerId,
    /// Its datacenter.
    pub dc: u32,
    /// Its loopback listener address.
    pub addr: SocketAddr,
}

/// Final accounting returned by [`Cluster::shutdown`].
#[derive(Debug)]
pub struct ServeSummary {
    /// Node count at startup.
    pub nodes: usize,
    /// Nodes alive at shutdown.
    pub alive_nodes: usize,
    /// Control ticks executed.
    pub ticks: u64,
    /// Client gets coordinated.
    pub gets: u64,
    /// Client puts coordinated.
    pub puts: u64,
    /// Peer forwards performed.
    pub forwards: u64,
    /// Ok acks sent.
    pub acks_ok: u64,
    /// NotFound acks sent.
    pub acks_not_found: u64,
    /// Unavailable acks sent.
    pub acks_unavailable: u64,
    /// Replicate actions executed online.
    pub replications: u64,
    /// Migrate actions executed online.
    pub migrations: u64,
    /// Suicide actions executed online.
    pub suicides: u64,
    /// Deferred transfers completed by the repair queue.
    pub repairs_completed: u64,
    /// Transfers dropped after exhausting retries.
    pub dead_letters: u64,
    /// Invariant-auditor findings.
    pub invariant_violations: u64,
    /// Partitions restored from the archive (all replicas lost).
    pub data_restores: u64,
    /// Kill-then-restart cycles completed by the fault plan's
    /// `restart_after` verb.
    pub restarts: u64,
    /// Total replicas placed at shutdown.
    pub replicas_total: usize,
    /// Aggregated `serve.storage.*` counters, `None` when persistence
    /// is off.
    pub storage: Option<StorageSnapshot>,
    /// The control loop's metrics registry (serve.* counters).
    pub registry: MetricsRegistry,
}

impl ServeSummary {
    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("nodes                 {}\n", self.nodes));
        out.push_str(&format!("alive_at_shutdown     {}\n", self.alive_nodes));
        out.push_str(&format!("control_ticks         {}\n", self.ticks));
        out.push_str(&format!("gets                  {}\n", self.gets));
        out.push_str(&format!("puts                  {}\n", self.puts));
        out.push_str(&format!("forwards              {}\n", self.forwards));
        out.push_str(&format!("acks_ok               {}\n", self.acks_ok));
        out.push_str(&format!("acks_not_found        {}\n", self.acks_not_found));
        out.push_str(&format!("acks_unavailable      {}\n", self.acks_unavailable));
        out.push_str(&format!("replications          {}\n", self.replications));
        out.push_str(&format!("migrations            {}\n", self.migrations));
        out.push_str(&format!("suicides              {}\n", self.suicides));
        out.push_str(&format!("repairs_completed     {}\n", self.repairs_completed));
        out.push_str(&format!("dead_letters          {}\n", self.dead_letters));
        out.push_str(&format!("invariant_violations  {}\n", self.invariant_violations));
        out.push_str(&format!("data_restores         {}\n", self.data_restores));
        out.push_str(&format!("replicas_total        {}\n", self.replicas_total));
        // Durability lines appear only when the feature is exercised,
        // keeping persistence-off output byte-identical to older builds.
        if self.restarts > 0 {
            out.push_str(&format!("restarts              {}\n", self.restarts));
        }
        if let Some(s) = &self.storage {
            out.push_str(&format!("segments_written      {}\n", s.segments_written));
            out.push_str(&format!("records_appended      {}\n", s.records_appended));
            out.push_str(&format!("bytes_checkpointed    {}\n", s.bytes_checkpointed));
            out.push_str(&format!("records_replayed      {}\n", s.records_replayed));
            out.push_str(&format!("torn_tails_truncated  {}\n", s.torn_tails_truncated));
        }
        out
    }
}

/// A running cluster. Dropping without [`shutdown`](Cluster::shutdown)
/// leaks threads; always shut down.
pub struct Cluster {
    shared: Arc<Shared>,
    infos: Vec<NodeInfo>,
    /// Threaded-plane accept threads (empty under the reactor plane).
    listeners: Vec<JoinHandle<()>>,
    /// Threaded-plane connection handlers (empty under the reactor plane).
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// The epoll data plane, when `data_plane = "reactor"`.
    reactor: Option<crate::reactor::ReactorPlane>,
    control: JoinHandle<ControlStats>,
    /// Per-node `/metrics` endpoints (empty when telemetry is off).
    metrics_addrs: Vec<SocketAddr>,
    /// The controller's `/metrics` + `/timeline` + `/spans` endpoint.
    controller_metrics_addr: Option<SocketAddr>,
    http_threads: Vec<JoinHandle<()>>,
    /// What startup replay + reconcile did (all zero with persistence
    /// off or a cold data directory).
    recovery: RecoveryReport,
}

impl Cluster {
    /// Build and start a cluster. Returns once every listener is bound
    /// and the control loop is running — the cluster is immediately
    /// serveable (partitions already at their replication floor).
    pub fn start(config: &ClusterConfig, faults: FaultPlan) -> Result<Cluster> {
        Cluster::start_bound(config, faults, None)
    }

    /// Like [`start`](Cluster::start), but pins each node's listener to
    /// a given address instead of an ephemeral port. This is the
    /// process-restart path: a relaunched `rfh serve` reads the address
    /// file its previous incarnation wrote and rebinds every node where
    /// clients already point, so the file never has to be regenerated.
    /// Every listener (pinned or ephemeral) binds with `SO_REUSEADDR`,
    /// and accepted sockets inherit the flag — that is what lets the
    /// rebind succeed while the killed process's connections still
    /// linger in `TIME-WAIT`.
    pub fn start_bound(
        config: &ClusterConfig,
        faults: FaultPlan,
        bind_addrs: Option<&[SocketAddr]>,
    ) -> Result<Cluster> {
        config.validate()?;
        let cfg = config.sim_config();
        let topo =
            scaled_paper_topology(config.servers_per_rack, config.capacity_spread, config.seed)?;
        let n = topo.server_count();
        let dc_count = topo.datacenters().len() as u32;

        let mut ring = ConsistentHashRing::new(RING_TOKENS);
        for s in topo.servers() {
            if s.alive {
                ring.join(s.id);
            }
        }
        let holders = (0..cfg.partitions)
            .map(|p| ring.primary(PartitionId::new(p)))
            .collect::<Result<Vec<_>>>()?;
        let mut manager = ReplicaManager::new(&cfg, n, holders)?;
        let r_min = min_replica_count(cfg.failure_rate, cfg.min_availability) as usize;
        floor_replicate(&topo, &ring, &mut manager, cfg.partitions, r_min);

        // Bind every node's listener before any thread starts, so the
        // address list is complete from the first request on.
        if let Some(want) = bind_addrs {
            if want.len() != n {
                return Err(RfhError::InvalidConfig {
                    parameter: "addr_file",
                    reason: format!("address file lists {} nodes, topology has {n}", want.len()),
                });
            }
        }
        let mut listeners_raw = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for i in 0..n {
            let want = match bind_addrs {
                Some(want) => want[i],
                None => "127.0.0.1:0".parse().expect("loopback template addr"),
            };
            let l = bind_reuseaddr(want)
                .map_err(|e| RfhError::Io(format!("bind loopback listener {want}: {e}")))?;
            l.set_nonblocking(true).map_err(|e| RfhError::Io(e.to_string()))?;
            addrs.push(l.local_addr().map_err(|e| RfhError::Io(e.to_string()))?);
            listeners_raw.push(l);
        }

        // Durable mode: open (and recover) every node's WAL before the
        // data plane exists, then reconcile what survived onto the
        // fresh placement — the new ring need not agree with where the
        // killed incarnation kept each partition.
        let recover_t0 = std::time::Instant::now();
        let stores: Vec<NodeStore> = match &config.persistence {
            None => (0..n).map(|_| NodeStore::new()).collect(),
            Some(p) => (0..n).map(|i| NodeStore::durable(p, i)).collect::<Result<_>>()?,
        };

        let routes: Vec<Vec<ServerId>> =
            (0..cfg.partitions).map(|p| manager.replicas(PartitionId::new(p)).to_vec()).collect();

        let mut recovery = RecoveryReport::default();
        if config.persistence.is_some() {
            for s in &stores {
                if let Some(stats) = s.storage() {
                    let snap = stats.snapshot();
                    if snap.records_replayed > 0 {
                        recovery.nodes_with_data += 1;
                    }
                    recovery.records_replayed += snap.records_replayed;
                    recovery.torn_tails_truncated += snap.torn_tails_truncated;
                }
            }
            reconcile_recovered(&stores, &routes, cfg.partitions, &mut recovery);
            recovery.duration_ms = recover_t0.elapsed().as_millis() as u64;
        }

        let shared = Arc::new(Shared {
            partitions: cfg.partitions,
            dc_of: topo.servers().iter().map(|s| s.datacenter.0).collect(),
            alive: topo.servers().iter().map(|s| AtomicBool::new(s.alive)).collect(),
            routes: RwLock::new(routes),
            route_epochs: (0..cfg.partitions).map(|_| AtomicU64::new(0)).collect(),
            locks: (0..cfg.partitions).map(|_| Mutex::new(())).collect(),
            load: SharedLoad::zeros(cfg.partitions, dc_count),
            stores,
            addrs,
            peers: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            counters: Counters::default(),
            telemetry: if config.telemetry {
                ClusterTelemetry::on(n, cfg.partitions)
            } else {
                ClusterTelemetry::off()
            },
            shutdown: AtomicBool::new(false),
        });

        let infos: Vec<NodeInfo> = topo
            .servers()
            .iter()
            .map(|s| NodeInfo {
                server: s.id,
                dc: s.datacenter.0,
                addr: shared.addrs[s.id.index()],
            })
            .collect();

        let handlers = Arc::new(Mutex::new(Vec::new()));
        let mut listeners = Vec::new();
        let mut reactor = None;
        // The reactor plane is epoll-only; elsewhere the config value
        // silently degrades to the (portable) threaded plane.
        let use_reactor =
            config.data_plane == crate::config::DataPlane::Reactor && cfg!(target_os = "linux");
        if use_reactor {
            reactor = Some(
                crate::reactor::ReactorPlane::start(Arc::clone(&shared), listeners_raw)
                    .map_err(|e| RfhError::Io(format!("start reactor plane: {e}")))?,
            );
        } else {
            listeners.reserve(n);
            for (i, l) in listeners_raw.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                let handlers = Arc::clone(&handlers);
                listeners.push(
                    std::thread::Builder::new()
                        .name(format!("rfh-node-{i}"))
                        .spawn(move || node::run_listener(i, l, shared, handlers))
                        .map_err(|e| RfhError::Io(format!("spawn node thread: {e}")))?,
                );
            }
        }

        // Telemetry exposition: one tiny HTTP/1.0 endpoint per node
        // plus one for the controller. Disabled ⇒ nothing binds and no
        // extra thread exists.
        let mut metrics_addrs = Vec::new();
        let mut controller_metrics_addr = None;
        let mut http_threads = Vec::new();
        if shared.telemetry.enabled() {
            for i in 0..n {
                let (listener, addr) =
                    http::bind().map_err(|e| RfhError::Io(format!("bind metrics: {e}")))?;
                metrics_addrs.push(addr);
                let shared2 = Arc::clone(&shared);
                let shared3 = Arc::clone(&shared);
                http_threads.push(
                    std::thread::Builder::new()
                        .name(format!("rfh-metrics-{i}"))
                        .spawn(move || {
                            http::serve(
                                listener,
                                move || shared2.shutdown.load(Ordering::Acquire),
                                move |path| node_metrics_route(&shared3, i, path),
                            )
                        })
                        .map_err(|e| RfhError::Io(format!("spawn metrics thread: {e}")))?,
                );
            }
            let (listener, addr) =
                http::bind().map_err(|e| RfhError::Io(format!("bind metrics: {e}")))?;
            controller_metrics_addr = Some(addr);
            let shared2 = Arc::clone(&shared);
            let shared3 = Arc::clone(&shared);
            http_threads.push(
                std::thread::Builder::new()
                    .name("rfh-metrics-ctl".into())
                    .spawn(move || {
                        http::serve(
                            listener,
                            move || shared2.shutdown.load(Ordering::Acquire),
                            move |path| controller_route(&shared3, path),
                        )
                    })
                    .map_err(|e| RfhError::Io(format!("spawn metrics thread: {e}")))?,
            );
        }

        let controller = Controller::new(
            Arc::clone(&shared),
            topo,
            ring,
            manager,
            cfg,
            faults,
            r_min,
            config.threads as usize,
            config.placement,
            config.planner(),
        );
        let interval = std::time::Duration::from_millis(config.control_interval_ms);
        let control = std::thread::Builder::new()
            .name("rfh-control".into())
            .spawn(move || controller.run(interval))
            .map_err(|e| RfhError::Io(format!("spawn control thread: {e}")))?;

        Ok(Cluster {
            shared,
            infos,
            listeners,
            handlers,
            reactor,
            control,
            metrics_addrs,
            controller_metrics_addr,
            http_threads,
            recovery,
        })
    }

    /// What startup recovery replayed and reconciled. All-zero when
    /// persistence is off or the data directory was empty.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Per-node identity and address, for clients and the address file.
    pub fn node_infos(&self) -> &[NodeInfo] {
        &self.infos
    }

    /// Render the address file consumed by `rfh loadgen --connect`:
    /// one `server dc addr` line per node.
    pub fn render_addr_file(&self) -> String {
        let mut out = String::new();
        for i in &self.infos {
            out.push_str(&format!("{} {} {}\n", i.server.0, i.dc, i.addr));
        }
        out
    }

    /// Per-node `/metrics` addresses, parallel to
    /// [`node_infos`](Cluster::node_infos). Empty when telemetry is
    /// off.
    pub fn metrics_addrs(&self) -> &[SocketAddr] {
        &self.metrics_addrs
    }

    /// The controller telemetry endpoint (`/metrics`, `/timeline`,
    /// `/spans`), `None` when telemetry is off.
    pub fn controller_metrics_addr(&self) -> Option<SocketAddr> {
        self.controller_metrics_addr
    }

    /// Render the telemetry address file written by
    /// `rfh serve --telemetry-addrs`: a `controller <addr>` line, then
    /// one `node <server> <addr>` line per node.
    pub fn render_telemetry_addr_file(&self) -> String {
        let mut out = String::new();
        if let Some(addr) = self.controller_metrics_addr {
            out.push_str(&format!("controller {addr}\n"));
        }
        for (info, addr) in self.infos.iter().zip(&self.metrics_addrs) {
            out.push_str(&format!("node {} {addr}\n", info.server.0));
        }
        out
    }

    /// The shared span log — complete chains in self-hosted runs,
    /// where client spans land in the same log as server spans.
    pub fn span_log(&self) -> Arc<SpanLog> {
        Arc::clone(self.shared.telemetry.spans())
    }

    /// The controller's timeline so far, oldest tick first.
    pub fn timeline(&self) -> Vec<TickSample> {
        self.shared.telemetry.timeline()
    }

    /// The controller's timeline as JSONL.
    pub fn timeline_jsonl(&self) -> String {
        self.shared.telemetry.timeline_jsonl()
    }

    /// Stop everything: control loop first (one final tick), then
    /// listeners and handlers. Returns the run's accounting.
    pub fn shutdown(self) -> Result<ServeSummary> {
        self.shared.shutdown.store(true, Ordering::Release);
        let stats = self
            .control
            .join()
            .map_err(|_| RfhError::Simulation("control loop panicked".into()))?;
        for h in self.listeners {
            h.join().map_err(|_| RfhError::Simulation("node listener panicked".into()))?;
        }
        if let Some(plane) = self.reactor {
            plane.shutdown()?;
        }
        for h in self.http_threads {
            h.join().map_err(|_| RfhError::Simulation("metrics endpoint panicked".into()))?;
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handlers lock"));
        for h in handlers {
            h.join().map_err(|_| RfhError::Simulation("connection handler panicked".into()))?;
        }
        let c = &self.shared.counters;
        let alive_nodes = self.shared.alive.iter().filter(|a| a.load(Ordering::Acquire)).count();
        let storage = {
            let mut agg = StorageSnapshot::default();
            let mut durable = false;
            for s in &self.shared.stores {
                if let Some(stats) = s.storage() {
                    agg.add(stats.snapshot());
                    durable = true;
                }
            }
            durable.then_some(agg)
        };
        Ok(ServeSummary {
            nodes: self.shared.alive.len(),
            alive_nodes,
            ticks: stats.ticks,
            gets: c.gets.load(Ordering::Relaxed),
            puts: c.puts.load(Ordering::Relaxed),
            forwards: c.forwards.load(Ordering::Relaxed),
            acks_ok: c.acks_ok.load(Ordering::Relaxed),
            acks_not_found: c.acks_not_found.load(Ordering::Relaxed),
            acks_unavailable: c.acks_unavailable.load(Ordering::Relaxed),
            replications: stats.replications,
            migrations: stats.migrations,
            suicides: stats.suicides,
            repairs_completed: stats.repairs_completed,
            dead_letters: stats.dead_letters,
            invariant_violations: stats.invariant_violations,
            data_restores: stats.data_restores,
            restarts: stats.restarts,
            replicas_total: stats.replicas_total,
            storage,
            registry: stats.registry,
        })
    }
}

/// `GET /metrics` on a node endpoint: the node's own series in
/// Prometheus text format. Rebuilt per scrape from lifetime totals, so
/// repeated scrapes are idempotent and monotone.
fn node_metrics_route(shared: &Shared, node: usize, path: &str) -> Option<String> {
    if path != "/metrics" {
        return None;
    }
    let tel = shared.telemetry.node(node)?;
    let mut registry = MetricsRegistry::new();
    tel.collect_metrics(&mut registry);
    if let Some(stats) = shared.stores[node].storage() {
        stats.snapshot().collect_metrics(&mut registry);
    }
    Some(registry.render_prometheus())
}

/// The controller endpoint: `/metrics` (the control loop's registry,
/// republished every tick), `/timeline` (the ring as JSONL) and
/// `/spans` (the span log as JSONL).
fn controller_route(shared: &Shared, path: &str) -> Option<String> {
    match path {
        "/metrics" => Some(shared.telemetry.registry().render_prometheus()),
        "/timeline" => Some(shared.telemetry.timeline_jsonl()),
        "/spans" => Some(shared.telemetry.spans().to_jsonl()),
        _ => None,
    }
}

/// Reconcile recovered data with the fresh placement: union every
/// surviving entry per partition (LWW across nodes), then merge each
/// partition's union into all of its current route members. Recovered
/// data can sit on a node the fresh ring no longer routes that
/// partition to, and a route member may have lost its copy to a torn
/// tail — the union heals both directions. Merged winners are logged by
/// the stores, so the reconciled state is itself durable. Off-route
/// leftovers are kept (they are correct data and cost nothing); the
/// control loop's usual suicide path never sees them because they were
/// never placed.
fn reconcile_recovered(
    stores: &[NodeStore],
    routes: &[Vec<ServerId>],
    partitions: u32,
    recovery: &mut RecoveryReport,
) {
    let mut union: HashMap<PartitionId, HashMap<u64, Versioned>> = HashMap::new();
    for store in stores {
        for (k, v) in store.snapshot_all() {
            let slot = union.entry(partition_of(k, partitions)).or_default();
            match slot.get(&k) {
                Some(cur) if cur.seq >= v.seq => {}
                _ => {
                    slot.insert(k, v);
                }
            }
        }
    }
    for (p, entries) in union {
        let entries: Vec<(u64, Versioned)> = entries.into_iter().collect();
        let mut healed = 0u64;
        for &s in &routes[p.index()] {
            healed += stores[s.index()].merge(&entries) as u64;
        }
        if healed > 0 {
            recovery.reconciled_entries += healed;
            recovery.reconciled_partitions += 1;
        }
    }
}

/// Bind a TCP listener with `SO_REUSEADDR` set *before* `bind` — std
/// offers no pre-bind socket options, so this goes through the raw
/// libc symbols std itself links. Accepted connections inherit the
/// flag; without it on *both* incarnations' sockets, a process
/// restarted after `SIGKILL` cannot rebind its old port until the
/// kernel retires the dead incarnation's `TIME-WAIT` entries.
#[cfg(unix)]
fn bind_reuseaddr(addr: SocketAddr) -> std::io::Result<TcpListener> {
    use std::os::fd::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    /// `struct sockaddr_in` (fields in network byte order).
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    let SocketAddr::V4(v4) = addr else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "node listeners are IPv4 loopback only",
        ));
    };
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        let sa = SockaddrIn {
            sin_family: AF_INET as u16,
            sin_port: v4.port().to_be(),
            // octets() is already big-endian byte order; keep it as-is.
            sin_addr: u32::from_ne_bytes(v4.ip().octets()),
            sin_zero: [0; 8],
        };
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) < 0
            || bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) < 0
            || listen(fd, 128) < 0
        {
            let err = std::io::Error::last_os_error();
            close(fd);
            return Err(err);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// Non-unix fallback: a plain bind (no restart-rebind guarantee).
#[cfg(not(unix))]
fn bind_reuseaddr(addr: SocketAddr) -> std::io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// Grow every partition to `r_min` replicas before serving starts,
/// one ring successor at a time, cycling the manager's per-epoch
/// bandwidth budget as needed. Stores are empty at this point, so no
/// data moves — only the replica map.
fn floor_replicate(
    topo: &Topology,
    ring: &ConsistentHashRing,
    manager: &mut ReplicaManager,
    partitions: u32,
    r_min: usize,
) {
    for _round in 0..r_min.max(1) * 4 {
        manager.begin_epoch();
        let mut progressed = false;
        for p in (0..partitions).map(PartitionId::new) {
            if manager.replica_count(p) >= r_min {
                continue;
            }
            let target =
                ring.successors(p, topo.server_count()).ok().into_iter().flatten().find(|&s| {
                    topo.servers()[s.index()].alive
                        && !manager.hosts(p, s)
                        && manager.can_accept(p, s)
                });
            if let Some(target) = target {
                if manager.apply(topo, Action::Replicate { partition: p, target }).is_ok() {
                    progressed = true;
                }
            }
        }
        let done = (0..partitions).all(|p| manager.replica_count(PartitionId::new(p)) >= r_min);
        if done || !progressed {
            break;
        }
    }
    manager.begin_epoch();
}
