//! Node threads: the data plane.
//!
//! Each topology server runs one listener thread; every accepted
//! connection gets a handler thread. A node that receives a client
//! `Get`/`Put` acts as the *coordinator*: it charges the request to
//! `q_ijt` at its own datacenter (the requester column the traffic
//! equations use), takes the partition lock, and reads or writes the
//! published replica set — forwarding to peer nodes over the same wire
//! protocol when a replica lives elsewhere.
//!
//! Writes ack only after landing on **every live replica** of the
//! route row (read under the partition lock). Combined with transfers
//! copying full partitions under that same lock, an acknowledged write
//! is durable as long as any replica that held it — alive or dead,
//! since dead stores double as the archive — survives in memory.

use crate::cluster::Shared;
use crate::store::partition_of;
use crate::telemetry::{PhaseTimings, ReqKind};
use crate::wire::{AckStatus, Conn, Frame};
use rfh_obs::SpanEvent;
use rfh_types::{DatacenterId, ServerId};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a blocked handler read waits before re-checking the
/// shutdown and alive flags.
const POLL_TIMEOUT: Duration = Duration::from_millis(25);

/// Read timeout for coordinator → replica round-trips (both planes).
pub(crate) const PEER_TIMEOUT: Duration = Duration::from_millis(2_000);

/// Idle peer connections kept per (source, destination) pair.
const PEER_POOL_CAP: usize = 4;

/// Cluster-wide connection counter; a connection's id picks its
/// telemetry shard, spreading concurrent handlers over the shards.
static CONN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Allocate the next connection id (both data planes share the
/// sequence, so telemetry sharding behaves identically under either).
pub(crate) fn next_conn_id() -> u64 {
    CONN_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Queue (partition-lock wait) and forward (peer round-trip) time of
/// one request, accumulated along the serve path; the handle phase is
/// total minus both.
#[derive(Default)]
pub(crate) struct PhaseAcc {
    pub queue_us: f64,
    pub forward_us: f64,
}

/// The accept loop of one node. Fail-stop is modelled as
/// accept-then-drop: a dead node's listener stays bound (its port must
/// not be reused) but every connection is closed immediately and no
/// frame is served.
pub(crate) fn run_listener(
    node: usize,
    listener: TcpListener,
    shared: Arc<Shared>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if !shared.is_alive(node) {
                    drop(stream); // fail-stop: refuse service
                    continue;
                }
                let shared2 = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("rfh-conn-{node}"))
                    .spawn(move || handle_conn(node, stream, shared2));
                match handle {
                    Ok(h) => handlers.lock().expect("handlers lock").push(h),
                    Err(_) => return,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

fn handle_conn(node: usize, stream: TcpStream, shared: Arc<Shared>) {
    if stream.set_read_timeout(Some(POLL_TIMEOUT)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let conn_id = CONN_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut conn = Conn::new(stream);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match conn.recv_envelope() {
            Ok(None) => return,
            Ok(Some((frame, op_id))) => {
                if !shared.is_alive(node) {
                    return; // killed mid-connection: drop without reply
                }
                let reply = serve_frame(node, conn_id, frame, op_id, &shared);
                // The ack echoes the request's op-ID, so the client can
                // close its span without tracking request state.
                if conn.send_traced(&reply, op_id).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}

pub(crate) fn serve_frame(
    node: usize,
    conn_id: u64,
    frame: Frame,
    op_id: Option<u64>,
    shared: &Shared,
) -> Frame {
    let t0 = Instant::now();
    let mut phases = PhaseAcc::default();
    let (kind, reply) = match frame {
        Frame::Get { key } => (ReqKind::Get, coordinate_get(node, key, op_id, shared, &mut phases)),
        Frame::Put { key, seq, value } => {
            (ReqKind::Put, coordinate_put(node, key, seq, &value, op_id, shared, &mut phases))
        }
        // Forwarded requests touch only the local shard; the
        // coordinator already charged q_ijt at the origin datacenter.
        Frame::ForwardGet { key, origin_dc: _ } => (
            ReqKind::ForwardGet,
            match shared.stores[node].get(key) {
                Some(v) => Frame::Ack { status: AckStatus::Ok, seq: v.seq, value: v.value },
                None => Frame::Ack { status: AckStatus::NotFound, seq: 0, value: Vec::new() },
            },
        ),
        Frame::ForwardPut { key, seq, origin_dc: _, value } => {
            // An older seq losing LWW is still success: the store
            // holds a version at least as new as the write.
            let _ = shared.stores[node].put(key, seq, &value);
            (ReqKind::ForwardPut, Frame::Ack { status: AckStatus::Ok, seq, value: Vec::new() })
        }
        Frame::Ack { .. } => {
            // An unsolicited ack is a protocol violation; answer with
            // Unavailable rather than crashing the handler.
            return Frame::Ack { status: AckStatus::Unavailable, seq: 0, value: Vec::new() };
        }
    };
    let total_us = t0.elapsed().as_micros() as f64;
    record_request(shared, node, conn_id, kind, op_id, total_us, &phases, &reply);
    reply
}

/// The per-request telemetry tail shared by both data planes: fold the
/// phase split into the node's histograms and, when the request was
/// sampled, append its span to the chain.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_request(
    shared: &Shared,
    node: usize,
    conn_id: u64,
    kind: ReqKind,
    op_id: Option<u64>,
    total_us: f64,
    phases: &PhaseAcc,
    reply: &Frame,
) {
    let timings = PhaseTimings {
        queue_us: phases.queue_us,
        forward_us: phases.forward_us,
        handle_us: (total_us - phases.queue_us - phases.forward_us).max(0.0),
    };
    if let Some(tel) = shared.telemetry.node(node) {
        tel.record(conn_id, kind, timings);
    }
    if let Some(id) = op_id {
        let role = match kind {
            ReqKind::Get | ReqKind::Put => "coordinate",
            ReqKind::ForwardGet | ReqKind::ForwardPut => "forward",
        };
        shared.telemetry.spans().record(SpanEvent {
            op_id: id,
            role,
            node: node as i64,
            dc: shared.dc_of[node],
            kind: kind.as_str(),
            queue_us: timings.queue_us,
            handle_us: timings.handle_us,
            forward_us: timings.forward_us,
            status: ack_status_str(reply),
        });
    }
}

fn ack_status_str(frame: &Frame) -> &'static str {
    match frame {
        Frame::Ack { status: AckStatus::Ok, .. } => "ok",
        Frame::Ack { status: AckStatus::NotFound, .. } => "not_found",
        _ => "unavailable",
    }
}

pub(crate) fn count_ack(shared: &Shared, ack: &Frame) -> Frame {
    if let Frame::Ack { status, .. } = ack {
        match status {
            AckStatus::Ok => shared.counters.acks_ok.fetch_add(1, Ordering::Relaxed),
            AckStatus::NotFound => shared.counters.acks_not_found.fetch_add(1, Ordering::Relaxed),
            AckStatus::Unavailable => {
                shared.counters.acks_unavailable.fetch_add(1, Ordering::Relaxed)
            }
        };
    }
    ack.clone()
}

fn coordinate_get(
    node: usize,
    key: u64,
    op_id: Option<u64>,
    shared: &Shared,
    phases: &mut PhaseAcc,
) -> Frame {
    let p = partition_of(key, shared.partitions);
    let origin = shared.dc_of[node];
    shared.load.add(p, DatacenterId::new(origin), 1);
    shared.counters.gets.fetch_add(1, Ordering::Relaxed);
    if let Some(tel) = shared.telemetry.node(node) {
        tel.hit(p);
    }

    let t_lock = Instant::now();
    let _guard = shared.locks[p.index()].lock().expect("partition lock");
    phases.queue_us = t_lock.elapsed().as_micros() as f64;
    let replicas = shared.route(p);
    let me = ServerId::new(node as u32);
    // Serve locally when possible; otherwise walk replicas in holder
    // order. Every current replica holds the full partition (writes go
    // to all live replicas; transfers copy whole partitions under this
    // same lock), so the first live answer is authoritative.
    let ordered = replicas
        .iter()
        .copied()
        .filter(|&r| r == me)
        .chain(replicas.iter().copied().filter(|&r| r != me));
    for r in ordered {
        if !shared.is_alive(r.index()) {
            continue;
        }
        if r == me {
            return count_ack(
                shared,
                &match shared.stores[node].get(key) {
                    Some(v) => Frame::Ack { status: AckStatus::Ok, seq: v.seq, value: v.value },
                    None => Frame::Ack { status: AckStatus::NotFound, seq: 0, value: Vec::new() },
                },
            );
        }
        match forward(shared, node, r, &Frame::ForwardGet { key, origin_dc: origin }, op_id, phases)
        {
            Ok(ack) => return count_ack(shared, &ack),
            // The peer died or the connection broke: try the next
            // replica rather than failing the read.
            Err(_) => continue,
        }
    }
    count_ack(shared, &Frame::Ack { status: AckStatus::Unavailable, seq: 0, value: Vec::new() })
}

fn coordinate_put(
    node: usize,
    key: u64,
    seq: u64,
    value: &[u8],
    op_id: Option<u64>,
    shared: &Shared,
    phases: &mut PhaseAcc,
) -> Frame {
    let p = partition_of(key, shared.partitions);
    let origin = shared.dc_of[node];
    shared.load.add(p, DatacenterId::new(origin), 1);
    shared.counters.puts.fetch_add(1, Ordering::Relaxed);
    if let Some(tel) = shared.telemetry.node(node) {
        tel.hit(p);
    }

    let t_lock = Instant::now();
    let _guard = shared.locks[p.index()].lock().expect("partition lock");
    phases.queue_us = t_lock.elapsed().as_micros() as f64;
    let replicas = shared.route(p);
    let me = ServerId::new(node as u32);
    let mut landed = 0usize;
    for r in replicas {
        if !shared.is_alive(r.index()) {
            continue; // dead at write time: its copy is repaired by the control loop
        }
        let ok = if r == me {
            shared.stores[node].put(key, seq, value);
            true
        } else {
            let f = Frame::ForwardPut { key, seq, origin_dc: origin, value: value.to_vec() };
            matches!(
                forward(shared, node, r, &f, op_id, phases),
                Ok(Frame::Ack { status: AckStatus::Ok, .. })
            )
        };
        if ok {
            landed += 1;
        } else if shared.is_alive(r.index()) {
            // A *live* replica failed the write: the all-live-replicas
            // guarantee is broken, so refuse the ack. The client
            // retries with the same seq (idempotent).
            return count_ack(
                shared,
                &Frame::Ack { status: AckStatus::Unavailable, seq, value: Vec::new() },
            );
        }
        // Replica died mid-write: treat like dead-at-write-time.
    }
    if landed == 0 {
        return count_ack(
            shared,
            &Frame::Ack { status: AckStatus::Unavailable, seq, value: Vec::new() },
        );
    }
    count_ack(shared, &Frame::Ack { status: AckStatus::Ok, seq, value: Vec::new() })
}

/// One request/ack round-trip to a peer node, using (and replenishing)
/// the source node's connection pool. The op-ID rides the forward so
/// the peer's span joins the chain; the round-trip time lands in the
/// coordinator's forward phase.
fn forward(
    shared: &Shared,
    src: usize,
    dst: ServerId,
    frame: &Frame,
    op_id: Option<u64>,
    phases: &mut PhaseAcc,
) -> io::Result<Frame> {
    shared.counters.forwards.fetch_add(1, Ordering::Relaxed);
    let mut conn = take_peer(shared, src, dst)?;
    let t0 = Instant::now();
    let result = conn.roundtrip_traced(frame, op_id);
    phases.forward_us += t0.elapsed().as_micros() as f64;
    match result {
        Ok((ack, _)) => {
            put_peer(shared, src, dst, conn);
            Ok(ack)
        }
        Err(e) => Err(e), // broken conn is dropped, not pooled
    }
}

fn take_peer(shared: &Shared, src: usize, dst: ServerId) -> io::Result<Conn<TcpStream>> {
    if let Some(conn) =
        shared.peers[src].lock().expect("peer pool lock").get_mut(&dst.index()).and_then(Vec::pop)
    {
        return Ok(conn);
    }
    let stream = TcpStream::connect(shared.addrs[dst.index()])?;
    stream.set_read_timeout(Some(PEER_TIMEOUT))?;
    stream.set_nodelay(true)?;
    Ok(Conn::new(stream))
}

fn put_peer(shared: &Shared, src: usize, dst: ServerId, conn: Conn<TcpStream>) {
    let mut pool = shared.peers[src].lock().expect("peer pool lock");
    let slot = pool.entry(dst.index()).or_default();
    if slot.len() < PEER_POOL_CAP {
        slot.push(conn);
    }
}
