//! A hand-rolled HTTP/1.0 surface for the telemetry plane.
//!
//! Just enough HTTP to be `curl`- and Prometheus-scrapable with no
//! dependencies: one thread per endpoint accepts connections, reads a
//! `GET <path>` request line, answers with a text body, and closes.
//! Connection: close semantics throughout — every scrape is one
//! short-lived connection, which keeps the server loop trivial and
//! leak-free.
//!
//! [`get`] is the matching client, used by `rfh watch`, the smoke
//! tests, and anything else that wants a body without shelling out.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest request head we accept; a scrape request line is tiny.
const MAX_REQUEST: usize = 8 * 1024;

/// Per-connection read timeout while parsing the request.
const READ_TIMEOUT: Duration = Duration::from_millis(2_000);

/// Bind a loopback listener for [`serve`]; returns it with its address.
pub fn bind() -> io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    Ok((listener, addr))
}

/// Accept-and-respond loop. Polls `stop` between accepts; `route`
/// maps a request path to a body (`None` → 404). Runs until stopped.
pub fn serve<F, S>(listener: TcpListener, stop: S, route: F)
where
    F: Fn(&str) -> Option<String>,
    S: Fn() -> bool,
{
    loop {
        if stop() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are short and rare, so one
                // request at a time per endpoint is plenty.
                let _ = respond(stream, &route);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

fn respond<F>(mut stream: TcpStream, route: &F) -> io::Result<()>
where
    F: Fn(&str) -> Option<String>,
{
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let path = match read_request_path(&mut stream) {
        Ok(p) => p,
        Err(_) => {
            return write_response(&mut stream, "400 Bad Request", "bad request\n");
        }
    };
    match route(&path) {
        Some(body) => write_response(&mut stream, "200 OK", &body),
        None => write_response(&mut stream, "404 Not Found", "not found\n"),
    }
}

/// Read up to the end of the request head and return the GET path.
fn read_request_path(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        // The head ends at the blank line; a bare `GET /x\r\n` (HTTP/0.9
        // style, and what a minimal client sends) ends at the first one.
        if buf.windows(2).any(|w| w == b"\r\n") || buf.len() >= MAX_REQUEST {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(path.to_string()),
        _ => Err(io::Error::new(io::ErrorKind::InvalidData, format!("bad request line {line:?}"))),
    }
}

fn write_response(stream: &mut TcpStream, status: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Minimal HTTP GET: connect, request `path`, return the body.
/// Non-2xx statuses are errors carrying the status line.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(2_000))?;
    stream.set_read_timeout(Some(Duration::from_millis(5_000)))?;
    stream.set_nodelay(true)?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let text = String::from_utf8_lossy(&response);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "no header/body separator"));
    };
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(io::Error::other(format!("http status {status:?}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_routes_and_404s() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let (listener, addr) = bind().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        let server = std::thread::spawn(move || {
            serve(
                listener,
                move || shutdown2.load(Ordering::Acquire),
                |path| match path {
                    "/metrics" => Some("# TYPE up gauge\nup 1\n".to_string()),
                    _ => None,
                },
            );
        });
        let body = get(addr, "/metrics").unwrap();
        assert_eq!(body, "# TYPE up gauge\nup 1\n");
        let err = get(addr, "/nope").unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");
        shutdown.store(true, Ordering::Release);
        server.join().unwrap();
    }
}
