//! The load generator: drives a running cluster and measures it.
//!
//! Two arrival disciplines (see [`ArrivalMode`](crate::ArrivalMode)):
//! closed-loop workers issue back-to-back requests and measure service
//! capacity; open-loop workers drain a Poisson schedule produced by a
//! pacer thread and measure latency *from the scheduled arrival*, so
//! queueing delay counts against the tail — the coordinated-omission-
//! free measurement.
//!
//! Writes carry globally unique sequence numbers from one atomic
//! counter and values derived deterministically from `(key, seq)`, so a
//! post-run verify pass can re-read every acknowledged key and prove no
//! acknowledged write was lost or corrupted — the headline guarantee
//! the serve smoke test asserts under chaos.

use crate::client::{CompletedOp, GetOutcome, PipelinedClient, ServeClient};
use crate::cluster::NodeInfo;
use crate::config::{ArrivalMode, LoadGenConfig};
use crate::wire::{AckStatus, Frame};
use crossbeam::channel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfh_obs::SpanLog;
use rfh_ring::splitmix64;
use rfh_stats::Histogram;
use rfh_types::{Result, RfhError};
use rfh_workload::Zipf;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What a load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Worker threads used.
    pub workers: u32,
    /// Operations attempted.
    pub ops: u64,
    /// Operations that completed with a definitive answer.
    pub completed: u64,
    /// Operations that exhausted client retries.
    pub failed: u64,
    /// Writes acknowledged by the cluster.
    pub acked_writes: u64,
    /// Acknowledged writes the verify pass could not read back at
    /// their acked version or newer. Must be zero.
    pub lost_acked_writes: u64,
    /// Read-back values that did not match the deterministic pattern
    /// for their version. Must be zero.
    pub value_mismatches: u64,
    /// Wall-clock of the measurement phase (excludes verify).
    pub wall_ms: f64,
    /// Completed operations per second.
    pub throughput: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: f64,
}

impl LoadReport {
    /// Serialize as a JSON object (the `BENCH_serve.json` format).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"mode\": \"{}\",\n",
                "  \"workers\": {},\n",
                "  \"ops\": {},\n",
                "  \"completed\": {},\n",
                "  \"failed\": {},\n",
                "  \"acked_writes\": {},\n",
                "  \"lost_acked_writes\": {},\n",
                "  \"value_mismatches\": {},\n",
                "  \"wall_ms\": {:.3},\n",
                "  \"throughput_ops_per_sec\": {:.1},\n",
                "  \"latency_us\": {{ \"mean\": {:.1}, \"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1} }}\n",
                "}}"
            ),
            self.mode,
            self.workers,
            self.ops,
            self.completed,
            self.failed,
            self.acked_writes,
            self.lost_acked_writes,
            self.value_mismatches,
            self.wall_ms,
            self.throughput,
            self.mean_us,
            self.p50_us,
            self.p99_us,
            self.p999_us,
        )
    }

    /// Human-readable one-screen summary.
    pub fn render(&self) -> String {
        format!(
            "loadgen ({} loop, {} workers): {}/{} ops completed, {} failed\n\
             throughput {:.0} ops/s over {:.0} ms\n\
             latency µs: mean {:.0}  p50 {:.0}  p99 {:.0}  p999 {:.0}\n\
             acked writes {}  lost {}  value mismatches {}\n",
            self.mode,
            self.workers,
            self.completed,
            self.ops,
            self.failed,
            self.throughput,
            self.wall_ms,
            self.mean_us,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.acked_writes,
            self.lost_acked_writes,
            self.value_mismatches,
        )
    }
}

/// The deterministic payload for `(key, seq)`: a splitmix64 stream, so
/// the verify pass can recompute any version's bytes without storing
/// them client-side.
pub fn value_for(key: u64, seq: u64, len: usize) -> Vec<u8> {
    let mut x = splitmix64(key ^ seq.rotate_left(17));
    let mut out = Vec::with_capacity(len + 8);
    while out.len() < len {
        x = splitmix64(x);
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Per-worker tallies, merged after the run.
struct WorkerOutcome {
    completed: u64,
    failed: u64,
    latency: Histogram,
}

/// Shared run state handed to every worker.
struct RunState {
    nodes: Vec<NodeInfo>,
    dcs: Vec<u32>,
    zipf: Zipf,
    cfg: LoadGenConfig,
    /// Globally unique write versions.
    next_seq: AtomicU64,
    /// key → highest acknowledged seq.
    acked: Mutex<HashMap<u64, u64>>,
    /// Global operation counter, driving trace sampling.
    next_op: AtomicU64,
    /// Client spans of sampled ops land here (when tracing).
    spans: Option<Arc<SpanLog>>,
}

impl RunState {
    /// One operation: sample a key, flip read/write, run it, record.
    fn run_op(&self, client: &mut ServeClient, rng: &mut StdRng, out: &mut WorkerOutcome) {
        let key = self.zipf.sample(rng) as u64;
        let is_read = rng.gen_bool(self.cfg.read_fraction);
        // Every n-th op (globally) carries a trace op-ID; zero-based
        // index, one-based ID so 0 never appears on the wire as an ID.
        let op_id = match self.cfg.trace_sample {
            0 => None,
            n => {
                let idx = self.next_op.fetch_add(1, Ordering::Relaxed);
                idx.is_multiple_of(n).then_some(idx + 1)
            }
        };
        let t0 = Instant::now();
        let ok = if is_read {
            client.get_traced(key, op_id).is_ok()
        } else {
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            let value = value_for(key, seq, self.cfg.value_bytes as usize);
            match client.put_traced(key, seq, &value, op_id) {
                Ok(()) => {
                    let mut acked = self.acked.lock().expect("acked lock");
                    let slot = acked.entry(key).or_insert(0);
                    *slot = (*slot).max(seq);
                    true
                }
                Err(_) => false,
            }
        };
        // Closed-loop latency is service time; open-loop workers
        // re-record from the scheduled arrival instead (see run_open).
        out.latency.record(t0.elapsed().as_micros() as f64);
        if ok {
            out.completed += 1;
        } else {
            out.failed += 1;
        }
    }

    /// Build one operation as a raw frame for the pipelined path —
    /// the same key/read-write/trace sampling [`run_op`](Self::run_op)
    /// does, deferred bookkeeping handled by
    /// [`settle`](Self::settle) when the ack lands.
    fn build_op(&self, rng: &mut StdRng) -> (Frame, Option<u64>) {
        let key = self.zipf.sample(rng) as u64;
        let is_read = rng.gen_bool(self.cfg.read_fraction);
        let op_id = match self.cfg.trace_sample {
            0 => None,
            n => {
                let idx = self.next_op.fetch_add(1, Ordering::Relaxed);
                idx.is_multiple_of(n).then_some(idx + 1)
            }
        };
        let frame = if is_read {
            Frame::Get { key }
        } else {
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            let value = value_for(key, seq, self.cfg.value_bytes as usize);
            Frame::Put { key, seq, value }
        };
        (frame, op_id)
    }

    /// Fold one pipelined completion into the tallies, mirroring the
    /// sequential path: an acked put records its version for the verify
    /// pass; an `Unavailable` (or nonsensical) ack counts as failed.
    fn settle(&self, done: CompletedOp, out: &mut WorkerOutcome) {
        out.latency.record(done.latency_us);
        let ok = match (&done.request, &done.ack) {
            (Frame::Put { key, seq, .. }, Frame::Ack { status: AckStatus::Ok, .. }) => {
                let mut acked = self.acked.lock().expect("acked lock");
                let slot = acked.entry(*key).or_insert(0);
                *slot = (*slot).max(*seq);
                true
            }
            (Frame::Get { .. }, Frame::Ack { status, .. }) => {
                matches!(status, AckStatus::Ok | AckStatus::NotFound)
            }
            _ => false,
        };
        if ok {
            out.completed += 1;
        } else {
            out.failed += 1;
        }
    }
}

/// Run the configured load against a cluster and verify every
/// acknowledged write afterwards.
pub fn run_loadgen(cfg: &LoadGenConfig, nodes: &[NodeInfo]) -> Result<LoadReport> {
    run_loadgen_with(cfg, nodes, None)
}

/// [`run_loadgen`] with a span log for sampled ops' client-side spans.
/// Pass the cluster's own log (self-hosted runs) to get complete
/// client → coordinator → forward chains in one place.
pub fn run_loadgen_with(
    cfg: &LoadGenConfig,
    nodes: &[NodeInfo],
    spans: Option<Arc<SpanLog>>,
) -> Result<LoadReport> {
    cfg.validate()?;
    if nodes.is_empty() {
        return Err(RfhError::Topology("loadgen needs at least one node".into()));
    }
    let mut dcs: Vec<u32> = nodes.iter().map(|n| n.dc).collect();
    dcs.sort_unstable();
    dcs.dedup();
    // Write versions start at 1 so "never acked" is representable as 0.
    let state = Arc::new(RunState {
        nodes: nodes.to_vec(),
        dcs,
        zipf: Zipf::new(cfg.keys as usize, cfg.zipf_s),
        cfg: cfg.clone(),
        next_seq: AtomicU64::new(1),
        acked: Mutex::new(HashMap::new()),
        next_op: AtomicU64::new(0),
        spans,
    });

    let t_start = Instant::now();
    let outcomes = match cfg.mode {
        ArrivalMode::Closed if cfg.pipeline > 1 => run_closed_pipelined(&state)?,
        ArrivalMode::Closed => run_closed(&state)?,
        ArrivalMode::Open => run_open(&state)?,
    };
    let wall = t_start.elapsed();

    let mut latency = Histogram::latency();
    let (mut completed, mut failed) = (0u64, 0u64);
    for o in &outcomes {
        completed += o.completed;
        failed += o.failed;
        latency.merge(&o.latency);
    }

    let (lost, mismatches, acked_writes) = verify_acked(&state)?;

    let wall_ms = wall.as_secs_f64() * 1e3;
    Ok(LoadReport {
        mode: match cfg.mode {
            ArrivalMode::Closed => "closed",
            ArrivalMode::Open => "open",
        },
        workers: cfg.workers,
        ops: cfg.ops,
        completed,
        failed,
        acked_writes,
        lost_acked_writes: lost,
        value_mismatches: mismatches,
        wall_ms,
        throughput: if wall_ms > 0.0 { completed as f64 / (wall_ms / 1e3) } else { 0.0 },
        mean_us: latency.mean(),
        p50_us: latency.quantile(0.5).unwrap_or(0.0),
        p99_us: latency.quantile(0.99).unwrap_or(0.0),
        p999_us: latency.quantile(0.999).unwrap_or(0.0),
    })
}

/// Closed loop: split the op budget across workers, each issuing
/// back-to-back requests through its own datacenter-local client.
fn run_closed(state: &Arc<RunState>) -> Result<Vec<WorkerOutcome>> {
    let workers = state.cfg.workers as u64;
    let handles: Vec<_> = (0..state.cfg.workers)
        .map(|w| {
            let state = Arc::clone(state);
            std::thread::Builder::new()
                .name(format!("rfh-loadgen-{w}"))
                .spawn(move || -> Result<WorkerOutcome> {
                    let quota =
                        state.cfg.ops / workers + u64::from((w as u64) < state.cfg.ops % workers);
                    let dc = state.dcs[w as usize % state.dcs.len()];
                    let mut client = ServeClient::new(&state.nodes, dc, w as usize)?;
                    if let Some(spans) = &state.spans {
                        client.set_span_log(Arc::clone(spans));
                    }
                    let mut rng = StdRng::seed_from_u64(splitmix64(
                        state.cfg.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ));
                    let mut out =
                        WorkerOutcome { completed: 0, failed: 0, latency: Histogram::latency() };
                    for _ in 0..quota {
                        state.run_op(&mut client, &mut rng, &mut out);
                    }
                    Ok(out)
                })
                .map_err(|e| RfhError::Io(format!("spawn loadgen worker: {e}")))
        })
        .collect::<Result<Vec<_>>>()?;
    handles
        .into_iter()
        .map(|h| h.join().map_err(|_| RfhError::Io("loadgen worker panicked".into()))?)
        .collect()
}

/// Closed loop at pipeline depth N: each worker keeps up to N frames
/// in flight on one connection through a [`PipelinedClient`], so a
/// single worker extracts coordinator throughput that the sequential
/// path would spend waiting out round-trips. Latency is measured from
/// each op's first submission to its ack — queueing inside the window
/// counts against the op.
fn run_closed_pipelined(state: &Arc<RunState>) -> Result<Vec<WorkerOutcome>> {
    let workers = state.cfg.workers as u64;
    let handles: Vec<_> = (0..state.cfg.workers)
        .map(|w| {
            let state = Arc::clone(state);
            std::thread::Builder::new()
                .name(format!("rfh-loadgen-{w}"))
                .spawn(move || -> Result<WorkerOutcome> {
                    let quota =
                        state.cfg.ops / workers + u64::from((w as u64) < state.cfg.ops % workers);
                    let dc = state.dcs[w as usize % state.dcs.len()];
                    let depth = state.cfg.pipeline as usize;
                    let mut client = PipelinedClient::new(&state.nodes, dc, w as usize, depth)?;
                    if let Some(spans) = &state.spans {
                        client.set_span_log(Arc::clone(spans));
                    }
                    let mut rng = StdRng::seed_from_u64(splitmix64(
                        state.cfg.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ));
                    let mut out =
                        WorkerOutcome { completed: 0, failed: 0, latency: Histogram::latency() };
                    for _ in 0..quota {
                        let (frame, op_id) = state.build_op(&mut rng);
                        if let Some(done) = client.submit(frame, op_id)? {
                            state.settle(done, &mut out);
                        }
                    }
                    for done in client.drain()? {
                        state.settle(done, &mut out);
                    }
                    Ok(out)
                })
                .map_err(|e| RfhError::Io(format!("spawn loadgen worker: {e}")))
        })
        .collect::<Result<Vec<_>>>()?;
    handles
        .into_iter()
        .map(|h| h.join().map_err(|_| RfhError::Io("loadgen worker panicked".into()))?)
        .collect()
}

/// Open loop: a pacer thread emits a Poisson arrival schedule into a
/// bounded channel; workers drain it, waiting for each op's scheduled
/// instant and measuring latency from that instant (queueing included).
fn run_open(state: &Arc<RunState>) -> Result<Vec<WorkerOutcome>> {
    let (tx, rx) = channel::bounded::<Instant>(1024);
    let rx = Arc::new(Mutex::new(rx));
    let rate = state.cfg.rate;
    let ops = state.cfg.ops;
    let pacer_seed = splitmix64(state.cfg.seed ^ 0x5041_4345); // "PACE"
    let pacer = std::thread::Builder::new()
        .name("rfh-loadgen-pacer".into())
        .spawn(move || {
            let mut rng = StdRng::seed_from_u64(pacer_seed);
            let mut next = Instant::now();
            for _ in 0..ops {
                let u: f64 = rng.gen();
                next += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
                if tx.send(next).is_err() {
                    return; // all workers gone
                }
            }
        })
        .map_err(|e| RfhError::Io(format!("spawn pacer: {e}")))?;

    let handles: Vec<_> = (0..state.cfg.workers)
        .map(|w| {
            let state = Arc::clone(state);
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("rfh-loadgen-{w}"))
                .spawn(move || -> Result<WorkerOutcome> {
                    let dc = state.dcs[w as usize % state.dcs.len()];
                    let mut client = ServeClient::new(&state.nodes, dc, w as usize)?;
                    if let Some(spans) = &state.spans {
                        client.set_span_log(Arc::clone(spans));
                    }
                    let mut rng = StdRng::seed_from_u64(splitmix64(
                        state.cfg.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ));
                    let mut out =
                        WorkerOutcome { completed: 0, failed: 0, latency: Histogram::latency() };
                    loop {
                        let sched = match rx.lock().expect("schedule lock").try_recv() {
                            Ok(s) => s,
                            Err(channel::TryRecvError::Empty) => {
                                std::thread::sleep(Duration::from_micros(200));
                                continue;
                            }
                            Err(channel::TryRecvError::Disconnected) => break,
                        };
                        let now = Instant::now();
                        if sched > now {
                            std::thread::sleep(sched - now);
                        }
                        // run_op records service time into a scratch
                        // histogram; the real sample is arrival-to-done.
                        let mut scratch = WorkerOutcome {
                            completed: 0,
                            failed: 0,
                            latency: Histogram::latency(),
                        };
                        state.run_op(&mut client, &mut rng, &mut scratch);
                        out.completed += scratch.completed;
                        out.failed += scratch.failed;
                        out.latency.record(sched.elapsed().as_micros() as f64);
                    }
                    Ok(out)
                })
                .map_err(|e| RfhError::Io(format!("spawn loadgen worker: {e}")))
        })
        .collect::<Result<Vec<_>>>()?;

    let outcomes = handles
        .into_iter()
        .map(|h| h.join().map_err(|_| RfhError::Io("loadgen worker panicked".into()))?)
        .collect();
    let _ = pacer.join();
    outcomes
}

/// Read back every acknowledged write. Returns
/// `(lost, value_mismatches, acked_total)`. Runs after the measurement
/// phase, so no concurrent writes race the check; `Unavailable` reads
/// are retried by the client itself, then once more here across a
/// fresh coordinator before a key is declared lost.
fn verify_acked(state: &Arc<RunState>) -> Result<(u64, u64, u64)> {
    let acked = state.acked.lock().expect("acked lock");
    let mut client = ServeClient::new(&state.nodes, state.dcs[0], 0)?;
    let (mut lost, mut mismatches) = (0u64, 0u64);
    for (&key, &seq) in acked.iter() {
        let outcome = match client.get(key) {
            Ok(o) => Ok(o),
            // One more attempt on a different coordinator: the first
            // may sit in a datacenter still converging after chaos.
            Err(_) => {
                client = ServeClient::new(&state.nodes, state.dcs[0], 1)?;
                client.get(key)
            }
        };
        match outcome {
            Ok(GetOutcome::Found { seq: got, value }) if got >= seq => {
                if value != value_for(key, got, state.cfg.value_bytes as usize) {
                    mismatches += 1;
                }
            }
            // Stale version, NotFound, or unreadable: the acked write
            // is gone.
            _ => lost += 1,
        }
    }
    Ok((lost, mismatches, acked.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_pattern_is_deterministic_and_length_exact() {
        for len in [0usize, 1, 7, 8, 128] {
            let a = value_for(42, 9, len);
            assert_eq!(a.len(), len);
            assert_eq!(a, value_for(42, 9, len));
        }
        assert_ne!(value_for(1, 2, 16), value_for(1, 3, 16), "seq changes the pattern");
        assert_ne!(value_for(1, 2, 16), value_for(2, 2, 16), "key changes the pattern");
    }

    #[test]
    fn report_json_is_wellformed_enough() {
        let r = LoadReport {
            mode: "closed",
            workers: 2,
            ops: 10,
            completed: 9,
            failed: 1,
            acked_writes: 4,
            lost_acked_writes: 0,
            value_mismatches: 0,
            wall_ms: 12.5,
            throughput: 720.0,
            mean_us: 100.0,
            p50_us: 90.0,
            p99_us: 400.0,
            p999_us: 900.0,
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"lost_acked_writes\": 0"));
        assert!(json.contains("\"throughput_ops_per_sec\": 720.0"));
        assert!(json.contains("\"p99\": 400.0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(r.render().contains("p99 400"));
    }
}
