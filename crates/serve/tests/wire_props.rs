//! Property tests for the wire protocol: encode→decode identity for
//! every frame type, rejection of truncated and oversized frames, and
//! the reactor's pipelined reassembly — a burst of traced frames split
//! at arbitrary byte boundaries must come back frame-for-frame intact.

use proptest::prelude::*;
use rfh_reactor::FrameReader;
use rfh_serve::wire::{AckStatus, Conn, Frame, MAX_FRAME};
use std::io::{self, Read, Write};

fn value_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..300)
}

fn any_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        any::<u64>().prop_map(|key| Frame::Get { key }),
        (any::<u64>(), any::<u64>(), value_bytes()).prop_map(|(key, seq, value)| Frame::Put {
            key,
            seq,
            value
        }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(key, origin_dc)| Frame::ForwardGet { key, origin_dc }),
        (any::<u64>(), any::<u64>(), any::<u32>(), value_bytes()).prop_map(
            |(key, seq, origin_dc, value)| Frame::ForwardPut { key, seq, origin_dc, value }
        ),
        (0u32..3, any::<u64>(), value_bytes()).prop_map(|(s, seq, value)| Frame::Ack {
            status: AckStatus::from_byte(s as u8).expect("0..=2 are the valid status bytes"),
            seq,
            value,
        }),
    ]
    .boxed()
}

/// An in-memory duplex: everything written is readable back.
#[derive(Default)]
struct Loopback {
    data: Vec<u8>,
    pos: usize,
}

impl Read for Loopback {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for Loopback {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.data.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_identity(frame in any_frame()) {
        let bytes = frame.encode();
        prop_assert!(bytes.len() >= 4);
        let body_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(body_len, bytes.len() - 4, "prefix counts the body exactly");
        let decoded = Frame::decode_body(&bytes[4..]).expect("own encoding must decode");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn conn_roundtrips_frames(frames in proptest::collection::vec(any_frame(), 1..10)) {
        let mut conn = Conn::new(Loopback::default());
        for f in &frames {
            conn.send(f).unwrap();
        }
        for f in &frames {
            let got = conn.recv().expect("stream healthy").expect("frame available");
            prop_assert_eq!(&got, f);
        }
        prop_assert!(conn.recv().expect("clean EOF").is_none());
    }

    #[test]
    fn truncated_frames_are_rejected(frame in any_frame(), cut in any::<prop::sample::Index>()) {
        let bytes = frame.encode();
        // Cut inside the fixed fields: decode_body must error, never
        // panic and never fabricate a frame. (A cut inside a trailing
        // value merely shortens it — the length prefix guards that
        // region, which the mid-frame EOF check below exercises.)
        let body = &bytes[4..];
        let header_len = match &frame {
            Frame::Get { .. } => 9,
            Frame::Put { .. } => 17,
            Frame::ForwardGet { .. } => 13,
            Frame::ForwardPut { .. } => 21,
            Frame::Ack { .. } => 10,
        };
        let cut = cut.index(header_len);
        prop_assert!(Frame::decode_body(&body[..cut]).is_err());
        // A connection dying mid-frame is an UnexpectedEof, not a clean
        // close and not a bogus frame.
        let cut_stream = Loopback { data: bytes[..bytes.len() - 1].to_vec(), pos: 0 };
        let err = Conn::new(cut_stream).recv().expect_err("mid-frame EOF is an error");
        prop_assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn traced_envelope_roundtrips(
        frames in proptest::collection::vec(
            (any_frame(), (any::<bool>(), any::<u64>()).prop_map(|(t, id)| t.then_some(id))),
            1..10,
        ),
    ) {
        let mut conn = Conn::new(Loopback::default());
        for (f, op_id) in &frames {
            conn.send_traced(f, *op_id).unwrap();
        }
        for (f, op_id) in &frames {
            let (got, got_id) =
                conn.recv_envelope().expect("stream healthy").expect("frame available");
            prop_assert_eq!(&got, f);
            prop_assert_eq!(got_id, *op_id);
        }
        prop_assert!(conn.recv_envelope().expect("clean EOF").is_none());
    }

    #[test]
    fn pipelined_frames_reassemble_across_arbitrary_splits(
        frames in proptest::collection::vec(
            (any_frame(), (any::<bool>(), any::<u64>()).prop_map(|(t, id)| t.then_some(id))),
            1..12,
        ),
        splits in proptest::collection::vec(1usize..64, 0..40),
    ) {
        // N outstanding frames on one pipelined connection, delivered
        // in fragments cut without regard for frame boundaries — the
        // reactor's FrameReader must reassemble the identical sequence.
        let wire: Vec<u8> =
            frames.iter().flat_map(|(f, id)| f.encode_traced(*id)).collect();
        let mut reader = FrameReader::new(MAX_FRAME);
        let mut got = Vec::new();
        let mut fed = 0;
        let mut cuts = splits.iter();
        while fed < wire.len() {
            let n = cuts.next().copied().unwrap_or(usize::MAX).min(wire.len() - fed);
            reader.feed(&wire[fed..fed + n]);
            fed += n;
            while let Some(body) = reader.next_body().expect("valid stream") {
                got.push(Frame::decode_envelope(&body).expect("whole body decodes"));
            }
        }
        prop_assert_eq!(reader.pending_bytes(), 0, "no bytes may linger past the last frame");
        let want: Vec<(Frame, Option<u64>)> = frames;
        prop_assert_eq!(got, want);
    }

    #[test]
    fn untraced_send_is_byte_identical_and_legacy_decodable(frame in any_frame()) {
        // `op_id: None` must leave the wire format exactly as before
        // the telemetry plane existed: same bytes, decodable by the
        // version-unaware decode path.
        prop_assert_eq!(frame.encode_traced(None), frame.encode());
        let traced = frame.encode_traced(Some(7));
        prop_assert_eq!(traced.len(), frame.encode().len() + 8, "op-ID costs exactly 8 bytes");
        let legacy = Frame::decode_body(&frame.encode_traced(None)[4..]).unwrap();
        prop_assert_eq!(legacy, frame);
    }

    #[test]
    fn truncation_inside_the_op_id_is_rejected(
        frame in any_frame(),
        op_id in any::<u64>(),
        keep in 0usize..8,
    ) {
        // Cut the traced body anywhere inside the 8-byte op-ID (which
        // sits right after the tag byte): the envelope decoder must
        // error, never panic, never misread value bytes as an ID.
        let body = &frame.encode_traced(Some(op_id))[4..];
        prop_assert!(Frame::decode_envelope(&body[..1 + keep]).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected(frame in any_frame(), extra in 1usize..8) {
        let mut body = frame.encode()[4..].to_vec();
        body.extend(std::iter::repeat_n(0xAB, extra));
        match &frame {
            // Fixed-size frames must reject any surplus bytes.
            Frame::Get { .. } | Frame::ForwardGet { .. } => {
                prop_assert!(Frame::decode_body(&body).is_err());
            }
            // Value-carrying frames end in the value, whose length is
            // implied by the body: surplus bytes extend the value.
            Frame::Put { key, seq, value } => {
                let mut longer = value.clone();
                longer.extend(std::iter::repeat_n(0xAB, extra));
                prop_assert_eq!(
                    Frame::decode_body(&body).unwrap(),
                    Frame::Put { key: *key, seq: *seq, value: longer }
                );
            }
            _ => {
                prop_assert!(Frame::decode_body(&body).is_ok());
            }
        }
    }
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    let mut evil = Vec::new();
    evil.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    evil.extend_from_slice(&[1u8; 16]);
    let err = Conn::new(Loopback { data: evil, pos: 0 })
        .recv()
        .expect_err("oversized prefix must be rejected");
    assert!(err.to_string().contains("MAX_FRAME"), "unexpected error: {err}");
}

#[test]
fn status_bytes_roundtrip() {
    for s in [AckStatus::Ok, AckStatus::NotFound, AckStatus::Unavailable] {
        assert_eq!(AckStatus::from_byte(s.to_byte()).unwrap(), s);
    }
    assert!(AckStatus::from_byte(3).is_err());
}
