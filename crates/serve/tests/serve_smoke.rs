//! End-to-end smoke tests: a real loopback cluster served by the
//! online RFH control loop, driven by the load generator, with and
//! without chaos. The headline assertion everywhere: **zero lost
//! acknowledged writes** — proven on both data planes, since the
//! threaded plane is the differential baseline for the reactor.

use rfh_faults::FaultPlan;
use rfh_serve::{
    run_loadgen, ArrivalMode, Cluster, ClusterConfig, DataPlane, GetOutcome, LoadGenConfig,
    ServeClient,
};

fn small_cluster(plane: DataPlane) -> ClusterConfig {
    ClusterConfig {
        servers_per_rack: 1, // 10 DCs × 2 racks × 1 = 20 nodes
        partitions: 16,
        seed: 7,
        control_interval_ms: 50,
        capacity_spread: 0.25,
        threads: 1,
        telemetry: true,
        persistence: None,
        data_plane: plane,
        ..ClusterConfig::default()
    }
}

fn small_load(ops: u64) -> LoadGenConfig {
    LoadGenConfig {
        mode: ArrivalMode::Closed,
        workers: 4,
        ops,
        rate: 2_000.0,
        read_fraction: 0.5,
        keys: 200,
        zipf_s: 0.9,
        value_bytes: 32,
        seed: 11,
        trace_sample: 0,
        pipeline: 1,
    }
}

/// Healthy-cluster workload: every op completes, every acked write is
/// readable, and the control loop's summary is clean. Run under both
/// planes so their externally visible outputs stay interchangeable.
fn no_loss_on(plane: DataPlane, pipeline: u64) {
    let cluster = Cluster::start(&small_cluster(plane), FaultPlan::default()).unwrap();
    let cfg = LoadGenConfig { pipeline, ..small_load(600) };
    let report = run_loadgen(&cfg, cluster.node_infos()).unwrap();
    let summary = cluster.shutdown().unwrap();

    assert!(report.completed > 0, "no operations completed:\n{}", report.render());
    assert_eq!(report.failed, 0, "healthy cluster must not fail ops:\n{}", report.render());
    assert_eq!(report.lost_acked_writes, 0, "lost writes:\n{}", report.render());
    assert_eq!(report.value_mismatches, 0, "corrupt values:\n{}", report.render());
    assert!(report.acked_writes > 0, "mixed workload must ack writes");
    assert!(report.p50_us > 0.0 && report.p99_us >= report.p50_us);

    assert_eq!(summary.nodes, 20);
    assert_eq!(summary.alive_nodes, 20);
    assert!(summary.ticks > 0, "control loop never ticked");
    assert!(summary.gets + summary.puts >= report.completed, "coordinators saw every op");
    assert_eq!(summary.invariant_violations, 0, "auditor findings:\n{}", summary.render());
}

#[test]
fn serves_reads_and_writes_without_loss() {
    no_loss_on(DataPlane::Reactor, 1);
}

#[test]
fn threaded_plane_serves_reads_and_writes_without_loss() {
    no_loss_on(DataPlane::Threaded, 1);
}

#[test]
fn pipelined_closed_loop_loses_nothing() {
    no_loss_on(DataPlane::Reactor, 8);
}

#[test]
fn threaded_plane_accepts_pipelined_clients() {
    // The pipelined client is plane-agnostic: the threaded plane's
    // per-connection handler serves frames in arrival order too.
    no_loss_on(DataPlane::Threaded, 4);
}

#[test]
fn open_loop_mode_measures_latency() {
    let cluster = Cluster::start(&small_cluster(DataPlane::Reactor), FaultPlan::default()).unwrap();
    let cfg = LoadGenConfig {
        mode: ArrivalMode::Open,
        workers: 2,
        ops: 200,
        rate: 4_000.0,
        ..small_load(200)
    };
    let report = run_loadgen(&cfg, cluster.node_infos()).unwrap();
    cluster.shutdown().unwrap();
    assert_eq!(report.mode, "open");
    assert_eq!(report.completed + report.failed, 200);
    assert_eq!(report.lost_acked_writes, 0, "lost writes:\n{}", report.render());
    assert!(report.p999_us >= report.p50_us);
}

/// Kill one server two ticks in (≈100 ms with a 50 ms interval), while
/// the load generator is still writing. Zero acked writes may be lost
/// on either plane — the reactor's route-epoch validation must be as
/// safe as the threaded plane's partition lock.
fn kill_without_loss_on(plane: DataPlane, pipeline: u64) {
    let plan = FaultPlan::from_toml_str("[[at]]\nepoch = 2\nfail_servers = [5]\n").unwrap();
    let cluster = Cluster::start(&small_cluster(plane), plan).unwrap();
    // Deeper pipelines drain the op budget much faster; scale it so the
    // workload still overlaps the kill at tick 2 (≈100 ms in).
    let cfg = LoadGenConfig { pipeline, ..small_load(1_200 * pipeline.max(1)) };
    let report = run_loadgen(&cfg, cluster.node_infos()).unwrap();
    // However fast the run went, let the kill epoch itself tick before
    // reading the summary.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let summary = cluster.shutdown().unwrap();

    assert!(report.completed > 0, "no operations completed:\n{}", report.render());
    assert_eq!(report.lost_acked_writes, 0, "lost acked writes:\n{}", report.render());
    assert_eq!(report.value_mismatches, 0, "corrupt values:\n{}", report.render());
    assert_eq!(summary.alive_nodes, 19, "exactly one server stays dead");
    assert!(summary.ticks >= 2, "the kill epoch must have run");
}

#[test]
fn survives_a_server_kill_without_losing_acked_writes() {
    kill_without_loss_on(DataPlane::Reactor, 1);
}

#[test]
fn threaded_plane_survives_a_server_kill() {
    kill_without_loss_on(DataPlane::Threaded, 1);
}

#[test]
fn pipelined_load_survives_a_server_kill() {
    kill_without_loss_on(DataPlane::Reactor, 8);
}

#[test]
fn data_survives_across_direct_client_use() {
    // Drive the client API directly (not through the load generator):
    // write through one datacenter, read through another.
    let cluster = Cluster::start(&small_cluster(DataPlane::Reactor), FaultPlan::default()).unwrap();
    let nodes = cluster.node_infos().to_vec();
    let mut writer = ServeClient::new(&nodes, 0, 0).unwrap();
    let mut reader = ServeClient::new(&nodes, 7, 0).unwrap();
    for key in 0..50u64 {
        writer.put(key, key + 1, &key.to_le_bytes()).unwrap();
    }
    for key in 0..50u64 {
        match reader.get(key).unwrap() {
            GetOutcome::Found { seq, value } => {
                assert_eq!(seq, key + 1);
                assert_eq!(value, key.to_le_bytes());
            }
            GetOutcome::NotFound => panic!("key {key} vanished"),
        }
    }
    assert!(matches!(reader.get(10_000).unwrap(), GetOutcome::NotFound));
    let summary = cluster.shutdown().unwrap();
    assert!(summary.forwards > 0, "cross-datacenter reads must forward");
}

/// Depth-1 wire compatibility: the plain blocking client (the legacy
/// protocol, one frame outstanding) works unchanged against the
/// reactor plane, and cross-plane data round-trips byte-identically.
#[test]
fn legacy_client_is_wire_compatible_with_the_reactor_plane() {
    let cluster = Cluster::start(&small_cluster(DataPlane::Reactor), FaultPlan::default()).unwrap();
    let nodes = cluster.node_infos().to_vec();
    let mut c = ServeClient::new(&nodes, 3, 0).unwrap();
    c.put(99, 5, b"depth-one").unwrap();
    match c.get(99).unwrap() {
        GetOutcome::Found { seq, value } => {
            assert_eq!(seq, 5);
            assert_eq!(value, b"depth-one");
        }
        GetOutcome::NotFound => panic!("acked write not readable"),
    }
    cluster.shutdown().unwrap();
}

#[test]
fn addr_file_roundtrips_through_client_parser() {
    let cluster = Cluster::start(&small_cluster(DataPlane::Reactor), FaultPlan::default()).unwrap();
    let text = cluster.render_addr_file();
    let parsed = ServeClient::parse_addr_file(&text).unwrap();
    assert_eq!(parsed, cluster.node_infos());
    cluster.shutdown().unwrap();
}
